"""Central scale knobs for the benchmark suite.

The paper's testbed is 10 M observations on 1000 KB pages; pure-Python
benchmarks run at reduced scale and assert shapes, not absolute counts.
Raise these numbers to approach paper scale.
"""

N_OBSERVATIONS = 40_000
N_QUERIES = 25
PAGE_SIZE = 16_384
N_VEHICLES = 20
CELLS_PER_SIDE = 32
#: Master RNG seed for data/query generation. Every BENCH_*.json records
#: the seed it ran with, so any report is reproducible bit-for-bit with
#: ``run_experiments.py --seed <value>``.
SEED = 7
