"""Shared benchmark fixtures.

Benchmark scale is deliberately smaller than the paper's testbed (10 M
observations, 1000 KB pages) so the whole suite runs in minutes of pure
Python; every assertion targets the *shape* of the paper's results, not the
absolute counts. Scale knobs live in bench_config.py.
"""

from __future__ import annotations

import pytest

from bench_config import (
    CELLS_PER_SIDE,
    N_OBSERVATIONS,
    N_QUERIES,
    N_VEHICLES,
    PAGE_SIZE,
)


@pytest.fixture(scope="session")
def figure2_result():
    """One shared Figure-2 run for every benchmark that reads its numbers."""
    from repro.experiments import run_figure2

    return run_figure2(
        n_observations=N_OBSERVATIONS,
        n_queries=N_QUERIES,
        page_size=PAGE_SIZE,
        n_vehicles=N_VEHICLES,
        cells_per_side=CELLS_PER_SIDE,
    )


@pytest.fixture(scope="session")
def trace_records():
    from repro.workloads import generate_traces

    return generate_traces(N_OBSERVATIONS, n_vehicles=N_VEHICLES)


@pytest.fixture(scope="session")
def trace_queries():
    from repro.workloads import random_region_queries

    return random_region_queries(N_QUERIES)
