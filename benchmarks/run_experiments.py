"""Standalone experiment runner: prints every paper table/figure + ablation.

The pytest-benchmark suite measures wall-clock; this script regenerates the
*content* of each experiment (the rows/series the paper reports) in one go,
for EXPERIMENTS.md. Run with::

    python benchmarks/run_experiments.py [--scale small|default|large]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_config import SEED as DEFAULT_SEED  # noqa: E402

SCALES = {
    "small": dict(n_observations=20_000, n_queries=15, page_size=8_192),
    "default": dict(n_observations=60_000, n_queries=40, page_size=16_384),
    "large": dict(n_observations=200_000, n_queries=100, page_size=65_536),
}

PAPER_FIGURE2 = {
    "N1": 206_064, "N2": 82_430, "N3": 1_792, "N4": 771, "rtree": 15_780
}


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def figure2(scale: dict) -> None:
    from repro.experiments import run_figure2

    banner("Figure 2 — pages/query per physical design (case study, §6)")
    start = time.time()
    result = run_figure2(verify=True, **scale)
    print(result.format_table())
    paper_n3 = PAPER_FIGURE2["N3"]
    ours_n3 = result.layouts["N3"].pages_per_query
    print("\nnormalized to N3 (paper vs measured):")
    for name in ("N1", "N2", "N3", "N4", "rtree"):
        measured = result.layouts[name].pages_per_query / ours_n3
        paper = PAPER_FIGURE2[name] / paper_n3
        print(f"  {name:<6} paper {paper:8.1f}x   measured {measured:8.1f}x")
    print(f"[{time.time() - start:.1f}s]")


def sales(scale: dict) -> None:
    from repro.engine.database import RodentStore
    from repro.workloads import SALES_SCHEMA, generate_sales, year_zip_queries

    banner("§1 example — zorder(grid[y, z](N)) on sales records")
    records = generate_sales(scale["n_observations"] // 2)
    queries = year_zip_queries(scale["n_queries"])
    designs = {
        "rows": "Sales",
        "columns": "columns(Sales)",
        "zorder(grid[y,z])": (
            "zorder(grid[year, zipcode],[1, 10](project"
            "[year, zipcode, quantity, price](Sales)))"
        ),
    }
    print(f"{'design':<20}{'pages/query':>12}")
    for name, layout in designs.items():
        store = RodentStore(page_size=scale["page_size"], pool_capacity=96)
        store.create_table("Sales", SALES_SCHEMA, layout=layout)
        table = store.load("Sales", records)
        pages = 0
        for q in queries:
            _, io = store.run_cold(
                lambda q=q: list(
                    table.scan(fieldlist=["quantity", "price"], predicate=q)
                )
            )
            pages += io.page_reads
        print(f"{name:<20}{pages / len(queries):>12.1f}")


SCAN_BENCH_LAYOUTS = {
    "rows": "Sales",
    "columns": "columns(Sales)",
    "grouped": "columns[[year, month, day], [zipcode], [customerid], "
    "[productid], [quantity, price]](Sales)",
    "mirror": "mirror(rows(Sales), columns(Sales))",
}


def scan_bench(
    scale: dict, out_path: str = "BENCH_scan.json", seed: int = DEFAULT_SEED
) -> dict:
    """Full-table scan throughput, batch pipeline vs tuple-at-a-time.

    Writes ``BENCH_scan.json`` — rows/sec per layout for the batch path
    (``Table.scan``) and the reference path (``Table.scan_reference``),
    i.e. after/before the batch pipeline — so the scan-path performance
    trajectory is visible across PRs.
    """
    from repro.engine.database import RodentStore
    from repro.workloads import SALES_SCHEMA, generate_sales

    banner("Scan throughput — batch pipeline vs reference (BENCH_scan.json)")
    n_records = scale["n_observations"] // 2
    records = generate_sales(n_records, seed=seed)
    result: dict = {
        "benchmark": "full_table_scan",
        "n_records": n_records,
        "page_size": scale["page_size"],
        "seed": seed,
        "unit": "rows_per_sec",
        "layouts": {},
    }
    print(f"{'layout':<10}{'reference':>14}{'batch':>14}{'speedup':>9}")
    for name, layout in SCAN_BENCH_LAYOUTS.items():
        store = RodentStore(page_size=scale["page_size"], pool_capacity=96)
        store.create_table("Sales", SALES_SCHEMA, layout=layout)
        table = store.load("Sales", records)
        timings = {}
        for label, scan in (
            ("batch", table.scan),
            ("reference", table.scan_reference),
        ):
            assert sum(1 for _ in scan()) == n_records  # warm + verify
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                count = sum(1 for _ in scan())
                best = min(best, time.perf_counter() - start)
            assert count == n_records
            timings[label] = n_records / best
        speedup = timings["batch"] / timings["reference"]
        result["layouts"][name] = {
            "rows_per_sec_reference": round(timings["reference"], 1),
            "rows_per_sec_batch": round(timings["batch"], 1),
            "speedup": round(speedup, 2),
        }
        print(
            f"{name:<10}{timings['reference']:>14,.0f}"
            f"{timings['batch']:>14,.0f}{speedup:>8.2f}x"
        )
    result["generated_unix"] = int(time.time())
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")
    return result


def query_bench(
    scale: dict, out_path: str = "BENCH_query.json", seed: int = DEFAULT_SEED
) -> dict:
    """Query-pipeline throughput: hash join + grouped aggregation per layout.

    Writes ``BENCH_query.json`` — input rows/sec through the compiled
    operator pipeline for (a) a group-by over the fact table and (b) a
    hash join against a customer dimension followed by a grouped rollup —
    so the query-stack performance trajectory is visible across PRs.
    """
    import random

    from repro.engine.database import RodentStore
    from repro.query import Q
    from repro.types.schema import Schema
    from repro.workloads import SALES_SCHEMA, generate_sales

    banner("Query pipeline — join + group-by throughput (BENCH_query.json)")
    n_records = scale["n_observations"] // 2
    records = generate_sales(n_records, seed=seed)
    n_customers = 2000
    rng = random.Random(seed)
    customer_schema = Schema.of("customerid:int", "region:int", "segment:int")
    customers = [
        (i, i % 50, rng.randrange(4)) for i in range(n_customers)
    ]
    result: dict = {
        "benchmark": "query_pipeline",
        "n_records": n_records,
        "n_customers": n_customers,
        "page_size": scale["page_size"],
        "seed": seed,
        "unit": "input_rows_per_sec",
        "layouts": {},
    }
    print(f"{'layout':<10}{'group-by':>14}{'hash join':>14}")
    for name, layout in SCAN_BENCH_LAYOUTS.items():
        store = RodentStore(page_size=scale["page_size"], pool_capacity=96)
        store.create_table("Sales", SALES_SCHEMA, layout=layout)
        store.create_table("Customers", customer_schema)
        store.load("Sales", records)
        store.load("Customers", customers)

        def run_groupby():
            return (
                Q(store, "Sales")
                .group_by("productid")
                .agg(n="*", qty="sum:quantity", revenue="sum:price")
                .run()
            )

        def run_join():
            return (
                Q(store, "Sales")
                .join("Customers", on="customerid")
                .group_by("region")
                .agg(revenue="sum:price")
                .run()
            )

        timings = {}
        for label, fn in (("groupby", run_groupby), ("join", run_join)):
            rows = fn()  # warm + verify
            assert rows, f"{label} produced no rows"
            if label == "groupby":
                assert sum(r[1] for r in rows) == n_records
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            timings[label] = n_records / best
        result["layouts"][name] = {
            "groupby_rows_per_sec": round(timings["groupby"], 1),
            "join_rows_per_sec": round(timings["join"], 1),
        }
        print(
            f"{name:<10}{timings['groupby']:>14,.0f}{timings['join']:>14,.0f}"
        )
    result["generated_unix"] = int(time.time())
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")
    return result


VECTOR_BATCH_ROWS_SWEEP = (256, 512, 1024, 2048, 4096, 8192)


def vector_bench(
    scale: dict, out_path: str = "BENCH_vector.json", seed: int = DEFAULT_SEED
) -> dict:
    """Vectorized execution core: before/after on the same machine.

    Writes ``BENCH_vector.json`` — scan / group-by / join throughput on the
    ``columns(Sales)`` layout with ``store.vectorized`` on vs off (the "off"
    mode runs the identical batch pipeline transposed to row tuples at the
    leaf, so the delta isolates the typed-buffer paths), a ``batch_rows``
    sweep justifying the default granularity, and the pure-Python
    ``array``-module fallback with numpy disabled. All modes are verified
    against each other before timing.
    """
    from repro import vector
    from repro.engine.database import RodentStore
    from repro.query import Q
    from repro.types.schema import Schema
    from repro.workloads import SALES_SCHEMA, generate_sales

    banner("Vectorized execution — typed buffers on/off (BENCH_vector.json)")
    n_records = scale["n_observations"] // 2
    records = generate_sales(n_records, seed=seed)
    customer_schema = Schema.of("customerid:int", "region:int", "segment:int")
    customers = [(i, i % 50, i % 4) for i in range(2000)]

    def build(batch_rows=None):
        kwargs = {} if batch_rows is None else {"batch_rows": batch_rows}
        store = RodentStore(
            page_size=scale["page_size"], pool_capacity=96, **kwargs
        )
        store.create_table("Sales", SALES_SCHEMA, layout="columns(Sales)")
        store.create_table("Customers", customer_schema)
        table = store.load("Sales", records)
        store.load("Customers", customers)
        return store, table

    def best_of(fn, n=3):
        best = float("inf")
        for _ in range(n):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return n_records / best

    def run_groupby(store):
        return (
            Q(store, "Sales")
            .group_by("productid")
            .agg(n="*", qty="sum:quantity", revenue="sum:price")
            .run()
        )

    def run_join(store):
        return (
            Q(store, "Sales")
            .join("Customers", on="customerid")
            .group_by("region")
            .agg(revenue="sum:price")
            .run()
        )

    def run_filter(store):
        from repro.query.expressions import Range

        return (
            Q(store, "Sales")
            .select("quantity", "price")
            .where(Range("quantity", 1, 3))
            .run()
        )

    store, table = build()
    result: dict = {
        "benchmark": "vectorized_execution",
        "n_records": n_records,
        "page_size": scale["page_size"],
        "seed": seed,
        "numpy_available": vector.numpy_module() is not None,
        "default_batch_rows": store.batch_rows,
        "unit": "rows_per_sec",
    }

    # --- scan: batch pipeline vs the untouched tuple-at-a-time oracle ---
    assert sum(1 for _ in table.scan()) == n_records  # warm + verify
    result["scan"] = {
        "rows_per_sec_reference": round(
            best_of(lambda: sum(1 for _ in table.scan_reference())), 1
        ),
        "rows_per_sec_batch": round(
            best_of(lambda: sum(1 for _ in table.scan())), 1
        ),
    }
    result["scan"]["speedup"] = round(
        result["scan"]["rows_per_sec_batch"]
        / result["scan"]["rows_per_sec_reference"],
        2,
    )
    print(
        f"scan: reference {result['scan']['rows_per_sec_reference']:,.0f} "
        f"rows/s, batch {result['scan']['rows_per_sec_batch']:,.0f} rows/s "
        f"({result['scan']['speedup']:.1f}x)\n"
    )

    # --- operator pipeline, vectorized on vs off (row-backed leaves) ---
    modes: dict = {}
    answers: dict = {}
    for mode, flag in (("vectorized", True), ("rowwise", False)):
        store.vectorized = flag
        answers[mode] = (
            sorted(run_filter(store)),
            sorted(run_groupby(store)),
            sorted(run_join(store)),
        )
        modes[mode] = {
            "filter_rows_per_sec": round(
                best_of(lambda: run_filter(store)), 1
            ),
            "groupby_rows_per_sec": round(
                best_of(lambda: run_groupby(store)), 1
            ),
            "join_rows_per_sec": round(best_of(lambda: run_join(store)), 1),
        }
    store.vectorized = True
    assert answers["vectorized"] == answers["rowwise"], (
        "vectorized mode changed query answers"
    )
    result["modes"] = modes
    print(f"{'mode':<12}{'filter':>14}{'group-by':>14}{'join':>14}")
    for mode, stats in modes.items():
        print(
            f"{mode:<12}"
            + "".join(
                f"{stats[k]:>14,.0f}"
                for k in (
                    "filter_rows_per_sec",
                    "groupby_rows_per_sec",
                    "join_rows_per_sec",
                )
            )
        )
    for metric in ("filter", "groupby", "join"):
        result[f"{metric}_speedup"] = round(
            modes["vectorized"][f"{metric}_rows_per_sec"]
            / modes["rowwise"][f"{metric}_rows_per_sec"],
            2,
        )

    # --- batch granularity sweep (justifies the default batch_rows) ---
    sweep: dict = {}
    print(f"\n{'batch_rows':<12}{'scan':>14}")
    for batch_rows in VECTOR_BATCH_ROWS_SWEEP:
        _, swept = build(batch_rows=batch_rows)
        assert sum(1 for _ in swept.scan()) == n_records
        sweep[str(batch_rows)] = round(
            best_of(lambda: sum(1 for _ in swept.scan())), 1
        )
        print(f"{batch_rows:<12}{sweep[str(batch_rows)]:>14,.0f}")
    result["batch_rows_sweep"] = sweep

    # --- pure-Python fallback: same answers with numpy switched off ---
    prev = vector.set_numpy_enabled(False)
    try:
        fb_store, fb_table = build()
        assert sum(1 for _ in fb_table.scan()) == n_records
        assert sorted(run_filter(fb_store)) == answers["vectorized"][0]
        assert sorted(run_groupby(fb_store)) == answers["vectorized"][1]
        result["no_numpy"] = {
            "scan_rows_per_sec": round(
                best_of(lambda: sum(1 for _ in fb_table.scan())), 1
            ),
            "groupby_rows_per_sec": round(
                best_of(lambda: run_groupby(fb_store)), 1
            ),
        }
    finally:
        vector.set_numpy_enabled(prev)
    print(
        f"\nno-numpy fallback: scan "
        f"{result['no_numpy']['scan_rows_per_sec']:,.0f} rows/s, group-by "
        f"{result['no_numpy']['groupby_rows_per_sec']:,.0f} rows/s"
    )

    result["generated_unix"] = int(time.time())
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")
    return result


PRUNE_BENCH_LAYOUTS = {
    "rows": "P",
    "columns": "columns(P)",
    "grid": "grid[x, y],[1, 1](P)",
    # fold[nest; group]: grouped by g, so the predicate field t is nested —
    # only the new per-record nest-vector zones can prune it.
    "folded": "fold[t, v; g](P)",
}

PRUNE_BENCH_SELECTIVITIES = (0.001, 0.01, 0.1, 1.0)


def prune_bench(
    scale: dict, out_path: str = "BENCH_prune.json", seed: int = DEFAULT_SEED
) -> dict:
    """Selective-scan throughput with zone-map pruning on vs off.

    Writes ``BENCH_prune.json`` — rows/sec and cold-cache pages read per
    layout kind at selectivities 0.1% / 1% / 10% / 100% on a clustered
    field, with ``store.zone_pruning`` toggled — so the pruning payoff is
    visible across PRs. The predicate field (``t``) is *not* a grid
    dimension or fold key, so grid/folded numbers isolate the new zone
    maps from the pre-existing cell-directory and key-range pruning.
    """
    import random

    from repro.engine.database import RodentStore
    from repro.query.expressions import Range
    from repro.types.schema import Schema

    banner("Zone-map scan pruning — on vs off (BENCH_prune.json)")
    n_records = scale["n_observations"] // 2
    rng = random.Random(seed)
    schema = Schema.of("t:int", "g:int", "x:int", "y:int", "v:int")
    # t is clustered in storage order (timestamps, autoincrement ids);
    # the grid dims tile it into contiguous 250-row cells.
    records = [
        (i, i // 500, (i // 250) % 20, i // 5000, rng.randrange(10_000))
        for i in range(n_records)
    ]
    result: dict = {
        "benchmark": "zone_map_scan_pruning",
        "n_records": n_records,
        "page_size": scale["page_size"],
        "seed": seed,
        "unit": "rows_per_sec",
        "selectivities": list(PRUNE_BENCH_SELECTIVITIES),
        "layouts": {},
    }
    print(
        f"{'layout':<9}{'sel':>7}{'match':>8}{'off r/s':>12}{'on r/s':>12}"
        f"{'speedup':>9}{'pages off':>11}{'pages on':>10}"
    )
    for name, layout in PRUNE_BENCH_LAYOUTS.items():
        store = RodentStore(page_size=scale["page_size"], pool_capacity=256)
        store.create_table("P", schema, layout=layout)
        table = store.load("P", records)
        per_sel: dict = {}
        for selectivity in PRUNE_BENCH_SELECTIVITIES:
            hi = max(0, int(n_records * selectivity) - 1)
            predicate = Range("t", 0, hi)
            timings = {}
            counts = {}
            pages = {}
            for label, pruning in (("unpruned", False), ("pruned", True)):
                store.zone_pruning = pruning
                counts[label] = sum(1 for _ in table.scan(predicate=predicate))
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    sum(1 for _ in table.scan(predicate=predicate))
                    best = min(best, time.perf_counter() - start)
                timings[label] = n_records / best
                _, io = store.run_cold(
                    lambda: sum(1 for _ in table.scan(predicate=predicate))
                )
                pages[label] = io.page_reads
            assert counts["pruned"] == counts["unpruned"], (
                name, selectivity, counts,
            )
            store.zone_pruning = True
            speedup = timings["pruned"] / timings["unpruned"]
            per_sel[str(selectivity)] = {
                "matching_rows": counts["pruned"],
                "rows_per_sec_unpruned": round(timings["unpruned"], 1),
                "rows_per_sec_pruned": round(timings["pruned"], 1),
                "speedup": round(speedup, 2),
                "pages_read_unpruned": pages["unpruned"],
                "pages_read_pruned": pages["pruned"],
                "pages_pruned_estimate": table.pruned_pages(predicate),
            }
            print(
                f"{name:<9}{selectivity:>7.1%}{counts['pruned']:>8}"
                f"{timings['unpruned']:>12,.0f}{timings['pruned']:>12,.0f}"
                f"{speedup:>8.2f}x{pages['unpruned']:>11}{pages['pruned']:>10}"
            )
        result["layouts"][name] = per_sel
    result["generated_unix"] = int(time.time())
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")
    return result


def adapt_bench(
    scale: dict, out_path: str = "BENCH_adapt.json", seed: int = DEFAULT_SEED
) -> dict:
    """The closed adaptive loop under a shifting workload (BENCH_adapt.json).

    One store starts on the canonical row layout and serves three workload
    phases — point lookups, range scans on a different field, then analytic
    projections. The live monitor → advisor → reorganizer loop re-layouts
    the table as the workload shifts; after each phase the adaptive store's
    per-query latency is compared against a *hand-tuned oracle* store built
    directly in that phase's best layout. The headline number is
    ``within_oracle_ratio`` (adaptive / oracle; 1.0 = as good as the hand
    tuning): phases the loop *adapted* must land within 1.5x of the
    oracle. The point-lookup phase intentionally records a hysteresis
    hold (``adapted: false``): zone-map pruning makes the unsorted row
    layout's predicted I/O a near-tie with the sorted oracle, so the loop
    correctly refuses to move data for it — the residual gap is per-page
    CPU the paper's I/O model deliberately ignores.
    """
    import random

    from repro.engine.database import RodentStore
    from repro.query.expressions import Range
    from repro.types.schema import Schema

    banner("Adaptive loop — shifting workload vs oracle (BENCH_adapt.json)")
    # Enough pages that transfer time dominates the per-scan seek, so the
    # cost model can actually separate the designs.
    n_records = scale["n_observations"] // 2
    page_size = scale["page_size"] // 8
    rng = random.Random(seed)
    schema = Schema.of("t:int", "k:int", "a:int", "b:int", "v:int")
    records = [
        (
            i,
            (i * 17) % 100,
            rng.randrange(1000),
            rng.randrange(50),
            rng.randrange(10_000),
        )
        for i in range(n_records)
    ]

    def point_queries(phase_rng):
        return [
            dict(
                predicate=Range("t", x, x + 9),
                fieldlist=None,
            )
            for x in (
                phase_rng.randrange(n_records - 10) for _ in range(40)
            )
        ]

    def range_queries(phase_rng):
        return [
            dict(predicate=Range("k", lo, lo + 4), fieldlist=None)
            for lo in (phase_rng.randrange(95) for _ in range(40))
        ]

    def projection_queries(phase_rng):
        # Single-column rollup-style reads: the narrow projections DSM
        # serves best (and mini-record grouping cannot beat).
        return [
            dict(predicate=None, fieldlist=[phase_rng.choice(["a", "v"])])
            for _ in range(40)
        ]

    phases = [
        ("point_lookup", point_queries, "orderby[t](T)"),
        ("range_scan", range_queries, "orderby[k](T)"),
        ("analytic_projection", projection_queries, "columns(T)"),
    ]

    store = RodentStore(
        page_size=page_size,
        pool_capacity=512,
        adaptive=True,
        adapt_interval=16,
    )
    # 40-query phases: decay fast enough that the previous phase's shape
    # fades within one phase of the new one.
    store.adaptivity.decay = 0.9
    store.create_table("T", schema)
    store.load("T", records)

    def run_phase(target_store, queries) -> float:
        """Mean per-query seconds (queries drive the monitor as they run)."""
        start = time.perf_counter()
        for q in queries:
            table = target_store.table("T")
            for _ in table.scan(
                fieldlist=q["fieldlist"], predicate=q["predicate"]
            ):
                pass
        return (time.perf_counter() - start) / len(queries)

    result: dict = {
        "benchmark": "adaptive_loop",
        "n_records": n_records,
        "page_size": page_size,
        "seed": seed,
        "unit": "ms_per_query",
        "phases": {},
    }
    print(
        f"{'phase':<22}{'layout after':>16}{'adaptive':>11}{'oracle':>11}"
        f"{'ratio':>8}"
    )
    for phase_index, (name, make_queries, oracle_layout) in enumerate(phases):
        queries = make_queries(random.Random(seed * 31 + phase_index))
        layout_before = store.table("T").plan.expr.to_text()
        run_phase(store, queries)  # warm the monitor; loop may adapt inline
        store.adapt("T")  # force convergence at the phase boundary
        adaptive_ms = run_phase(store, queries) * 1e3
        layout_after = store.table("T").plan.expr.to_text()

        oracle = RodentStore(page_size=page_size, pool_capacity=512)
        oracle.create_table("T", schema, layout=oracle_layout)
        oracle.load("T", records)
        run_phase(oracle, queries)  # warm the buffer pool, like adaptive
        oracle_ms = run_phase(oracle, queries) * 1e3
        ratio = adaptive_ms / oracle_ms
        result["phases"][name] = {
            "layout_before": layout_before,
            "layout_after": layout_after,
            "adapted": layout_after != layout_before,
            "adaptive_ms_per_query": round(adaptive_ms, 3),
            "oracle_layout": oracle_layout,
            "oracle_ms_per_query": round(oracle_ms, 3),
            "within_oracle_ratio": round(ratio, 3),
        }
        print(
            f"{name:<22}{layout_after:>16}{adaptive_ms:>10.2f}m"
            f"{oracle_ms:>10.2f}m{ratio:>8.2f}"
        )
    report = store.storage_stats()["adaptivity"]
    result["adaptations"] = report["adaptations"]
    result["reorganization_io"] = report["reorganization_io"]
    result["generated_unix"] = int(time.time())
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"adaptations: {report['adaptations']}")
    print(f"wrote {os.path.abspath(out_path)}")
    return result


def partition_bench(
    scale: dict,
    out_path: str = "BENCH_partition.json",
    seed: int = DEFAULT_SEED,
) -> dict:
    """Partition pruning + parallel partition scans.

    Writes ``BENCH_partition.json``:

    * **pruning sweep** — a range-partitioned table queried at decreasing
      selectivities; records the fraction of partitions skipped via the
      partition map and the cold page reads with pruning on vs fully off
      (partition pruning *and* zone maps disabled);
    * **parallel sweep** — wall-clock full scans of a multi-partition
      table on a simulated-latency disk for increasing worker counts,
      with the speedup over the single-threaded scan.

    The acceptance gates this PR ships under: point/range queries at
    ≤ 1% selectivity must skip ≥ 80% of partitions, and some parallel
    worker count must beat the serial scan.
    """
    import random as _random

    from repro.engine.database import RodentStore
    from repro.query.expressions import Range
    from repro.types.schema import Schema

    banner(
        "Partitioned tables — pruning + parallel scans "
        "(BENCH_partition.json)"
    )
    rng = _random.Random(seed)
    n_records = max(20_000, scale["n_observations"] // 2)
    n_partitions = 25
    domain = n_records  # t uniform in [0, domain)
    records = [
        (rng.randrange(domain), rng.randrange(1000), rng.randrange(100))
        for _ in range(n_records)
    ]
    schema = Schema.of("t:int", "x:int", "g:int")
    stride = domain // n_partitions
    bounds = ", ".join(str(b) for b in range(stride, domain, stride))
    layout = f"partition[r.t; range, {bounds}](T)"

    result: dict = {
        "benchmark": "partitioned_tables",
        "n_records": n_records,
        "n_partitions": n_partitions,
        "page_size": scale["page_size"],
        "seed": seed,
        "pruning": [],
        "parallel": {},
    }

    # -- (a) partition-pruning selectivity sweep ---------------------------
    store = RodentStore(page_size=scale["page_size"], pool_capacity=256)
    store.create_table("T", schema, layout=layout)
    table = store.load("T", records)
    assert table.partition_count == n_partitions
    print(
        f"{'selectivity':>12}{'partitions pruned':>19}"
        f"{'pages (pruned)':>16}{'pages (full)':>14}"
    )
    for selectivity in (0.001, 0.005, 0.01, 0.05, 0.2):
        width = max(1, int(domain * selectivity))
        lo = rng.randrange(max(1, domain - width))
        predicate = Range("t", lo, lo + width - 1)
        pruned = table.partitions_pruned(predicate)
        _, io_on = store.run_cold(
            lambda p=predicate: sum(1 for _ in table.scan(predicate=p))
        )
        store.partition_pruning = False
        store.zone_pruning = False
        _, io_off = store.run_cold(
            lambda p=predicate: sum(1 for _ in table.scan(predicate=p))
        )
        store.partition_pruning = True
        store.zone_pruning = True
        fraction = pruned / n_partitions
        result["pruning"].append(
            {
                "selectivity": selectivity,
                "partitions_pruned": pruned,
                "partition_count": n_partitions,
                "fraction_pruned": round(fraction, 4),
                "pages_read_pruned": io_on.page_reads,
                "pages_read_full": io_off.page_reads,
            }
        )
        print(
            f"{selectivity:>12.3%}{pruned:>10}/{n_partitions:<8}"
            f"{io_on.page_reads:>16,}{io_off.page_reads:>14,}"
        )
    selective = [
        e for e in result["pruning"] if e["selectivity"] <= 0.01
    ]
    prune_ok = bool(selective) and all(
        e["fraction_pruned"] >= 0.8 for e in selective
    )
    result["prune_ok"] = prune_ok
    store.close()

    # -- (b) parallel-scan speedup vs worker count -------------------------
    # A simulated per-page read latency models a device where I/O waits
    # dominate; workers overlap those waits (the sleep is paid outside
    # the disk/pool locks).
    latency_s = 0.0002
    store = RodentStore(
        page_size=scale["page_size"],
        pool_capacity=512,
        read_latency_s=latency_s,
    )
    store.create_table("T", schema, layout=layout)
    table = store.load("T", records)

    def timed_scan() -> float:
        store.pool.clear()
        store.disk.reset_head()
        start = time.perf_counter()
        count = sum(len(rows) for rows in table.scan_batches())
        elapsed = time.perf_counter() - start
        assert count == n_records
        return elapsed

    serial_s = min(timed_scan() for _ in range(2))
    result["parallel"] = {
        "read_latency_s_per_page": latency_s,
        "serial_ms": round(serial_s * 1000, 2),
        "workers": {},
    }
    print(f"\n{'workers':>8}{'scan ms':>10}{'speedup':>9}")
    print(f"{'serial':>8}{serial_s * 1000:>10.1f}{'1.00x':>9}")
    best_parallel = float("inf")
    for workers in (2, 4, 8):
        store.scan_workers = workers
        elapsed = min(timed_scan() for _ in range(2))
        best_parallel = min(best_parallel, elapsed)
        result["parallel"]["workers"][str(workers)] = {
            "scan_ms": round(elapsed * 1000, 2),
            "speedup": round(serial_s / elapsed, 2),
        }
        print(
            f"{workers:>8}{elapsed * 1000:>10.1f}"
            f"{serial_s / elapsed:>8.2f}x"
        )
    store.scan_workers = 0
    result["parallel_ok"] = best_parallel < serial_s
    store.close()

    print(
        f"\nacceptance: prune_ok={prune_ok} "
        f"parallel_ok={result['parallel_ok']}"
    )
    result["generated_unix"] = int(time.time())
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")
    return result


def optimizer(scale: dict) -> None:
    from repro.engine.cost import CostModel
    from repro.engine.stats import TableStats
    from repro.optimizer import (
        PlanCostEstimator,
        Query,
        Workload,
        enumerate_candidates,
        exhaustive_search,
        greedy_stride_descent,
        simulated_annealing,
    )
    from repro.workloads import TRACE_SCHEMA, generate_traces, random_region_queries

    banner("§5 — design-space search strategies")
    records = generate_traces(scale["n_observations"] // 2, n_vehicles=10)
    stats = TableStats.collect(TRACE_SCHEMA, records)
    model = CostModel(page_size=scale["page_size"])
    estimator = PlanCostEstimator(stats, model, scale["page_size"])
    workload = Workload("Traces")
    for i, q in enumerate(random_region_queries(10)):
        workload.add(Query(name=f"q{i}", fieldlist=("lat", "lon"), predicate=q))
    candidates = enumerate_candidates(TRACE_SCHEMA, stats, workload)

    print(f"column-grouping space 2^n = {2 ** len(TRACE_SCHEMA):,}; "
          f"candidate pool = {len(candidates)}")
    ex = exhaustive_search(candidates, TRACE_SCHEMA, estimator, workload)
    print(f"{'exhaustive':<22}{ex.best.total_ms:>10.1f} ms "
          f"({ex.evaluated} designs)")
    from repro.algebra.parser import parse

    seed = parse("grid[lat, lon],[60000, 80000](project[lat, lon](Traces))")
    gd = greedy_stride_descent(seed, TRACE_SCHEMA, estimator, workload)
    print(f"{'stride descent':<22}{gd.best.total_ms:>10.1f} ms "
          f"({gd.evaluated} designs, from a deliberately bad seed)")
    sa = simulated_annealing(
        candidates, TRACE_SCHEMA, estimator, workload, iterations=120, seed=1
    )
    print(f"{'simulated annealing':<22}{sa.best.total_ms:>10.1f} ms "
          f"({sa.evaluated} designs)")
    print(f"winner: {ex.expression.to_text()}")


def ablations(scale: dict) -> None:
    from repro.engine.cost import CostModel
    from repro.engine.database import RodentStore
    from repro.experiments.figure2 import n3_expr
    from repro.workloads import (
        BOSTON,
        TRACE_SCHEMA,
        generate_traces,
        grid_strides_for,
        random_region_queries,
    )

    records = generate_traces(scale["n_observations"] // 2, n_vehicles=15)
    queries = random_region_queries(max(10, scale["n_queries"] // 2))

    banner("Ablation A — grid cell size (cells per side)")
    print(f"{'cells/side':>10}{'pages/query':>13}{'seeks/query':>13}")
    for cells in (4, 8, 16, 32, 64):
        lat, lon = grid_strides_for(BOSTON, cells)
        store = RodentStore(page_size=scale["page_size"] // 2, pool_capacity=64)
        store.create_table("Traces", TRACE_SCHEMA, layout=n3_expr(lat, lon))
        table = store.load("Traces", records)
        pages = seeks = 0
        for q in queries:
            _, io = store.run_cold(lambda q=q: list(table.scan(predicate=q)))
            pages += io.page_reads
            seeks += io.read_seeks
        print(f"{cells:>10}{pages / len(queries):>13.1f}"
              f"{seeks / len(queries):>13.1f}")

    banner("Ablation B — page size")
    print(f"{'page KB':>8}{'pages/q':>10}{'seeks/q':>10}{'KB/q':>10}{'est ms':>9}")
    for page_size in (2_048, 8_192, 32_768, 131_072):
        lat, lon = grid_strides_for(BOSTON, 32)
        model = CostModel(page_size=page_size)
        store = RodentStore(page_size=page_size, pool_capacity=64,
                            cost_model=model)
        store.create_table("Traces", TRACE_SCHEMA, layout=n3_expr(lat, lon))
        table = store.load("Traces", records)
        pages = seeks = 0
        for q in queries:
            _, io = store.run_cold(lambda q=q: list(table.scan(predicate=q)))
            pages += io.page_reads
            seeks += io.read_seeks
        n = len(queries)
        print(f"{page_size // 1024:>8}{pages / n:>10.1f}{seeks / n:>10.1f}"
              f"{pages / n * page_size / 1024:>10.1f}"
              f"{model.cost_ms(pages / n, seeks / n):>9.2f}")

    banner("Ablation D — cell ordering (seeks)")
    base = (
        "grid[lat, lon],[{lat:g}, {lon:g}](project[lat, lon]"
        "(groupby[id](orderby[t](Traces))))"
    )
    lat, lon = grid_strides_for(BOSTON, 48)
    print(f"{'ordering':<10}{'pages/query':>12}{'seeks/query':>12}")
    for name, template in (
        ("rowmajor", base),
        ("zorder", f"zorder({base})"),
        ("hilbert", f"hilbert({base})"),
    ):
        store = RodentStore(page_size=4096, pool_capacity=64)
        store.create_table(
            "Traces", TRACE_SCHEMA, layout=template.format(lat=lat, lon=lon)
        )
        table = store.load("Traces", records)
        pages = seeks = 0
        for q in queries:
            _, io = store.run_cold(lambda q=q: list(table.scan(predicate=q)))
            pages += io.page_reads
            seeks += io.read_seeks
        print(f"{name:<10}{pages / len(queries):>12.1f}"
              f"{seeks / len(queries):>12.1f}")


def compression(scale: dict) -> None:
    from repro.compression import get_codec
    from repro.types import INT
    from repro.workloads import generate_timeseries, generate_traces, series_column

    banner("Ablation C — compression ratios (encoded/raw)")
    traces = generate_traces(scale["n_observations"] // 2, n_vehicles=10)
    columns = {
        "trace.lat": [r[1] for r in traces],
        "trace.id": [r[3] for r in traces],
        "ts.smooth": series_column(
            generate_timeseries(20_000, n_series=1, kind="smooth"), 0
        ),
        "ts.steppy": series_column(
            generate_timeseries(20_000, n_series=1, kind="steppy"), 0
        ),
    }
    baseline = {
        name: len(get_codec("none").encode(v, INT))
        for name, v in columns.items()
    }
    print(f"{'codec':<9}" + "".join(f"{n:>12}" for n in columns))
    for codec_name in ("varint", "delta", "rle", "dict", "bitpack", "lz"):
        codec = get_codec(codec_name)
        row = []
        for name, values in columns.items():
            encoded = codec.encode(values, INT)
            row.append(len(encoded) / baseline[name])
        print(f"{codec_name:<9}" + "".join(f"{r:>12.3f}" for r in row))


def reorganization(scale: dict) -> None:
    from repro.engine.database import RodentStore
    from repro.optimizer.reorganize import Policy, ReorganizationManager
    from repro.workloads import (
        BOSTON,
        TRACE_SCHEMA,
        generate_traces,
        grid_strides_for,
        random_region_queries,
    )

    banner("Ablation H — reorganization policies (10 accesses)")
    records = generate_traces(scale["n_observations"] // 4, n_vehicles=10)
    queries = random_region_queries(5)
    lat, lon = grid_strides_for(BOSTON, 32)
    design = f"grid[lat, lon],[{lat:g}, {lon:g}](project[lat, lon](Traces))"
    print(f"{'policy':<15}{'rewrite writes':>15}{'query reads':>13}"
          f"{'final layout':>14}")
    for policy in (Policy.EAGER, Policy.NEW_DATA_ONLY, Policy.LAZY):
        store = RodentStore(page_size=scale["page_size"] // 2, pool_capacity=64)
        store.create_table("Traces", TRACE_SCHEMA)
        store.load("Traces", records)
        manager = ReorganizationManager(store, lazy_access_threshold=4)
        manager.set_policy("Traces", policy)
        manager.apply_design("Traces", design, source_records=records)
        reads = 0
        for i in range(10):
            manager.on_access("Traces")
            table = store.table("Traces")
            q = queries[i % len(queries)]
            _, io = store.run_cold(lambda q=q: list(
                table.scan(fieldlist=["lat", "lon"], predicate=q)
            ))
            reads += io.page_reads
        print(f"{policy.value:<15}"
              f"{manager.reorganization_io.page_writes:>15}"
              f"{reads:>13}{store.table('Traces').plan.kind:>14}")


def txn_bench(
    scale: dict, out_path: str = "BENCH_txn.json", seed: int = DEFAULT_SEED
) -> dict:
    """Durability-layer costs: group commit and crash recovery.

    Writes ``BENCH_txn.json``:

    * ``group_commit`` — commit throughput of 4 concurrent writers vs the
      group-commit window, plus fsyncs/commit (the batching the window
      buys: followers piggyback on the leader's fsync).
    * ``recovery`` — reopen-after-crash recovery time as the WAL grows
      (more unsynced-at-checkpoint transactions to replay).
    """
    import shutil
    import tempfile
    import threading

    from repro.engine.database import RodentStore
    from repro.errors import StorageError
    from repro.types import Schema

    banner("Durability — group commit + crash recovery (BENCH_txn.json)")
    schema = Schema.of("id:int", "val:int")
    result: dict = {
        "benchmark": "transactions",
        "page_size": scale["page_size"],
        "seed": seed,
        "group_commit": {},
        "recovery": [],
    }

    n_writers = 4
    per_writer = max(10, scale["n_queries"])
    print(f"group commit — {n_writers} writers x {per_writer} commits each")
    print(f"{'window':<10}{'commits/s':>12}{'fsyncs':>9}{'fsyncs/commit':>15}")
    for window in (0.0, 0.0005, 0.002):
        workdir = tempfile.mkdtemp(prefix="rodent-txnbench-")
        store = RodentStore(
            os.path.join(workdir, "db.pages"),
            page_size=scale["page_size"],
            pool_capacity=128,
            durable=True,
            group_commit_window=window,
        )
        # One table per writer: per-table write locks don't serialize the
        # workload, so commits overlap and the window can batch fsyncs.
        tables = []
        for w in range(n_writers):
            store.create_table(f"T{w}", schema)
            store.load(f"T{w}", [(i, i) for i in range(100)])
            tables.append(store.table(f"T{w}"))

        def writer(wid: int) -> None:
            for j in range(per_writer):
                tables[wid].insert([(10_000 + j, j)])

        threads = [
            threading.Thread(target=writer, args=(w,))
            for w in range(n_writers)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        commits = n_writers * per_writer
        fsyncs = store.wal.fsyncs
        store.close()
        shutil.rmtree(workdir)
        rate = commits / elapsed
        result["group_commit"][f"{window * 1000:g}ms"] = {
            "window_s": window,
            "commits": commits,
            "commits_per_sec": round(rate, 1),
            "fsyncs": fsyncs,
            "fsyncs_per_commit": round(fsyncs / commits, 3),
        }
        print(f"{window * 1000:<10g}{rate:>12,.0f}{fsyncs:>9}"
              f"{fsyncs / commits:>15.3f}")

    print(f"\nrecovery time vs WAL length")
    print(f"{'txns':<8}{'wal bytes':>12}{'recover s':>11}{'rows':>8}")
    for n_txns in (10, 40, 120):
        workdir = tempfile.mkdtemp(prefix="rodent-recbench-")
        path = os.path.join(workdir, "db.pages")
        store = RodentStore(
            path, page_size=scale["page_size"], pool_capacity=128,
            durable=True,
        )
        store.create_table("T", schema)
        store.load("T", [(i, i) for i in range(100)])
        table = store.table("T")
        for j in range(n_txns):
            table.insert([(1_000 + j * 5 + k, j) for k in range(5)])
        wal_bytes = store.wal.size_bytes
        try:
            store.wal.close()
        except StorageError:
            pass
        store.disk.close()  # unclean: no checkpoint

        start = time.perf_counter()
        reopened = RodentStore(
            path, page_size=scale["page_size"], pool_capacity=128,
            durable=True,
        )
        recover_s = time.perf_counter() - start
        rows = len(list(reopened.table("T").scan()))
        assert rows == 100 + n_txns * 5
        summary = reopened.recovery_summary
        reopened.close()
        shutil.rmtree(workdir)
        result["recovery"].append({
            "txns": n_txns,
            "wal_bytes": wal_bytes,
            "records_scanned": summary["records_scanned"],
            "recovery_sec": round(recover_s, 4),
            "rows_after": rows,
        })
        print(f"{n_txns:<8}{wal_bytes:>12,}{recover_s:>11.4f}{rows:>8}")

    result["generated_unix"] = int(time.time())
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")
    return result


def integrity_bench(
    scale: dict, out_path: str = "BENCH_integrity.json", seed: int = DEFAULT_SEED
) -> dict:
    """Cost of the end-to-end integrity layer (checksums + scrub).

    Writes ``BENCH_integrity.json``:

    * ``scan`` — the BENCH_scan columns workload (warm batch scans on a
      memory store) with page-checksum verification on vs off, plus the
      overhead in percent (target: <= 5%).  Steady-state scans serve
      from the buffer pool and layout decode caches, so each page is
      verified once on first read and never re-verified — the headline
      overhead is near zero by construction, and the JSON records the
      verified-read counts that explain why.
    * ``scan.cold_file_scan`` — the worst case: a file-backed cold scan
      where every page is re-read and re-verified.  A single cold scan
      here is ~10 ms, the same order as scheduler jitter on a one-core
      host, so besides the direct A/B this also reports a *derived*
      overhead: a stable per-page ``read_page`` microbenchmark (tight
      loop, best-of-many, on/off interleaved) times pages-per-scan over
      the cold-scan floor.  The floor is the CRC itself (~4 us per
      16 KiB page at C speed) against ~75 us/page of decode.
    * ``commit`` — durable single-row commit throughput with checksums
      (page trailers + WAL record CRCs) on vs off.
    * ``scrub`` — full-scrub wall time against store size.
    """
    import shutil
    import tempfile

    from repro.engine.database import RodentStore
    from repro.workloads import SALES_SCHEMA, generate_sales

    banner("Integrity — checksum overhead + scrub cost (BENCH_integrity.json)")
    n_records = scale["n_observations"] // 2
    records = generate_sales(n_records, seed=seed)
    result: dict = {
        "benchmark": "integrity",
        "page_size": scale["page_size"],
        "n_records": n_records,
        "seed": seed,
        "scan": {},
        "commit": {},
        "scrub": [],
    }

    import gc

    # (a) The acceptance-target workload: BENCH_scan's columns scan —
    # same store shape as scan_bench (memory backend, pool_capacity=96,
    # warm batch scans).  The A/B toggles ``store.checksums`` between
    # interleaved best-of rounds on the one store.
    store = RodentStore(
        page_size=scale["page_size"], pool_capacity=96, checksums=True
    )
    store.create_table("Sales", SALES_SCHEMA, layout="columns(Sales)")
    table = store.load("Sales", records)

    v0 = store.integrity.page_verifications
    assert sum(1 for _ in table.scan()) == n_records  # warm + verify
    first_scan_verified = store.integrity.page_verifications - v0
    v0 = store.integrity.page_verifications
    assert sum(1 for _ in table.scan()) == n_records
    steady_state_verified = store.integrity.page_verifications - v0

    # Alternate which config goes first each trial and collect between
    # labels: allocator state drifts monotonically while the collector
    # is off, so a fixed order hands the first label a systematic bias.
    warm = {"on": float("inf"), "off": float("inf")}
    configs = [("on", True), ("off", False)]
    for trial in range(10):
        for label, on in configs if trial % 2 == 0 else configs[::-1]:
            store.checksums = on
            gc.collect()
            gc.disable()
            try:
                for _ in range(5):
                    start = time.perf_counter()
                    count = sum(1 for _ in table.scan())
                    warm[label] = min(
                        warm[label], time.perf_counter() - start
                    )
                assert count == n_records
            finally:
                gc.enable()
    store.checksums = True
    store.close()

    # (b) Worst case: file-backed cold scans, every page re-verified.
    workdir = tempfile.mkdtemp(prefix="rodent-integbench-")
    store = RodentStore(
        os.path.join(workdir, "db.pages"),
        page_size=scale["page_size"],
        pool_capacity=96,
        checksums=True,
    )
    store.create_table("Sales", SALES_SCHEMA, layout="columns(Sales)")
    table = store.load("Sales", records)

    # Which pages does one cold scan read?  (Not timed.)
    scanned_pids: list = []
    orig_read = store.disk.read_page
    store.disk.read_page = lambda pid: (scanned_pids.append(pid), orig_read(pid))[1]
    store.run_cold(lambda: list(table.scan()))
    store.disk.read_page = orig_read
    pages_per_scan = len(scanned_pids)
    pids = sorted(set(scanned_pids))

    def read_loop_floor(rounds: int = 30) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for pid in pids:
                store.disk.read_page(pid)
            best = min(best, time.perf_counter() - start)
        return best

    def cold_scan_floor(rounds: int = 12) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            store.run_cold(lambda: list(table.scan()))
            best = min(best, time.perf_counter() - start)
        return best

    read_us = {}
    cold_ms = {}
    for trial in range(4):  # interleave the A/B, alternate order
        for label, on in configs if trial % 2 == 0 else configs[::-1]:
            store.disk.verify_checksums = on
            gc.collect()
            gc.disable()
            try:
                floor = read_loop_floor() / len(pids) * 1e6
                read_us[label] = min(read_us.get(label, floor), floor)
                cold = cold_scan_floor() * 1e3
                cold_ms[label] = min(cold_ms.get(label, cold), cold)
            finally:
                gc.enable()
    store.disk.verify_checksums = True
    store.close()
    shutil.rmtree(workdir)

    delta_us = read_us["on"] - read_us["off"]
    cold_measured_pct = (
        (cold_ms["on"] - cold_ms["off"]) / cold_ms["off"] * 100.0
    )
    cold_derived_pct = (
        delta_us * pages_per_scan / 1e3 / cold_ms["off"] * 100.0
    )
    result["scan"]["workload"] = (
        "BENCH_scan columns (warm batch scan, memory store)"
    )
    result["scan"]["verified_page_reads"] = {
        "first_scan": first_scan_verified,
        "steady_state": steady_state_verified,
    }
    result["scan"]["cold_file_scan"] = {
        "pages_per_scan": pages_per_scan,
        "read_us_per_page": {
            "on": round(read_us["on"], 2),
            "off": round(read_us["off"], 2),
            "delta": round(delta_us, 2),
        },
        "scan_ms": {
            "on": round(cold_ms["on"], 2),
            "off": round(cold_ms["off"], 2),
        },
        "overhead_pct_measured": round(cold_measured_pct, 2),
        "overhead_pct_derived": round(cold_derived_pct, 2),
    }
    print(
        f"cold file scan: {pages_per_scan} pages, "
        f"+{delta_us:.2f} us/page verified "
        f"({cold_derived_pct:+.2f}% derived, "
        f"{cold_measured_pct:+.2f}% measured)"
    )

    # Durable commits are fsync-bound, and fsync latency on a shared
    # host swings by orders of magnitude — so run both stores side by
    # side, alternate small batches between them, and keep each
    # config's best batch rate as its clean-window floor.
    commit_stores = {}
    commit_tables = {}
    workdirs = []
    for label, on in configs:
        workdir = tempfile.mkdtemp(prefix="rodent-integbench-")
        workdirs.append(workdir)
        commit_stores[label] = RodentStore(
            os.path.join(workdir, "db.pages"),
            page_size=scale["page_size"],
            pool_capacity=96,
            durable=True,
            checksums=on,
        )
        commit_stores[label].create_table("T", SALES_SCHEMA)
        commit_stores[label].load("T", records[:200])
        commit_tables[label] = commit_stores[label].table("T")
        for rec in records[200:205]:  # warm the insert/commit path
            commit_tables[label].insert([rec])
    n_commits = max(80, scale["n_queries"] * 8)
    batch = 10
    commit_floor = {"on": float("inf"), "off": float("inf")}
    offset = 0
    while offset < n_commits:
        chunk = records[offset : offset + batch]
        trial = offset // batch
        for label, _ in configs if trial % 2 == 0 else configs[::-1]:
            t = commit_tables[label]
            for rec in chunk:
                start = time.perf_counter()
                t.insert([rec])
                commit_floor[label] = min(
                    commit_floor[label], time.perf_counter() - start
                )
        offset += batch
    commit_best = {
        label: 1.0 / floor for label, floor in commit_floor.items()
    }
    for label, _ in configs:
        commit_stores[label].close()
    for workdir in workdirs:
        shutil.rmtree(workdir)

    print(f"{'checksums':<12}{'scan rows/s':>14}{'commits/s':>12}")
    for label, on in configs:
        scan_rate = n_records / warm[label]
        result["scan"][label] = round(scan_rate, 1)
        result["commit"][label] = round(commit_best[label], 1)
        print(f"{label:<12}{scan_rate:>14,.0f}{commit_best[label]:>12,.0f}")

    scan_overhead = (
        (result["scan"]["off"] - result["scan"]["on"])
        / result["scan"]["off"] * 100.0
    )
    commit_overhead = (
        (result["commit"]["off"] - result["commit"]["on"])
        / result["commit"]["off"] * 100.0
    )
    result["scan"]["overhead_pct"] = round(scan_overhead, 2)
    result["commit"]["overhead_pct"] = round(commit_overhead, 2)
    print(f"scan overhead {scan_overhead:+.2f}%  "
          f"commit overhead {commit_overhead:+.2f}%  (target <= 5% scan)")

    print(f"\nscrub wall time vs store size")
    print(f"{'rows':<10}{'pages':>8}{'scrub s':>10}{'clean':>7}")
    for fraction in (4, 1):
        subset = records[: n_records // fraction]
        workdir = tempfile.mkdtemp(prefix="rodent-scrubbench-")
        store = RodentStore(
            os.path.join(workdir, "db.pages"),
            page_size=scale["page_size"],
            pool_capacity=96,
            durable=True,
        )
        store.create_table("Sales", SALES_SCHEMA, layout="columns(Sales)")
        store.load("Sales", subset)
        start = time.perf_counter()
        report = store.scrub()
        scrub_s = time.perf_counter() - start
        assert report["clean"], "clean store must scrub clean"
        store.close()
        shutil.rmtree(workdir)
        result["scrub"].append({
            "rows": len(subset),
            "pages_checked": report["pages_checked"],
            "wal_records_checked": report["wal_records_checked"],
            "scrub_sec": round(scrub_s, 4),
            "clean": report["clean"],
        })
        print(f"{len(subset):<10}{report['pages_checked']:>8}"
              f"{scrub_s:>10.4f}{str(report['clean']):>7}")

    result["generated_unix"] = int(time.time())
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")
    return result


def ingest_bench(
    scale: dict, out_path: str = "BENCH_ingest.json", seed: int = DEFAULT_SEED
) -> dict:
    """Levelled (LSM) storage: streaming-ingest cost (BENCH_ingest.json).

    * ``throughput`` — sustained insert rows/s at equal volume:
      ``levels[4; 4](rows(T))`` (seal + size-tiered background merges)
      vs the pending-buffer baseline that compacts the flat table
      whenever the buffer fills (the full-rewrite pattern levelled
      storage exists to avoid). Acceptance: ``speedup >= 3``.
    * ``run_count_series`` — cumulative rows/s against the manifest's
      run count as ingest proceeds (merge stalls show up here).
    * ``write_amplification`` — bytes written / bytes ingested at equal
      volume for ``levels[r; r]`` with size ratio r in 2 / 4 / 8.
    * ``scan_during_compaction`` — range-scan latency while background
      merges run on the worker pool vs after a final full compaction,
      with every in-flight scan verified against ``scan_reference``.
    * ``no_numpy`` — the headline comparison again on the stdlib
      fallback (typed buffers off), proving the win is structural.
    """
    import random

    from repro import vector
    from repro.engine.database import RodentStore
    from repro.query.expressions import Range
    from repro.types.schema import Schema

    banner("Levelled ingest — LSM vs pending+compact (BENCH_ingest.json)")
    schema = Schema.of("id:int", "v:int")
    n_rows = max(40_000, scale["n_observations"])
    batch_rows = 256
    seal_rows = 1_024
    rng = random.Random(seed)
    records = [(i, rng.randrange(10_000)) for i in range(n_rows)]
    batches = [
        records[i : i + batch_rows] for i in range(0, n_rows, batch_rows)
    ]
    result: dict = {
        "benchmark": "levelled_ingest",
        "n_rows": n_rows,
        "batch_rows": batch_rows,
        "level_seal_rows": seal_rows,
        "page_size": scale["page_size"],
        "seed": seed,
        "unit": "rows_per_sec",
    }

    def baseline_ingest() -> float:
        """Flat table: pending buffer, full compact whenever it fills."""
        store = RodentStore(page_size=scale["page_size"], pool_capacity=96)
        store.create_table("B", schema, layout="rows(B)")
        store.load("B", [])
        table = store.table("B")
        start = time.perf_counter()
        for chunk in batches:
            table.insert(chunk)
            if table.overflow_row_count >= seal_rows:
                table.compact()
        elapsed = time.perf_counter() - start
        assert table.row_count == n_rows
        store.close()
        return n_rows / elapsed

    def levelled_ingest(
        k: int = 4, ratio: int = 4, series: list | None = None
    ):
        store = RodentStore(
            page_size=scale["page_size"],
            pool_capacity=96,
            level_seal_rows=seal_rows,
        )
        store.create_table(
            "L", schema, layout=f"levels[{k}; {ratio}](rows(L))"
        )
        table = store.table("L")
        start = time.perf_counter()
        done = 0
        for chunk in batches:
            table.insert(chunk)
            done += len(chunk)
            if series is not None and done % (batch_rows * 8) == 0:
                series.append(
                    {
                        "rows_ingested": done,
                        "run_count": table.run_count,
                        "rows_per_sec": round(
                            done / (time.perf_counter() - start), 1
                        ),
                    }
                )
        elapsed = time.perf_counter() - start
        assert table.row_count == n_rows
        stats = store.storage_stats()["tables"]["L"]
        store.close()
        return n_rows / elapsed, stats

    # -- (a) sustained throughput at equal volume --------------------------
    series: list = []
    levelled_rate, _ = levelled_ingest(series=series)
    baseline_rate = baseline_ingest()
    speedup = levelled_rate / baseline_rate
    result["throughput"] = {
        "baseline_pending_compact_rows_per_sec": round(baseline_rate, 1),
        "levelled_rows_per_sec": round(levelled_rate, 1),
        "speedup": round(speedup, 2),
    }
    result["ingest_ok"] = speedup >= 3.0
    result["run_count_series"] = series
    print(
        f"baseline (pending+compact) {baseline_rate:>12,.0f} rows/s\n"
        f"levels[4; 4]               {levelled_rate:>12,.0f} rows/s "
        f"({speedup:.1f}x, target >= 3x)"
    )

    # -- (b) write amplification vs size ratio -----------------------------
    # Classic size-tiered coupling: the growth ratio between levels IS the
    # merge fan-out, so ``levels[r; r]`` sweeps the real WA trade-off —
    # small ratios merge often (low run count, high WA), large ratios
    # rarely (more runs, low WA).
    result["write_amplification"] = {}
    print(f"\n{'ratio':<7}{'ingested MB':>13}{'written MB':>12}{'factor':>8}")
    for ratio in (2, 4, 8):
        _, stats = levelled_ingest(k=ratio, ratio=ratio)
        wa = stats["write_amplification"]
        result["write_amplification"][str(ratio)] = {
            "bytes_ingested": wa["bytes_ingested"],
            "bytes_written": wa["bytes_written"],
            "pages_rewritten_by_compaction": wa[
                "pages_rewritten_by_compaction"
            ],
            "compactions": wa["compactions"],
            "factor": wa["factor"],
        }
        print(
            f"{ratio:<7}{wa['bytes_ingested'] / 1e6:>13.2f}"
            f"{wa['bytes_written'] / 1e6:>12.2f}{wa['factor']:>8.2f}"
        )

    # -- (c) scan latency while background merges run ----------------------
    store = RodentStore(
        page_size=scale["page_size"],
        pool_capacity=96,
        level_seal_rows=seal_rows,
        scan_workers=3,
    )
    store.create_table("L", schema, layout="levels[2; 2](rows(L))")
    table = store.table("L")
    probe = Range("id", 0, batch_rows - 1)
    probe_want = sorted(records[:batch_rows])
    live_ms: list = []
    for i, chunk in enumerate(batches):
        table.insert(chunk)
        if i % 4 == 0 and i > 0:
            start = time.perf_counter()
            got = sorted(table.scan(predicate=probe))
            live_ms.append((time.perf_counter() - start) * 1e3)
            assert got == probe_want, "scan diverged during compaction"
            assert got == sorted(
                table.scan_reference(predicate=probe)
            ), "batch != reference during background compaction"
    table.compact()
    assert sorted(table.scan(predicate=probe)) == probe_want
    quiet = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        sorted(table.scan(predicate=probe))
        quiet = min(quiet, time.perf_counter() - start)
    store.close()
    live_ms.sort()
    result["scan_during_compaction"] = {
        "probe_rows": batch_rows,
        "scans": len(live_ms),
        "p50_ms": round(live_ms[len(live_ms) // 2], 3),
        "max_ms": round(live_ms[-1], 3),
        "quiescent_ms": round(quiet * 1e3, 3),
    }
    print(
        f"\nscan during compaction: p50 "
        f"{result['scan_during_compaction']['p50_ms']:.2f} ms, max "
        f"{result['scan_during_compaction']['max_ms']:.2f} ms, "
        f"quiescent {result['scan_during_compaction']['quiescent_ms']:.2f} ms"
    )

    # -- (d) stdlib fallback: same story without numpy ---------------------
    prev = vector.set_numpy_enabled(False)
    try:
        fb_levelled, _ = levelled_ingest()
        fb_baseline = baseline_ingest()
    finally:
        vector.set_numpy_enabled(prev)
    result["no_numpy"] = {
        "baseline_pending_compact_rows_per_sec": round(fb_baseline, 1),
        "levelled_rows_per_sec": round(fb_levelled, 1),
        "speedup": round(fb_levelled / fb_baseline, 2),
    }
    print(
        f"no-numpy fallback: levelled {fb_levelled:,.0f} rows/s vs "
        f"baseline {fb_baseline:,.0f} rows/s "
        f"({fb_levelled / fb_baseline:.1f}x)"
    )

    print(f"\nacceptance: ingest_ok={result['ingest_ok']}")
    result["generated_unix"] = int(time.time())
    with open(out_path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(out_path)}")
    return result


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", choices=SCALES, default="default")
    parser.add_argument(
        "--scan-bench-only",
        action="store_true",
        help="run only the scan-throughput benchmark and write BENCH_scan.json",
    )
    parser.add_argument(
        "--scan-bench-out",
        default="BENCH_scan.json",
        help="output path for the scan benchmark JSON",
    )
    parser.add_argument(
        "--query-bench-only",
        action="store_true",
        help="run only the query-pipeline benchmark and write BENCH_query.json",
    )
    parser.add_argument(
        "--query-bench-out",
        default="BENCH_query.json",
        help="output path for the query benchmark JSON",
    )
    parser.add_argument(
        "--prune-bench-only",
        action="store_true",
        help="run only the zone-map pruning benchmark and write "
        "BENCH_prune.json",
    )
    parser.add_argument(
        "--prune-bench-out",
        default="BENCH_prune.json",
        help="output path for the pruning benchmark JSON",
    )
    parser.add_argument(
        "--adapt-bench-only",
        action="store_true",
        help="run only the adaptive-loop benchmark and write "
        "BENCH_adapt.json",
    )
    parser.add_argument(
        "--adapt-bench-out",
        default="BENCH_adapt.json",
        help="output path for the adaptive-loop benchmark JSON",
    )
    parser.add_argument(
        "--partition-bench-only",
        action="store_true",
        help="run only the partition pruning/parallel benchmark and write "
        "BENCH_partition.json",
    )
    parser.add_argument(
        "--partition-bench-out",
        default="BENCH_partition.json",
        help="output path for the partition benchmark JSON",
    )
    parser.add_argument(
        "--txn-bench-only",
        action="store_true",
        help="run only the durability/transaction benchmark and write "
        "BENCH_txn.json",
    )
    parser.add_argument(
        "--txn-bench-out",
        default="BENCH_txn.json",
        help="output path for the transaction benchmark JSON",
    )
    parser.add_argument(
        "--vector-bench-only",
        action="store_true",
        help="run only the vectorized-execution benchmark and write "
        "BENCH_vector.json",
    )
    parser.add_argument(
        "--vector-bench-out",
        default="BENCH_vector.json",
        help="output path for the vectorized-execution benchmark JSON",
    )
    parser.add_argument(
        "--integrity-bench-only",
        action="store_true",
        help="run only the integrity-layer benchmark and write "
        "BENCH_integrity.json",
    )
    parser.add_argument(
        "--integrity-bench-out",
        default="BENCH_integrity.json",
        help="output path for the integrity benchmark JSON",
    )
    parser.add_argument(
        "--ingest-bench-only",
        action="store_true",
        help="run only the levelled-ingest benchmark and write "
        "BENCH_ingest.json",
    )
    parser.add_argument(
        "--ingest-bench-out",
        default="BENCH_ingest.json",
        help="output path for the levelled-ingest benchmark JSON",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="RNG seed for data/query generation (recorded in every "
        "BENCH_*.json so runs are reproducible)",
    )
    args = parser.parse_args()
    scale = SCALES[args.scale]
    print(f"scale: {args.scale} {scale}  seed: {args.seed}")

    start = time.time()
    if args.scan_bench_only:
        scan_bench(scale, args.scan_bench_out, seed=args.seed)
        print(f"\ntotal: {time.time() - start:.1f}s")
        return
    if args.query_bench_only:
        query_bench(scale, args.query_bench_out, seed=args.seed)
        print(f"\ntotal: {time.time() - start:.1f}s")
        return
    if args.prune_bench_only:
        prune_bench(scale, args.prune_bench_out, seed=args.seed)
        print(f"\ntotal: {time.time() - start:.1f}s")
        return
    if args.adapt_bench_only:
        adapt_bench(scale, args.adapt_bench_out, seed=args.seed)
        print(f"\ntotal: {time.time() - start:.1f}s")
        return
    if args.partition_bench_only:
        partition_bench(scale, args.partition_bench_out, seed=args.seed)
        print(f"\ntotal: {time.time() - start:.1f}s")
        return
    if args.txn_bench_only:
        txn_bench(scale, args.txn_bench_out, seed=args.seed)
        print(f"\ntotal: {time.time() - start:.1f}s")
        return
    if args.vector_bench_only:
        vector_bench(scale, args.vector_bench_out, seed=args.seed)
        print(f"\ntotal: {time.time() - start:.1f}s")
        return
    if args.integrity_bench_only:
        integrity_bench(scale, args.integrity_bench_out, seed=args.seed)
        print(f"\ntotal: {time.time() - start:.1f}s")
        return
    if args.ingest_bench_only:
        ingest_bench(scale, args.ingest_bench_out, seed=args.seed)
        print(f"\ntotal: {time.time() - start:.1f}s")
        return
    figure2(scale)
    sales(scale)
    scan_bench(scale, args.scan_bench_out, seed=args.seed)
    query_bench(scale, args.query_bench_out, seed=args.seed)
    prune_bench(scale, args.prune_bench_out, seed=args.seed)
    adapt_bench(scale, args.adapt_bench_out, seed=args.seed)
    partition_bench(scale, args.partition_bench_out, seed=args.seed)
    txn_bench(scale, args.txn_bench_out, seed=args.seed)
    vector_bench(scale, args.vector_bench_out, seed=args.seed)
    integrity_bench(scale, args.integrity_bench_out, seed=args.seed)
    ingest_bench(scale, args.ingest_bench_out, seed=args.seed)
    optimizer(scale)
    compression(scale)
    ablations(scale)
    reorganization(scale)
    print(f"\ntotal: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
