"""Ablation I: buffer pool eviction policies (LRU vs Clock).

§4.2 asks "What should the system do to adapt to storage on Flash or in
main-memory (RAM-based) databases?" — the first-order answer is the cache in
front of the disk. This ablation compares LRU and Clock hit rates under a
sequential-scan workload (which LRU famously handles badly at pool sizes
below the scan length) and a hot-set workload.
"""

import random

import pytest

from repro.engine.database import RodentStore
from repro.types import Schema

SCHEMA = Schema.of("t:int", "x:int", "y:int", "g:int")
RECORDS = [(i, (i * 37) % 500, (i * 53) % 500, i % 7) for i in range(6000)]


def make_store(policy: str, capacity: int):
    store = RodentStore(
        page_size=1024, pool_capacity=capacity, eviction=policy
    )
    store.create_table("T", SCHEMA)
    table = store.load("T", RECORDS)
    return store, table


def hot_set_workload(store, table, rounds=300, seed=1):
    """80% of probes hit 20% of the rows (positional get_element)."""
    rng = random.Random(seed)
    n = table.row_count
    hot = n // 5
    for _ in range(rounds):
        if rng.random() < 0.8:
            table.get_element(rng.randrange(hot))
        else:
            table.get_element(rng.randrange(n))
    return store.pool.stats.hit_rate


def scan_workload(store, table, rounds=3):
    for _ in range(rounds):
        for _ in table.scan():
            pass
    return store.pool.stats.hit_rate


def test_bench_eviction_policies(benchmark):
    results = {}
    for policy in ("lru", "clock"):
        store, table = make_store(policy, capacity=64)
        results[(policy, "hot-set")] = hot_set_workload(store, table)
        store2, table2 = make_store(policy, capacity=64)
        results[(policy, "scans")] = scan_workload(store2, table2)

    print("\n=== buffer pool hit rate by policy and workload ===")
    print(f"{'policy':<8}{'hot-set':>10}{'scans':>10}")
    for policy in ("lru", "clock"):
        print(
            f"{policy:<8}{results[(policy, 'hot-set')]:>10.3f}"
            f"{results[(policy, 'scans')]:>10.3f}"
        )

    # Hot-set locality: both policies keep the hot pages resident.
    assert results[("lru", "hot-set")] > 0.5
    assert results[("clock", "hot-set")] > 0.5
    # Clock approximates LRU within a reasonable band on both workloads.
    for workload in ("hot-set", "scans"):
        assert results[("clock", workload)] >= results[("lru", workload)] - 0.15

    store, table = make_store("lru", capacity=64)

    def run():
        return hot_set_workload(store, table, rounds=50)

    benchmark(run)


def test_bench_pool_capacity_sweep(benchmark):
    """Hit rate vs pool size for the hot-set workload."""
    print("\n=== LRU hit rate vs pool capacity (hot-set probes) ===")
    print(f"{'frames':>8}{'hit rate':>10}")
    rates = {}
    for capacity in (8, 32, 128, 512):
        store, table = make_store("lru", capacity=capacity)
        rates[capacity] = hot_set_workload(store, table)
        print(f"{capacity:>8}{rates[capacity]:>10.3f}")
    assert rates[512] > rates[8]

    benchmark(lambda: rates)
