"""Ablation C: compression codecs on trace and time-series columns.

§3.5.2 ("the storage algebra supports a wide range of compression schemes")
and §5 (the Abadi et al. claim that heavyweight codecs still pay off through
reduced I/O). The table reports compression ratio and decode throughput per
codec per column shape.
"""

import time

import pytest

from repro.compression import get_codec
from repro.types import INT
from repro.workloads import generate_timeseries, generate_traces, series_column

CODECS = ("none", "varint", "delta", "rle", "dict", "bitpack", "lz")


@pytest.fixture(scope="module")
def columns():
    traces = generate_traces(20_000, n_vehicles=10)
    smooth = series_column(
        generate_timeseries(20_000, n_series=1, kind="smooth"), 0
    )
    steppy = series_column(
        generate_timeseries(20_000, n_series=1, kind="steppy"), 0
    )
    return {
        "trace.lat": [r[1] for r in traces],
        "trace.id": [r[3] for r in traces],
        "ts.smooth": smooth,
        "ts.steppy": steppy,
    }


def ratio_table(columns):
    baseline = {
        name: len(get_codec("none").encode(values, INT))
        for name, values in columns.items()
    }
    out = {}
    for codec_name in CODECS:
        codec = get_codec(codec_name)
        row = {}
        for name, values in columns.items():
            try:
                encoded = codec.encode(values, INT)
            except Exception:
                row[name] = None
                continue
            assert codec.decode(encoded, INT) == values
            row[name] = len(encoded) / baseline[name]
        out[codec_name] = row
    return out


def test_bench_compression_ratios(columns, benchmark):
    ratios = ratio_table(columns)

    print("\n=== compression ratio (encoded/raw, lower is better) ===")
    names = list(columns)
    print(f"{'codec':<9}" + "".join(f"{n:>12}" for n in names))
    for codec_name, row in ratios.items():
        cells = "".join(
            f"{row[n]:>12.3f}" if row[n] is not None else f"{'-':>12}"
            for n in names
        )
        print(f"{codec_name:<9}{cells}")

    # Delta-family codecs crush smooth series; RLE crushes steppy series.
    assert ratios["delta"]["ts.smooth"] < 0.35
    assert ratios["rle"]["ts.steppy"] < 0.2
    assert ratios["delta"]["trace.lat"] < 0.6
    # Low-cardinality id column: dictionary/bitpack beat raw by a lot.
    assert ratios["dict"]["trace.id"] < 0.3

    benchmark(lambda: ratio_table({"ts.smooth": columns["ts.smooth"][:2000]}))


@pytest.mark.parametrize("codec_name", ["varint", "delta", "lz"])
def test_bench_decode_throughput(columns, codec_name, benchmark):
    """Decode speed per codec — the CPU side of the §5 trade-off."""
    codec = get_codec(codec_name)
    values = columns["ts.smooth"]
    encoded = codec.encode(values, INT)

    decoded = benchmark(lambda: codec.decode(encoded, INT))
    assert decoded == values
