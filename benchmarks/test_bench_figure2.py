"""Figure 2: pages/query for N1, N2, N3, N4, and the R-tree baseline.

Paper numbers (10 M observations, 1000 KB pages, 200 queries @ 1% area):

    N1 raw+scan      206,064
    N2 drop column    82,430
    N3 grid            1,792
    N4 zcurve+delta      771
    rtree             15,780

This harness regenerates the same five bars at benchmark scale and asserts
the shape: N1 > N2 > rtree > N3 > N4, with grid ~2 orders of magnitude under
the raw scan and delta compression strictly shrinking N4 below N3.
"""

import pytest

from repro.engine.database import RodentStore
from repro.experiments.figure2 import N2_EXPR, n3_expr, n4_expr
from repro.workloads import BOSTON, TRACE_SCHEMA, grid_strides_for

from bench_config import CELLS_PER_SIDE, PAGE_SIZE

PAPER_PAGES = {
    "N1": 206_064,
    "N2": 82_430,
    "N3": 1_792,
    "N4": 771,
    "rtree": 15_780,
}


def test_bench_figure2_table(figure2_result, benchmark):
    """Reproduce the Figure 2 bar chart (prints the paper-style rows)."""
    result = figure2_result

    print("\n=== Figure 2: pages/query (paper vs measured) ===")
    print(f"{'layout':<8}{'paper':>10}{'measured':>12}{'paper/N3':>10}{'ours/N3':>9}")
    paper_n3 = PAPER_PAGES["N3"]
    ours_n3 = result.layouts["N3"].pages_per_query
    for name in ("N1", "N2", "N3", "N4", "rtree"):
        measured = result.layouts[name].pages_per_query
        print(
            f"{name:<8}{PAPER_PAGES[name]:>10}{measured:>12.1f}"
            f"{PAPER_PAGES[name] / paper_n3:>10.1f}"
            f"{measured / ours_n3:>9.1f}"
        )
    print(result.format_table())

    pages = {k: v.pages_per_query for k, v in result.layouts.items()}
    # The paper's ordering.
    assert pages["N1"] > pages["N2"] > pages["rtree"] > pages["N3"] > pages["N4"]
    # "about two orders of magnitude versus a raw scan" (allow >30x at scale).
    assert pages["N1"] / pages["N3"] > 30
    # N3 -> N4 factor (paper: 2.32x).
    assert 1.2 < pages["N3"] / pages["N4"] < 6

    benchmark(lambda: result.rows())


@pytest.mark.parametrize("name", ["N1", "N2", "N3", "N4"])
def test_bench_layout_query(name, trace_records, trace_queries, benchmark):
    """Per-layout query latency (wall clock of one spatial scan)."""
    lat_stride, lon_stride = grid_strides_for(BOSTON, CELLS_PER_SIDE)
    expressions = {
        "N1": "Traces",
        "N2": N2_EXPR,
        "N3": n3_expr(lat_stride, lon_stride),
        "N4": n4_expr(lat_stride, lon_stride),
    }
    store = RodentStore(page_size=PAGE_SIZE, pool_capacity=64)
    store.create_table("Traces", TRACE_SCHEMA, layout=expressions[name])
    table = store.load("Traces", trace_records)
    query = trace_queries[0]

    def run():
        store.pool.clear()
        store.disk.reset_head()
        return len(
            list(table.scan(fieldlist=["lat", "lon"], predicate=query))
        )

    count = benchmark(run)
    assert count > 0


def test_bench_latency_model(figure2_result, benchmark):
    """'the total query time is also about one hundred times faster (a few
    10s of milliseconds vs five seconds)' — the seek+bandwidth model must
    preserve that ordering and a large N1/N4 gap."""
    result = figure2_result
    ms = {k: v.est_ms_per_query for k, v in result.layouts.items()}
    print("\n=== modelled query latency (ms) ===")
    for name in ("N1", "N2", "N3", "N4", "rtree"):
        print(f"{name:<8}{ms[name]:>10.2f}")
    assert ms["N1"] > ms["N2"] > ms["N3"] > ms["N4"]
    assert ms["N1"] / ms["N4"] > 10
    benchmark(lambda: ms)
