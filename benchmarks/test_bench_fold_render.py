"""Ablation F: fold rendering strategies (paper §4.2, Algorithm 1).

"the simplest way to evaluate an expression is through nested for loops ...
rather than using nested for loops, a hash-join like algorithm could be
used." Both are implemented; this benchmark shows the quadratic/linear gap
and verifies identical output.
"""

import pytest

from repro.algebra.transforms import fold_records, fold_records_nested_loops
from repro.workloads import generate_sales

POSITIONS = {
    "zipcode": 0, "year": 1, "month": 2, "day": 3,
    "customerid": 4, "productid": 5, "quantity": 6, "price": 7,
}
NEST = ["quantity", "price"]
GROUP = ["zipcode"]


@pytest.fixture(scope="module")
def records():
    return generate_sales(4_000)


def test_bench_fold_hash(records, benchmark):
    result = benchmark(
        lambda: fold_records(records, POSITIONS, NEST, GROUP)
    )
    assert sum(len(row[-1]) for row in result) == len(records)


def test_bench_fold_nested_loops(records, benchmark):
    """Algorithm 1 verbatim: quadratic in the input size."""
    small = records[:800]  # quadratic: keep the round tractable
    result = benchmark.pedantic(
        lambda: fold_records_nested_loops(small, POSITIONS, NEST, GROUP),
        rounds=3,
        iterations=1,
    )
    assert result == fold_records(small, POSITIONS, NEST, GROUP)


def test_bench_fold_strategies_agree_and_hash_wins(records, benchmark):
    import time

    small = records[:800]
    start = time.perf_counter()
    slow = fold_records_nested_loops(small, POSITIONS, NEST, GROUP)
    nested_s = time.perf_counter() - start
    start = time.perf_counter()
    fast = fold_records(small, POSITIONS, NEST, GROUP)
    hash_s = time.perf_counter() - start

    print("\n=== fold rendering strategies (800 records) ===")
    print(f"nested loops (Algorithm 1): {nested_s * 1e3:9.2f} ms")
    print(f"hash strategy:              {hash_s * 1e3:9.2f} ms")
    assert slow == fast
    assert hash_s < nested_s

    benchmark(lambda: fold_records(small, POSITIONS, NEST, GROUP))
