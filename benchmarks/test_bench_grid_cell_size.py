"""Ablation A: grid cell size sweep.

The case study picks cells "about 400 m^2" without justification; this
ablation sweeps cellWidth x cellHeight (via cells-per-side) and shows the
U-shape the advisor's stride heuristic targets: too-coarse cells read excess
data, too-fine cells bloat seeks and the directory.
"""

import pytest

from repro.engine.database import RodentStore
from repro.experiments.figure2 import n3_expr
from repro.workloads import (
    BOSTON,
    TRACE_SCHEMA,
    generate_traces,
    grid_strides_for,
    random_region_queries,
)

PAGE_SIZE = 8_192
SWEEP = (4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def data():
    return (
        generate_traces(25_000, n_vehicles=15),
        random_region_queries(15),
    )


def pages_per_query(records, queries, cells_per_side):
    lat_stride, lon_stride = grid_strides_for(BOSTON, cells_per_side)
    store = RodentStore(page_size=PAGE_SIZE, pool_capacity=64)
    # This sweep isolates grid *geometry*: cell-directory pruning only, so
    # zone maps (which also prune on the data's actual per-cell extents)
    # stay off to keep the paper ablation's shape.
    store.zone_pruning = False
    store.create_table(
        "Traces", TRACE_SCHEMA, layout=n3_expr(lat_stride, lon_stride)
    )
    table = store.load("Traces", records)
    pages = seeks = 0
    for q in queries:
        _, io = store.run_cold(lambda q=q: list(table.scan(predicate=q)))
        pages += io.page_reads
        seeks += io.read_seeks
    return pages / len(queries), seeks / len(queries)


def test_bench_grid_cell_size_sweep(data, benchmark):
    records, queries = data
    series = {}
    for cells in SWEEP:
        series[cells] = pages_per_query(records, queries, cells)

    print("\n=== grid cell-size sweep (1%-area queries) ===")
    print(f"{'cells/side':>10}{'pages/query':>13}{'seeks/query':>13}")
    for cells, (pages, seeks) in series.items():
        print(f"{cells:>10}{pages:>13.1f}{seeks:>13.1f}")

    # Coarse grids read more data than the sweet spot.
    best_pages = min(p for p, _ in series.values())
    assert series[4][0] > best_pages
    # Fine grids cost more seeks than coarse ones.
    assert series[64][1] >= series[4][1]

    benchmark(lambda: pages_per_query(records, queries[:3], 32))
