"""Ablation G: index access paths (B+Tree point/range, R-Tree window).

The paper ships B+Trees and geo-spatial indices without innovating on them;
this benchmark characterizes their page costs so the cost model's constants
stay honest.
"""

import random

import pytest

from repro.index import BPlusTree, MBR, RTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

PAGE_SIZE = 4_096
N_KEYS = 50_000


@pytest.fixture(scope="module")
def btree():
    disk = DiskManager(page_size=PAGE_SIZE)
    pool = BufferPool(disk, capacity=512)
    tree = BPlusTree(pool)
    tree.bulk_load([(k, k) for k in range(N_KEYS)])
    return tree, disk


@pytest.fixture(scope="module")
def rtree():
    disk = DiskManager(page_size=PAGE_SIZE)
    pool = BufferPool(disk, capacity=512)
    tree = RTree(pool)
    rng = random.Random(5)
    boxes = []
    for i in range(20_000):
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        boxes.append((MBR(x, y, x + rng.uniform(0, 5), y + rng.uniform(0, 5)), i))
    tree.bulk_load(boxes)
    return tree, disk


def test_bench_btree_point_lookup(btree, benchmark):
    tree, disk = btree
    rng = random.Random(1)

    def run():
        return tree.search(rng.randrange(N_KEYS))

    result = benchmark(run)
    assert len(result) == 1

    tree.pool.clear()
    disk.stats.reset()
    tree.search(N_KEYS // 2)
    print(f"\nB+Tree point lookup: {disk.stats.page_reads} pages "
          f"(height {tree.height})")
    assert disk.stats.page_reads <= tree.height + 1


def test_bench_btree_range_scan(btree, benchmark):
    tree, disk = btree

    def run():
        return sum(1 for _ in tree.range(10_000, 12_000))

    count = benchmark(run)
    assert count == 2_001


def test_bench_btree_insert(benchmark):
    disk = DiskManager(page_size=PAGE_SIZE)
    pool = BufferPool(disk, capacity=512)
    tree = BPlusTree(pool)
    counter = iter(range(10**9))

    def run():
        k = next(counter)
        tree.insert(k, k)

    benchmark(run)


def test_bench_rtree_window_query(rtree, benchmark):
    tree, disk = rtree
    rng = random.Random(2)

    def run():
        x, y = rng.uniform(0, 950), rng.uniform(0, 950)
        return len(tree.search(MBR(x, y, x + 50, y + 50)))

    benchmark(run)

    tree.pool.clear()
    disk.stats.reset()
    hits = tree.search(MBR(500, 500, 550, 550))
    print(f"\nR-Tree 5%-window: {disk.stats.page_reads} pages, "
          f"{len(hits)} hits (height {tree.height})")
    assert disk.stats.page_reads < 0.2 * disk.num_pages


def test_bench_rtree_insert(benchmark):
    disk = DiskManager(page_size=PAGE_SIZE)
    pool = BufferPool(disk, capacity=512)
    tree = RTree(pool)
    rng = random.Random(3)

    def run():
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        tree.insert(MBR(x, y, x + 1, y + 1), 0)

    benchmark(run)


def test_bench_secondary_index_scan(benchmark):
    """Secondary-index scan vs full scan on a selective range predicate.

    The engine-integrated path: a B+Tree over `lat` of a rows layout; the
    scan probes the index, groups matching row positions by page, and reads
    only those pages.
    """
    from repro.engine.database import RodentStore
    from repro.query.expressions import Range
    from repro.workloads import TRACE_SCHEMA, generate_traces

    records = generate_traces(20_000, n_vehicles=10)
    store = RodentStore(page_size=PAGE_SIZE, pool_capacity=256)
    store.create_table("Traces", TRACE_SCHEMA)
    table = store.load("Traces", records)
    lat_lo = 42_310_000
    q = Range("lat", lat_lo, lat_lo + 3_000)

    _, io_full = store.run_cold(lambda: list(table.scan(predicate=q)))
    table.create_index("lat")
    result, io_index = store.run_cold(lambda: list(table.scan(predicate=q)))
    print(
        f"\nsecondary index scan: {io_index.page_reads} pages vs "
        f"{io_full.page_reads} full-scan pages ({len(result)} rows)"
    )
    assert sorted(result) == sorted(
        r for r in records if lat_lo <= r[1] <= lat_lo + 3_000
    )
    assert io_index.page_reads < io_full.page_reads

    def run():
        store.pool.clear()
        store.disk.reset_head()
        return len(list(table.scan(predicate=q)))

    benchmark(run)
