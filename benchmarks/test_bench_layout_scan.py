"""Ablation E: rows vs columns vs column groups under varying projections.

The DSM / column-store motivation from §1: narrow projections over a column
layout read a fraction of the pages a row store reads; wide scans favour
rows (no positional merge, single object). Mirrors (fractured mirrors, §1)
get the best of both.
"""

import pytest

from repro.engine.database import RodentStore
from repro.workloads import SALES_SCHEMA, generate_sales

PAGE_SIZE = 8_192
LAYOUTS = {
    "rows": "Sales",
    "columns": "columns(Sales)",
    "grouped": "columns[[year, month, day], [zipcode], [customerid], "
    "[productid], [quantity, price]](Sales)",
    "mirror": "mirror(rows(Sales), columns(Sales))",
}
PROJECTIONS = {
    "1 col": ["price"],
    "2 cols": ["productid", "quantity"],
    "all cols": None,
}


@pytest.fixture(scope="module")
def tables():
    records = generate_sales(25_000)
    out = {}
    for name, layout in LAYOUTS.items():
        store = RodentStore(page_size=PAGE_SIZE, pool_capacity=96)
        store.create_table("Sales", SALES_SCHEMA, layout=layout)
        out[name] = (store, store.load("Sales", records))
    return out


def measure(store, table, fieldlist):
    _, io = store.run_cold(lambda: list(table.scan(fieldlist=fieldlist)))
    return io.page_reads


def test_bench_projection_widths(tables, benchmark):
    grid = {
        layout: {
            label: measure(store, table, fields)
            for label, fields in PROJECTIONS.items()
        }
        for layout, (store, table) in tables.items()
    }

    print("\n=== pages read per full scan, by projection width ===")
    print(f"{'layout':<10}" + "".join(f"{p:>10}" for p in PROJECTIONS))
    for layout, row in grid.items():
        print(f"{layout:<10}" + "".join(f"{row[p]:>10}" for p in PROJECTIONS))

    # Narrow projections: columns beat rows by a wide margin.
    assert grid["columns"]["1 col"] * 4 < grid["rows"]["1 col"]
    # Wide scans: rows at least match columns (positional merge overhead).
    assert grid["rows"]["all cols"] <= grid["columns"]["all cols"] * 1.3
    # Mirror picks the better side for both extremes.
    assert grid["mirror"]["1 col"] <= grid["columns"]["1 col"] * 1.1
    assert grid["mirror"]["all cols"] <= grid["rows"]["all cols"] * 1.1
    # Column groups still beat rows on narrow projections (their win over
    # pure columns is fewer objects/seeks, not raw pages — mini-record
    # slotted pages carry per-record overhead that packed vectors avoid).
    assert grid["grouped"]["2 cols"] < grid["rows"]["2 cols"]

    store, table = tables["columns"]
    benchmark(lambda: measure(store, table, ["price"]))


def test_bench_row_scan_throughput(tables, benchmark):
    store, table = tables["rows"]

    def run():
        store.pool.clear()
        return sum(1 for _ in table.scan())

    count = benchmark(run)
    assert count == 25_000


def test_bench_column_scan_throughput(tables, benchmark):
    store, table = tables["columns"]

    def run():
        store.pool.clear()
        return sum(1 for _ in table.scan(fieldlist=["price"]))

    count = benchmark(run)
    assert count == 25_000
