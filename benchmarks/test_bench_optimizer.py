"""§5: the storage design optimizer and its search strategies.

The paper: "if there are n columns in a table, there are 2^n ways to
co-locate that table's columns ... we anticipate heavy reliance on heuristic
search algorithms. For example, to find the best gridding, we could use
gradient descent or simulated annealing."

The benchmark prints the design-space size against what each strategy
actually costs, and checks that (a) heuristics evaluate a vanishing fraction
of the space, (b) the spatial workload ends up on a gridded design, and
(c) stride descent never worsens the seed design.
"""

import pytest

from repro.algebra import ast
from repro.algebra.parser import parse
from repro.engine.cost import CostModel
from repro.engine.stats import TableStats
from repro.optimizer import (
    PlanCostEstimator,
    Query,
    Workload,
    enumerate_candidates,
    exhaustive_search,
    greedy_stride_descent,
    simulated_annealing,
)
from repro.query.expressions import Rect
from repro.workloads import TRACE_SCHEMA, generate_traces, random_region_queries

PAGE_SIZE = 8_192


@pytest.fixture(scope="module")
def setup():
    records = generate_traces(20_000, n_vehicles=10)
    stats = TableStats.collect(TRACE_SCHEMA, records)
    model = CostModel(page_size=PAGE_SIZE)
    estimator = PlanCostEstimator(stats, model, PAGE_SIZE)
    workload = Workload("Traces")
    for i, q in enumerate(random_region_queries(10)):
        workload.add(Query(name=f"q{i}", fieldlist=("lat", "lon"), predicate=q))
    candidates = enumerate_candidates(TRACE_SCHEMA, stats, workload)
    return estimator, workload, candidates


def test_bench_exhaustive_search(setup, benchmark):
    estimator, workload, candidates = setup
    n_fields = len(TRACE_SCHEMA)
    space = 2 ** n_fields

    result = benchmark(
        lambda: exhaustive_search(candidates, TRACE_SCHEMA, estimator, workload)
    )

    print("\n=== design space vs evaluated ===")
    print(f"column-grouping space (2^n):     {space}")
    print(f"candidates enumerated:           {len(candidates)}")
    print(f"designs costed (exhaustive):     {result.evaluated}")
    print(f"winner: {result.expression.to_text()[:100]}")
    assert result.evaluated < space
    assert any(isinstance(n, ast.Grid) for n in result.expression.walk())


def test_bench_stride_descent(setup, benchmark):
    estimator, workload, _ = setup
    seed = parse(
        "grid[lat, lon],[60000, 80000](project[lat, lon](Traces))"
    )

    result = benchmark(
        lambda: greedy_stride_descent(seed, TRACE_SCHEMA, estimator, workload)
    )
    start_cost = result.trace[0][1]
    print("\n=== gradient descent on grid strides ===")
    for text, ms in result.trace:
        print(f"  {ms:10.2f} ms  {text[:80]}")
    assert result.best.total_ms <= start_cost


def test_bench_simulated_annealing(setup, benchmark):
    estimator, workload, candidates = setup

    result = benchmark.pedantic(
        lambda: simulated_annealing(
            candidates, TRACE_SCHEMA, estimator, workload,
            iterations=120, seed=1,
        ),
        rounds=3,
        iterations=1,
    )
    exhaustive = exhaustive_search(
        candidates, TRACE_SCHEMA, estimator, workload
    )
    print("\n=== annealing vs exhaustive ===")
    print(f"annealing best:  {result.best.total_ms:.2f} ms "
          f"({result.evaluated} designs)")
    print(f"exhaustive best: {exhaustive.best.total_ms:.2f} ms "
          f"({exhaustive.evaluated} designs)")
    # Annealing must land within 2x of the exhaustive optimum.
    assert result.best.total_ms <= exhaustive.best.total_ms * 2
