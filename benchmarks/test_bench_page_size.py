"""Ablation B: page size sweep.

§4.2 lists "What is the appropriate disk page size to use?" among the layout
engine's open questions. The sweep shows the trade-off on the case-study
query: large pages amortize seeks on scans but read excess bytes on selective
grid queries.
"""

import pytest

from repro.engine.cost import CostModel
from repro.engine.database import RodentStore
from repro.experiments.figure2 import n3_expr
from repro.workloads import (
    BOSTON,
    TRACE_SCHEMA,
    generate_traces,
    grid_strides_for,
    random_region_queries,
)

SWEEP = (2_048, 8_192, 32_768, 131_072)


@pytest.fixture(scope="module")
def data():
    return (
        generate_traces(25_000, n_vehicles=15),
        random_region_queries(10),
    )


def run_at_page_size(records, queries, page_size):
    lat_stride, lon_stride = grid_strides_for(BOSTON, 32)
    model = CostModel(page_size=page_size)
    store = RodentStore(
        page_size=page_size, pool_capacity=64, cost_model=model
    )
    store.create_table(
        "Traces", TRACE_SCHEMA, layout=n3_expr(lat_stride, lon_stride)
    )
    table = store.load("Traces", records)
    pages = seeks = 0
    for q in queries:
        _, io = store.run_cold(lambda q=q: list(table.scan(predicate=q)))
        pages += io.page_reads
        seeks += io.read_seeks
    n = len(queries)
    bytes_per_query = pages / n * page_size
    return {
        "pages": pages / n,
        "seeks": seeks / n,
        "kb": bytes_per_query / 1024,
        "ms": model.cost_ms(pages / n, seeks / n),
    }


def test_bench_page_size_sweep(data, benchmark):
    records, queries = data
    series = {size: run_at_page_size(records, queries, size) for size in SWEEP}

    print("\n=== page size sweep (grid layout, 1%-area queries) ===")
    print(f"{'page KB':>8}{'pages/q':>10}{'seeks/q':>10}{'KB/q':>10}{'est ms':>9}")
    for size, row in series.items():
        print(
            f"{size // 1024:>8}{row['pages']:>10.1f}{row['seeks']:>10.1f}"
            f"{row['kb']:>10.1f}{row['ms']:>9.2f}"
        )

    # Bigger pages => fewer page reads but more bytes moved per query.
    assert series[SWEEP[0]]["pages"] > series[SWEEP[-1]]["pages"]
    assert series[SWEEP[0]]["kb"] <= series[SWEEP[-1]]["kb"] * 1.5

    benchmark(lambda: run_at_page_size(records, queries[:2], 8_192))
