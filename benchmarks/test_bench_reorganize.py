"""Ablation H: reorganization policies (paper §5, final paragraph).

Eager pays all the rewrite I/O up front; new-data-only never pays it but
keeps reading the old layout; lazy defers until the table is accessed enough.
The table reports cumulative write I/O and final query cost per policy on an
identical design-change + query sequence.
"""

import pytest

from repro.engine.database import RodentStore
from repro.optimizer.reorganize import Policy, ReorganizationManager
from repro.query.expressions import Rect
from repro.workloads import (
    BOSTON,
    TRACE_SCHEMA,
    generate_traces,
    grid_strides_for,
    random_region_queries,
)

PAGE_SIZE = 8_192
N_RECORDS = 15_000
N_ACCESSES = 10


def new_design():
    lat, lon = grid_strides_for(BOSTON, 32)
    return (
        f"grid[lat, lon],[{lat:g}, {lon:g}]"
        "(project[lat, lon](Traces))"
    )


def run_policy(policy, records, queries):
    store = RodentStore(page_size=PAGE_SIZE, pool_capacity=64)
    store.create_table("Traces", TRACE_SCHEMA)
    store.load("Traces", records)
    manager = ReorganizationManager(store, lazy_access_threshold=4)
    manager.set_policy("Traces", policy)
    manager.apply_design("Traces", new_design(), source_records=records)

    read_pages = 0
    for i in range(N_ACCESSES):
        manager.on_access("Traces")
        table = store.table("Traces")
        q = queries[i % len(queries)]
        _, io = store.run_cold(lambda q=q: list(
            table.scan(fieldlist=["lat", "lon"], predicate=q)
        ))
        read_pages += io.page_reads
    return {
        "write_io": manager.reorganization_io.page_writes,
        "read_pages": read_pages,
        "final_kind": store.table("Traces").plan.kind,
        "rewrites": manager.reorganizations,
    }


@pytest.fixture(scope="module")
def data():
    return generate_traces(N_RECORDS, n_vehicles=10), random_region_queries(5)


def test_bench_reorganization_policies(data, benchmark):
    records, queries = data
    results = {
        policy.value: run_policy(policy, records, queries)
        for policy in (Policy.EAGER, Policy.NEW_DATA_ONLY, Policy.LAZY)
    }

    print("\n=== reorganization policies over "
          f"{N_ACCESSES} accesses ===")
    print(f"{'policy':<15}{'rewrite writes':>15}{'query reads':>13}"
          f"{'final layout':>14}")
    for name, row in results.items():
        print(
            f"{name:<15}{row['write_io']:>15}{row['read_pages']:>13}"
            f"{row['final_kind']:>14}"
        )

    eager = results["eager"]
    newdata = results["new-data-only"]
    lazy = results["lazy"]
    # Eager rewrites immediately and reads cheaply ever after.
    assert eager["rewrites"] == 1 and eager["final_kind"] == "grid"
    # New-data-only never rewrites; reads stay expensive.
    assert newdata["rewrites"] == 0 and newdata["final_kind"] == "rows"
    assert newdata["read_pages"] > eager["read_pages"]
    # Lazy rewrites once the access threshold passes; total reads land
    # between the two extremes.
    assert lazy["rewrites"] == 1 and lazy["final_kind"] == "grid"
    assert eager["read_pages"] <= lazy["read_pages"] <= newdata["read_pages"]

    benchmark(lambda: run_policy(Policy.EAGER, records[:2_000], queries[:2]))
