"""The paper's §1 motivating example: ``zorder(grid[y, z](N))`` on sales.

"The algebraic expression zorder(grid[y, z](N)) would repartition (or grid)
the tuples into a matrix where years (y) are on the X axis and zipcodes (z)
on the Y axis. Cells would be stored on disk using a space filling curve
(zorder), so that nearby zipcodes or years are co-located."

The benchmark compares year x zipcode slice queries against (a) the raw row
layout and (b) the gridded+z-ordered layout, asserting the grid wins by a
wide margin.
"""

import pytest

from repro.engine.database import RodentStore
from repro.workloads import SALES_SCHEMA, generate_sales, year_zip_queries

N_RECORDS = 30_000
PAGE_SIZE = 8_192
ZORDER_EXPR = (
    "zorder(grid[year, zipcode],[1, 10](project[year, zipcode, quantity, price]"
    "(Sales)))"
)


@pytest.fixture(scope="module")
def sales_records():
    return generate_sales(N_RECORDS)


@pytest.fixture(scope="module")
def queries():
    return year_zip_queries(20)


def build(layout, records):
    store = RodentStore(page_size=PAGE_SIZE, pool_capacity=64)
    store.create_table("Sales", SALES_SCHEMA, layout=layout)
    table = store.load("Sales", records)
    return store, table


def measure(store, table, queries):
    pages = 0
    rows = 0
    for q in queries:
        got, io = store.run_cold(
            lambda q=q: list(
                table.scan(fieldlist=["quantity", "price"], predicate=q)
            )
        )
        pages += io.page_reads
        rows += len(got)
    return pages / len(queries), rows


def test_bench_sales_zorder_grid(sales_records, queries, benchmark):
    store_rows, table_rows = build("Sales", sales_records)
    store_grid, table_grid = build(ZORDER_EXPR, sales_records)

    rows_pages, rows_count = measure(store_rows, table_rows, queries)
    grid_pages, grid_count = measure(store_grid, table_grid, queries)

    print("\n=== intro example: year x zipcode slice queries ===")
    print(f"{'layout':<28}{'pages/query':>12}")
    print(f"{'rows (raw scan)':<28}{rows_pages:>12.1f}")
    print(f"{'zorder(grid[y, z](N))':<28}{grid_pages:>12.1f}")

    assert rows_count == grid_count  # same answers
    assert grid_pages * 5 < rows_pages  # the gridded layout wins big

    query = queries[0]

    def run():
        store_grid.pool.clear()
        store_grid.disk.reset_head()
        return len(list(table_grid.scan(predicate=query)))

    benchmark(run)


def test_bench_sales_row_scan(sales_records, queries, benchmark):
    """Baseline timing: the same query against the raw row layout."""
    store, table = build("Sales", sales_records)
    query = queries[0]

    def run():
        store.pool.clear()
        store.disk.reset_head()
        return len(list(table.scan(predicate=query)))

    benchmark(run)
