"""Ablation D: cell ordering — row-major vs Z-order vs Hilbert.

§3.5.3 / case study: "we reorder the cells on disk using a space-filling
curve in order to minimize the disk seek times when retrieving spatially
contiguous objects". Pages read are identical across orderings (same cells);
the seek counts differ — exactly what this table shows.
"""

import pytest

from repro.engine.database import RodentStore
from repro.workloads import (
    BOSTON,
    TRACE_SCHEMA,
    generate_traces,
    grid_strides_for,
    random_region_queries,
)

PAGE_SIZE = 4_096

BASE = (
    "grid[lat, lon],[{lat:g}, {lon:g}]"
    "(project[lat, lon](groupby[id](orderby[t](Traces))))"
)
ORDERINGS = {
    "rowmajor": BASE,
    "zorder": f"zorder({BASE})",
    "hilbert": f"hilbert({BASE})",
}


@pytest.fixture(scope="module")
def data():
    return (
        generate_traces(25_000, n_vehicles=15),
        random_region_queries(20),
    )


def run_ordering(records, queries, expr_template):
    lat, lon = grid_strides_for(BOSTON, 48)
    store = RodentStore(page_size=PAGE_SIZE, pool_capacity=64)
    store.create_table(
        "Traces", TRACE_SCHEMA, layout=expr_template.format(lat=lat, lon=lon)
    )
    table = store.load("Traces", records)
    pages = seeks = 0
    for q in queries:
        _, io = store.run_cold(lambda q=q: list(table.scan(predicate=q)))
        pages += io.page_reads
        seeks += io.read_seeks
    n = len(queries)
    return pages / n, seeks / n


def test_bench_cell_orderings(data, benchmark):
    records, queries = data
    results = {
        name: run_ordering(records, queries, template)
        for name, template in ORDERINGS.items()
    }

    print("\n=== cell ordering: seeks per 1%-area query ===")
    print(f"{'ordering':<10}{'pages/query':>12}{'seeks/query':>12}")
    for name, (pages, seeks) in results.items():
        print(f"{name:<10}{pages:>12.1f}{seeks:>12.1f}")

    # Curves never read more pages than row-major (co-queried cells pack
    # into shared pages along the curve, often fewer).
    assert results["zorder"][0] <= results["rowmajor"][0] * 1.05
    # Space-filling curves reduce seeks versus row-major cell order.
    assert results["zorder"][1] < results["rowmajor"][1]
    assert results["hilbert"][1] <= results["zorder"][1] * 1.25

    benchmark(lambda: run_ordering(records, queries[:3], ORDERINGS["zorder"]))
