"""The closed adaptive loop: a workload shift triggers automatic re-layout.

A store is created with ``adaptive=True`` and seeded with the canonical row
layout. It then serves two workload phases:

1. selective range scans over ``t`` — the advisor predicts a clear win for
   a ``t``-sorted row layout (binary-searchable page pruning), and the
   store re-layouts itself mid-stream;
2. the workload shifts to sustained single-column analytic projections —
   the monitor's decayed weights fade the old shape, the advisor starts
   predicting a clear win for a columnar design, and the store re-layouts
   again. Both switches change no query answer (the differential fuzz
   suite asserts this property across every layout family).

Run with::

    python examples/adaptive_store.py
"""

import random

from repro import RodentStore
from repro.query.expressions import Range
from repro.types.schema import Schema

SCHEMA = Schema.of("t:int", "k:int", "a:int", "b:int", "v:int")


def main() -> None:
    rng = random.Random(42)
    n = 20_000
    records = [
        (
            i,
            (i * 17) % 100,
            rng.randrange(1000),
            rng.randrange(50),
            rng.randrange(10_000),
        )
        for i in range(n)
    ]

    store = RodentStore(
        page_size=2048,
        pool_capacity=512,
        adaptive=True,        # the loop may reorganize on its own...
        adapt_interval=25,    # ...checking every 25 observed scans
    )
    store.adaptivity.decay = 0.9  # short phases: fade old patterns quickly
    store.create_table("T", SCHEMA)
    store.load("T", records)
    print(f"loaded {n:,} rows as {store.table('T').plan.expr.to_text()!r}\n")

    # -- phase 1: selective range scans ------------------------------------
    print("phase 1: selective range scans on t")
    for _ in range(60):
        lo = rng.randrange(n - 200)
        list(store.table("T").scan(predicate=Range("t", lo, lo + 199)))
    print(f"  layout is now {store.table('T').plan.expr.to_text()!r} — "
          "sorted pages serve the range template\n")

    # -- phase 2: the workload shifts to analytic projections --------------
    print("phase 2: sustained single-column projections")
    for i in range(80):
        column = "v" if i % 2 else "a"
        rows = store.query("T").select(column).run()
        assert len(rows) == n
    layout = store.table("T").plan.expr.to_text()
    print(f"  layout is now {layout!r} — the loop adapted mid-stream\n")

    # -- what the store knows about itself ---------------------------------
    report = store.storage_stats()["adaptivity"]
    print(f"checks: {report['checks']}, adaptations: {report['adaptations']}")
    decision = report["tables"]["T"]["last_decision"]
    print(f"last decision: {decision['reason']}")
    for pattern in report["tables"]["T"]["top_patterns"]:
        print(f"  pattern fieldlist={pattern['fieldlist']} "
              f"weight={pattern['weight']} avg_rows={pattern['avg_rows']}")

    # An explicit nudge is always available; here it confirms convergence.
    decision = store.adapt("T")
    print(f"\nstore.adapt('T') -> adapted={decision['adapted']} "
          f"({decision['reason']})")


if __name__ == "__main__":
    main()
