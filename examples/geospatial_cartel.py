"""The paper's case study (Section 6): GPS traces, five physical designs.

Rebuilds Figure 2 — pages read per 1%-area spatial query for:

    N1   row-major scan
    N2   drop unused columns, cluster by trajectory
    N3   2-D grid with a cell directory
    N4   Z-ordered grid with delta+varint compressed coordinates
    rtree  secondary R-Tree over trajectory bounding boxes

Run with::

    python examples/geospatial_cartel.py [n_observations] [n_queries]
"""

import sys

from repro.experiments import run_figure2

PAPER = {"N1": 206_064, "N2": 82_430, "N3": 1_792, "N4": 771, "rtree": 15_780}


def main() -> None:
    n_observations = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    n_queries = int(sys.argv[2]) if len(sys.argv) > 2 else 40

    print(
        f"running the case study at {n_observations:,} observations, "
        f"{n_queries} queries (paper: 10,000,000 observations, 200 queries)\n"
    )
    result = run_figure2(
        n_observations=n_observations,
        n_queries=n_queries,
        page_size=16_384,
        verify=True,
    )

    print(result.format_table())

    print("\npaper-vs-measured, normalized to the grid layout (N3):")
    paper_n3 = PAPER["N3"]
    ours_n3 = result.layouts["N3"].pages_per_query
    print(f"{'layout':<8}{'paper xN3':>12}{'measured xN3':>14}")
    for name in ("N1", "N2", "N3", "N4", "rtree"):
        measured = result.layouts[name].pages_per_query
        print(
            f"{name:<8}{PAPER[name] / paper_n3:>12.1f}"
            f"{measured / ours_n3:>14.1f}"
        )

    pages = {k: v.pages_per_query for k, v in result.layouts.items()}
    assert pages["N1"] > pages["N2"] > pages["rtree"] > pages["N3"] > pages["N4"], (
        "Figure 2 ordering did not reproduce"
    )
    print(
        "\nFigure 2 shape reproduced: N1 > N2 > rtree > N3 > N4, grid is "
        f"{pages['N1'] / pages['N3']:.0f}x under the raw scan "
        "(paper: ~115x)."
    )


if __name__ == "__main__":
    main()
