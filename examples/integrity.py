"""Integrity tour: checksums, bit rot, quarantine, repair, and the scrubber.

Run with::

    python examples/integrity.py

Opens a durable store, flips a bit on disk behind its back, and walks the
containment ladder: the page checksum catches the rot, the page is
quarantined, the repair path restores it from the latest committed WAL
after-image, and a full scrub certifies the store clean again. A second
flip after a checkpoint (no WAL image left) shows the two end states:
loud failure by default, or degraded reads with an explicit skip report.
"""

import os
import tempfile

from repro import RodentStore, Schema


def flip_bit(path, offset):
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0x40]))


def first_table_frame(store, name):
    """Disk offset of the first page referenced by ``name``'s layout."""
    entry = store.catalog.entry(name)
    pid = min(
        min(l.page_ids())
        for l in store._entry_layouts(entry)
        if l.page_ids()
    )
    return pid, pid * store.disk.frame_size


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="rodent-integrity-")
    path = os.path.join(workdir, "store.pages")

    # 1. Every page is framed with a CRC32 trailer; the WAL carries
    #    per-record CRCs and the catalog file a whole-file checksum.
    store = RodentStore(path, page_size=1024, pool_capacity=64,
                        durable=True)
    store.create_table("Events", Schema.of("id:int", "kind:int"))
    store.load("Events", [(i, i % 5) for i in range(500)])
    store.pool.flush_all()
    store.wal.sync()

    report = store.scrub()
    print(f"clean scrub: clean={report['clean']} "
          f"pages={report['pages_checked']} "
          f"wal_records={report['wal_records_checked']}")

    # 2. Bit rot strikes a data page. The next cold read fails its
    #    checksum, the page is quarantined — and because the WAL still
    #    holds a committed after-image, it is repaired in place,
    #    invisibly to the scan.
    store.pool.clear()
    pid, offset = first_table_frame(store, "Events")
    flip_bit(path, offset + 100)
    rows = len(list(store.table("Events").scan()))
    stats = store.storage_stats()["integrity"]
    print(f"bit flip on page {pid}: scan still returned {rows} rows "
          f"(failures={stats['page_failures']}, "
          f"repairs={stats['page_repairs']}, "
          f"quarantined={stats['quarantined']})")

    # 3. After a checkpoint the WAL is truncated — a fresh flip has no
    #    after-image to repair from. Default policy: fail loudly.
    store.checkpoint()
    store.pool.clear()
    pid, offset = first_table_frame(store, "Events")
    flip_bit(path, offset + 100)
    try:
        list(store.table("Events").scan())
    except Exception as exc:
        print(f"unrepairable by default -> {type(exc).__name__}: {exc}")

    # 4. Opt-in degraded reads: the scan skips the corrupt unit and
    #    files an explicit report instead of guessing at rows.
    store.degraded_reads = True
    rows = list(store.table("Events").scan())
    skipped = store.catalog.entry("Events").last_corruption_skipped
    print(f"degraded scan: {len(rows)} rows, skipped={skipped}")

    # 5. The scrubber gives the final word: checksum failures, WAL and
    #    catalog health, and cross-structure invariants in one report.
    report = store.scrub(repair=True)
    print(f"final scrub: clean={report['clean']} "
          f"unrepairable={report['unrepairable']}")
    store.close()


if __name__ == "__main__":
    main()
