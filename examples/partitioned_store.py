"""Horizontally partitioned tables: pruning, parallel scans, and
hot/cold per-partition adaptation.

A table of timestamped events is range-partitioned on ``t`` — each
partition is an independently rendered region with its own layout, zone
maps, and insert buffers. The example shows the three things partitioning
buys:

1. **partition pruning** — a narrow time-range query skips whole
   partitions by intersecting the predicate with the partition map,
   before any page or zone map is touched;
2. **parallel scans** — full scans fan partitions out to a shared worker
   pool (``scan_workers``), overlapping page I/O, and merge back in
   partition order so results are identical to the serial scan;
3. **hot/cold adaptation** — a skewed workload (recent partitions are
   queried analytically, old ones barely touched) makes the adaptive
   loop re-layout only the *hot* partitions, one region at a time; cold
   partitions keep their original design, so the rewrite never touches
   most of the table.

Run with::

    python examples/partitioned_store.py
"""

import random

from repro import RodentStore
from repro.query.expressions import Range
from repro.types.schema import Schema

SCHEMA = Schema.of("t:int", "sensor:int", "value:int", "flags:int")


def main() -> None:
    rng = random.Random(7)
    n = 40_000
    horizon = 8_000  # t in [0, horizon); partitions of 1000 each
    records = [
        (
            rng.randrange(horizon),
            rng.randrange(500),
            rng.randrange(100_000),
            rng.randrange(8),
        )
        for _ in range(n)
    ]
    bounds = ", ".join(str(b) for b in range(1000, horizon, 1000))

    store = RodentStore(page_size=2048, pool_capacity=512, scan_workers=4)
    store.create_table(
        "Events", SCHEMA, layout=f"partition[r.t; range, {bounds}](Events)"
    )
    table = store.load("Events", records)
    print(f"loaded {n:,} rows into {table.partition_count} partitions:")
    for region in table.partitions:
        print(
            f"  partition {region.pid} {region.describe_key():>14} "
            f"{region.row_count:>6,} rows  [{region.plan.describe()}]"
        )

    # -- 1. partition pruning ---------------------------------------------
    predicate = Range("t", 7_000, 7_499)  # the most recent half-partition
    pruned = table.partitions_pruned(predicate)
    _, io = store.run_cold(
        lambda: sum(1 for _ in table.scan(predicate=predicate))
    )
    print(
        f"\nrange query t∈[7000,7500): pruned {pruned}/"
        f"{table.partition_count} partitions, read {io.page_reads} pages"
    )
    print(str(store.query("Events").where(predicate).explain()))

    # -- 2. parallel scans -------------------------------------------------
    store.scan_workers = 0
    serial = list(table.scan())
    store.scan_workers = 4
    parallel = list(table.scan())
    assert parallel == serial  # order-preserving morsel merge
    print(
        f"\nparallel scan over {table.partition_count} partitions with 4 "
        f"workers returned {len(parallel):,} rows — identical to serial"
    )

    # -- 3. hot/cold per-partition adaptation -----------------------------
    # Analysts hammer the two most recent partitions with single-column
    # aggregation scans; history stays cold.
    print("\nskewed analytic phase: projecting value over recent data...")
    for _ in range(50):
        list(
            table.scan(
                fieldlist=["value"],
                predicate=Range("t", 6_000, 7_999),
            )
        )
    decision = store.adapt("Events")
    print(f"  adapt: {decision['reason']}")
    print("  partition designs now:")
    for region in table.partitions:
        heat = (
            "HOT "
            if region.pid in decision.get("relayout_partitions", [])
            else "cold"
        )
        print(
            f"  {heat} partition {region.pid} {region.describe_key():>14} "
            f"[{region.plan.describe()}]"
        )

    stats = store.storage_stats()["tables"]["Events"]
    print(
        f"\ncounters: {stats['partition_scans']} partitioned scans, "
        f"{stats['partitions_pruned']} partitions pruned cumulatively"
    )
    store.close()


if __name__ == "__main__":
    main()
