"""Quickstart: declare a physical layout, load data, query it, change it.

Run with::

    python examples/quickstart.py
"""

from repro import Q, Range, Rect, RodentStore, Schema


def main() -> None:
    # 1. A store is a disk (here: in-memory), buffer pool, WAL, catalog,
    #    algebra interpreter, and layout renderer (paper Figure 1).
    store = RodentStore(page_size=4096, pool_capacity=128)

    # 2. Declare a logical schema and a *declarative physical design*.
    #    The storage algebra expression below stores the table as a 2-D grid
    #    over (x, y), cells ordered along a Z-curve.
    schema = Schema.of("t:int", "x:int", "y:int", "sensor:int", "reading:int")
    store.create_table(
        "Readings",
        schema,
        layout="zorder(grid[x, y],[16, 16](Readings))",
    )

    # 3. Bulk-load records (any iterable of tuples matching the schema).
    records = [
        (t, (t * 7) % 128, (t * 13) % 128, t % 4, 1000 + (t * 31) % 500)
        for t in range(5_000)
    ]
    table = store.load("Readings", records)
    print(f"loaded {table.row_count} rows "
          f"({table.layout.total_pages()} pages) as: {table.plan.describe()}")

    # 4. Query through the paper's access-method API. Spatial predicates
    #    prune grid cells via the cell directory.
    box = Rect({"x": (10, 40), "y": (10, 40)})
    hits, io = store.run_cold(lambda: list(table.scan(predicate=box)))
    print(f"window query: {len(hits)} rows, {io.page_reads} pages read "
          f"(full table is {table.layout.total_pages()} pages)")

    # 5. Cost estimation without touching data (scan_cost, §4.1).
    estimate = table.scan_cost(predicate=box)
    print(f"scan_cost estimate: {estimate.pages:.0f} pages, "
          f"{estimate.ms:.2f} ms")

    # 6. Or use the little fluent front end.
    per_sensor = (
        Q(store, "Readings")
        .where(Range("x", 0, 63))
        .group_by("sensor")
        .agg(n="*", avg_reading="avg:reading")
        .run()
    )
    print("per-sensor aggregates (x < 64):")
    for sensor, n, avg_reading in sorted(per_sensor):
        print(f"  sensor {sensor}: n={n}, avg={avg_reading:.1f}")

    # 7. Physical designs are data, not schema migrations: re-layout the
    #    same table as a column store with one call.
    table = store.relayout("Readings", "columns(Readings)")
    narrow, io = store.run_cold(
        lambda: list(table.scan(fieldlist=["reading"]))
    )
    print(f"after relayout to columns: reading-only scan touched "
          f"{io.page_reads} pages")


if __name__ == "__main__":
    main()
