"""Attribute-dependent RDF layouts (paper §7).

    "Our system can handle unusual storage schemes — such as
     attribute-dependent layouts for RDF data — while still exposing
     logical tables or array schemas at the application layer."

One logical triple table, three physical designs; per-predicate queries show
why the algebra's ``fold`` expresses RDF vertical partitioning for free.

Run with::

    python examples/rdf_vertical.py
"""

from repro import RodentStore
from repro.workloads.rdf import (
    TRIPLE_SCHEMA,
    VERTICAL_PARTITION_EXPR,
    generate_triples,
    predicate_queries,
)

DESIGNS = {
    "rows": "Triples",
    "clustered rows": "orderby[predicate, subject](Triples)",
    "vertical partition (fold)": VERTICAL_PARTITION_EXPR,
}


def main() -> None:
    records = generate_triples(50_000)
    queries = predicate_queries(25)

    print("one logical table, three physical designs; "
          f"{len(records):,} triples, {len(queries)} per-predicate queries\n")
    print(f"{'design':<28}{'db pages':>9}{'pages/query':>13}")
    for name, layout in DESIGNS.items():
        store = RodentStore(page_size=4096, pool_capacity=96)
        store.create_table("Triples", TRIPLE_SCHEMA, layout=layout)
        table = store.load("Triples", records)
        pages = 0
        reference = None
        for q in queries:
            rows, io = store.run_cold(
                lambda q=q: sorted(table.scan(predicate=q))
            )
            pages += io.page_reads
        print(f"{name:<28}{table.layout.total_pages():>9}"
              f"{pages / len(queries):>13.1f}")

    # The folded layout still answers arbitrary queries: scans un-nest.
    store = RodentStore(page_size=4096, pool_capacity=96)
    store.create_table("Triples", TRIPLE_SCHEMA, layout=VERTICAL_PARTITION_EXPR)
    table = store.load("Triples", records)
    sample = list(table.scan())[:3]
    print("\nun-nested scan of the folded layout (first 3 triples):")
    for predicate, subject, obj in sample:
        print(f"  (s={subject}, p={predicate}, o={obj})")


if __name__ == "__main__":
    main()
