"""The paper's introduction example: ``zorder(grid[y, z](N))`` on sales data.

    "given a database of sales records of the form
         N = (zipcode:z, year:y, month:m, day:d, customerid:c, productid:p ...)
     the algebraic expression zorder(grid[y, z](N)) would repartition the
     tuples into a matrix where years are on the X axis and zipcodes on the
     Y axis. Cells would be stored on disk using a space filling curve, so
     that nearby zipcodes or years are co-located."

Run with::

    python examples/sales_analytics.py
"""

from repro import Q, Range, RodentStore
from repro.workloads import (
    SALES_SCHEMA,
    generate_sales,
    narrow_column_queries,
    year_zip_queries,
)

ZORDER_GRID = (
    "zorder(grid[year, zipcode],[1, 10]"
    "(project[year, zipcode, productid, quantity, price](Sales)))"
)


def main() -> None:
    records = generate_sales(40_000)
    queries = year_zip_queries(25)

    # Three designs for the same logical table.
    designs = {
        "rows": "Sales",
        "columns (DSM)": "columns(Sales)",
        "zorder(grid[y, z](N))": ZORDER_GRID,
    }

    print("=== year x zipcode slice queries (the intro's OLAP shape) ===")
    print(f"{'design':<24}{'pages/query':>12}{'est ms':>9}")
    for name, layout in designs.items():
        store = RodentStore(page_size=8192, pool_capacity=96)
        store.create_table("Sales", SALES_SCHEMA, layout=layout)
        table = store.load("Sales", records)
        pages = seeks = 0
        for q in queries:
            _, io = store.run_cold(
                lambda q=q: list(
                    table.scan(fieldlist=["quantity", "price"], predicate=q)
                )
            )
            pages += io.page_reads
            seeks += io.read_seeks
        n = len(queries)
        ms = store.cost_model.cost_ms(pages / n, seeks / n)
        print(f"{name:<24}{pages / n:>12.1f}{ms:>9.2f}")

    # Column-store shape: narrow projections, full-table aggregates.
    print("\n=== narrow aggregate queries over the column layout ===")
    store = RodentStore(page_size=8192, pool_capacity=96)
    store.create_table("Sales", SALES_SCHEMA, layout="columns(Sales)")
    store.load("Sales", records)
    for fields, predicate in narrow_column_queries()[:3]:
        _, io = store.run_cold(
            lambda f=fields, p=predicate: list(
                store.table("Sales").scan(fieldlist=f, predicate=p)
            )
        )
        print(f"  select {', '.join(fields):<22} "
              f"where {predicate.field} in "
              f"[{predicate.lo:g}, {predicate.hi:g}]: "
              f"{io.page_reads} pages")

    # The fluent front end over the gridded layout.
    store = RodentStore(page_size=8192, pool_capacity=96)
    store.create_table("Sales", SALES_SCHEMA, layout=ZORDER_GRID)
    store.load("Sales", records)
    top = (
        Q(store, "Sales")
        .where(Range("year", 2004, 2004))
        .group_by("productid")
        .agg(revenue="sum:price", units="sum:quantity")
        .order_by(("revenue", False))
        .limit(5)
        .run()
    )
    print("\n=== top products of 2004 (gridded layout) ===")
    for product, revenue, units in top:
        print(f"  product {product:>4}: ${revenue / 100:>12,.2f} "
              f"({units} units)")


if __name__ == "__main__":
    main()
