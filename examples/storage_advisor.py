"""The storage design optimizer (paper Section 5), end to end.

Feeds the advisor a schema + workload, lets it search the design space, and
verifies the recommendation by actually re-organizing the table and measuring
pages/query before and after.

Run with::

    python examples/storage_advisor.py
"""

from repro import RodentStore
from repro.optimizer import (
    Policy,
    Query,
    ReorganizationManager,
    Workload,
    recommend_for_table,
)
from repro.workloads import TRACE_SCHEMA, generate_traces, random_region_queries


def main() -> None:
    store = RodentStore(page_size=8192, pool_capacity=128)
    store.create_table("Traces", TRACE_SCHEMA)
    records = generate_traces(40_000, n_vehicles=20)
    table = store.load("Traces", records)
    print(f"loaded {table.row_count:,} observations as the canonical row "
          f"layout ({table.layout.total_pages()} pages)\n")

    # The workload: spatial window queries over (lat, lon).
    workload = Workload("Traces")
    queries = random_region_queries(20)
    for i, q in enumerate(queries):
        workload.add(
            Query(name=f"q{i}", fieldlist=("lat", "lon"), predicate=q)
        )

    # Measure the status quo.
    def run_workload():
        total = 0
        for q in queries:
            rows, io = store.run_cold(
                lambda q=q: list(
                    store.table("Traces").scan(
                        fieldlist=["lat", "lon"], predicate=q
                    )
                )
            )
            total += io.page_reads
        return total / len(queries)

    before = run_workload()
    print(f"pages/query on the row layout:        {before:10.1f}")

    # Ask the advisor (exhaustive over the candidate pool, then gradient
    # descent on the grid strides — §5's suggested heuristics).
    rec = recommend_for_table(store, workload)
    print("\nadvisor recommendation:")
    print(f"  {rec.expression.to_text()}")
    print(f"  predicted {rec.predicted_ms:.1f} ms/workload over "
          f"{rec.storage_pages} pages ({rec.evaluated} designs costed)")
    print("  runners-up:")
    for text, ms in rec.alternatives[:3]:
        print(f"    {ms:9.1f} ms  {text[:84]}")

    # Apply it under an eager reorganization policy and re-measure.
    manager = ReorganizationManager(store)
    manager.set_policy("Traces", Policy.EAGER)
    manager.apply_design("Traces", rec.expression, source_records=records)
    after = run_workload()
    print(f"\npages/query after reorganization:     {after:10.1f}")
    print(f"reorganization wrote {manager.reorganization_io.page_writes} "
          f"pages (one-time cost)")
    print(f"\nimprovement: {before / after:.1f}x fewer pages per query")


if __name__ == "__main__":
    main()
