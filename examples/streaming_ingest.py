"""Streaming ingest tour: levelled storage under a live firehose.

Run with::

    python examples/streaming_ingest.py

Creates a ``levels[4; 4](rows(Events))`` table, pushes an append-only
firehose through it from a writer thread while the main thread runs
range queries against the already-committed prefix, lets background
merges run on the scan worker pool, then force-compacts and prices the
whole run with the write-amplification counters.
"""

import threading
import time

from repro import Range, RodentStore, Schema

N_BATCHES = 120
BATCH_ROWS = 128


def main() -> None:
    # 1. scan_workers>1 also powers background compaction: run seals
    #    happen inline on insert, size-tiered merges are handed to the
    #    worker pool so the firehose never stalls behind a merge.
    store = RodentStore(page_size=4096, pool_capacity=128,
                        scan_workers=3, level_seal_rows=512)
    schema = Schema.of("id:int", "v:int")
    store.create_table("Events", schema,
                       layout="levels[4; 4](rows(Events))")
    events = store.table("Events")

    # 2. Seed a prefix so the concurrent reader below has a stable key
    #    range to verify against while the firehose appends.
    events.insert([(i, i % 97) for i in range(BATCH_ROWS)])
    probe = Range("id", 0, BATCH_ROWS - 1)
    want = sorted((i, i % 97) for i in range(BATCH_ROWS))

    def firehose() -> None:
        for b in range(1, N_BATCHES):
            lo = b * BATCH_ROWS
            events.insert(
                [(lo + i, (lo + i) % 97) for i in range(BATCH_ROWS)]
            )

    writer = threading.Thread(target=firehose)
    start = time.perf_counter()
    writer.start()

    # 3. Live range queries: every scan pins an MVCC snapshot of the run
    #    manifest, so merges swapping the manifest underneath never tear
    #    a result — the seeded prefix stays exactly intact throughout.
    reads = 0
    while writer.is_alive():
        got = sorted(events.scan(predicate=probe))
        assert got == want, "range query diverged during ingest"
        reads += 1
    writer.join()
    elapsed = time.perf_counter() - start
    total = N_BATCHES * BATCH_ROWS
    print(f"ingested {total} rows in {elapsed:.2f}s "
          f"({total / elapsed:,.0f} rows/s) with {reads} live range "
          f"queries, none torn")
    print(f"run manifest after ingest: {events.run_count} runs")

    # 4. A full compaction merges every run (and the pending buffer)
    #    into one, dropping all tombstones; scans before/after agree.
    before = sorted(events.scan())
    events.compact()
    assert sorted(events.scan()) == before
    print(f"after compact(): {events.run_count} run, "
          f"{events.row_count} rows")

    # 5. The write-amplification section of storage_stats() prices the
    #    run: bytes written by seals + merges over bytes ingested.
    wa = store.storage_stats()["tables"]["Events"]["write_amplification"]
    print(f"write amplification: {wa['factor']:.2f}x "
          f"({wa['compactions']} compactions, "
          f"{wa['pages_rewritten_by_compaction']} pages rewritten)")
    store.close()


if __name__ == "__main__":
    main()
