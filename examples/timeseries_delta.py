"""Time series as nestings (§3.4) with fold + per-field compression (§3.5.2).

Stores sensor time series three ways:

* plain rows;
* folded by series — ``fold[t, value; series]`` groups each sensor's stream
  into one nested record, storing the series id once;
* folded + compressed — timestamps delta-encoded, values varint-encoded.

Run with::

    python examples/timeseries_delta.py
"""

from repro import RodentStore
from repro.algebra.transforms import delta_list, undelta_list
from repro.compression import get_codec
from repro.query.expressions import Range
from repro.types import INT
from repro.workloads import TIMESERIES_SCHEMA, generate_timeseries, series_column


def build(layout: str, records):
    store = RodentStore(page_size=4096, pool_capacity=96)
    store.create_table("TS", TIMESERIES_SCHEMA, layout=layout)
    table = store.load("TS", records)
    return store, table


def main() -> None:
    records = generate_timeseries(60_000, n_series=8, kind="smooth")

    designs = {
        "rows": "TS",
        "fold by series": "fold[t, value; series](TS)",
        "fold + delta/varint": (
            "compress[varint; value](compress[delta; t]"
            "(fold[t, value; series](TS)))"
        ),
    }

    print("=== storage size per design ===")
    print(f"{'design':<24}{'pages':>8}")
    tables = {}
    for name, layout in designs.items():
        store, table = build(layout, records)
        tables[name] = (store, table)
        print(f"{name:<24}{table.layout.total_pages():>8}")

    # Scans unnest folded layouts transparently (§4.1: inner values are
    # "unnested by merging with the parent").
    print("\n=== one-series scan, pages read ===")
    for name, (store, table) in tables.items():
        rows, io = store.run_cold(
            lambda t=table: list(t.scan(predicate=Range("series", 3, 3)))
        )
        print(f"{name:<24}{io.page_reads:>8}   ({len(rows)} points)")

    # The paper's ∆ transform, by hand, on one series.
    column = series_column(records, 0)
    deltas = [int(d) for d in delta_list(column)]
    assert undelta_list(deltas) == column
    raw = get_codec("none").encode(column, INT)
    packed = get_codec("varint").encode(deltas, INT)
    print(
        f"\ndelta+varint on one smooth series: {len(raw):,} -> "
        f"{len(packed):,} bytes ({len(raw) / len(packed):.1f}x)"
    )


if __name__ == "__main__":
    main()
