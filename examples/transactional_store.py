"""Durability tour: WAL-backed writes, snapshot scans, crash recovery.

Run with::

    python examples/transactional_store.py

Opens a file-backed store in durable mode, mutates it transactionally,
shows a scan surviving a concurrent re-layout via MVCC snapshots, then
simulates a power loss with the fault injector and recovers from the WAL.
"""

import os
import tempfile

from repro import Range, RodentStore, Schema
from repro.errors import CrashError
from repro.storage.faults import FaultInjector, lose_unsynced_wal


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="rodent-txn-")
    path = os.path.join(workdir, "store.pages")

    # 1. durable=True wires every mutation through the transaction
    #    manager: effects are WAL-logged and group-committed, and the
    #    store recovers automatically on reopen.
    store = RodentStore(path, page_size=4096, pool_capacity=128,
                        durable=True)
    schema = Schema.of("id:int", "balance:int")
    store.create_table("Accounts", schema)
    store.load("Accounts", [(i, 100) for i in range(1_000)])
    accounts = store.table("Accounts")

    # 2. Inserts, updates and deletes are each one transaction.
    accounts.insert([(2_000 + i, 50) for i in range(10)])
    moved = accounts.update(
        {"balance": lambda row: row["balance"] + 25}, Range("id", 0, 99)
    )
    print(f"update touched {moved} rows in one transaction")

    stats = store.storage_stats()
    print(f"wal: {stats['wal']['wal_bytes']} bytes, "
          f"{stats['transactions']['txns_committed']} txns committed")

    # 3. Checkpointing folds the WAL into the page file + catalog and
    #    truncates the log (close() does this automatically).
    store.checkpoint()
    print(f"after checkpoint: wal is "
          f"{store.storage_stats()['wal']['wal_bytes']} bytes")

    # 4. MVCC snapshots: a scan opened *before* a re-layout keeps reading
    #    its version of the table, even while the writer swaps in a new
    #    columnar representation underneath it.
    scan = accounts.scan(predicate=Range("id", 0, 999))
    first = next(scan)
    store.relayout("Accounts", "columns(Accounts)")
    remainder = sum(1 for _ in scan) + 1
    print(f"snapshot scan saw {remainder} rows across the re-layout; "
          f"new scans use layout {accounts.plan.kind!r}")

    # 5. Simulate a power loss in the middle of a transaction: the fault
    #    injector kills the store after two more WAL writes, so the
    #    delete below never commits — while the committed re-layout above
    #    is still only in the WAL.
    store.inject_faults(FaultInjector(crash_after=2, mode="torn",
                                      target="wal"))
    try:
        accounts.delete(Range("id", 0, 499))
    except CrashError as exc:
        print(f"crash injected: {exc}")
    synced = store.wal.synced_size
    store.wal.close()
    store.disk.close()
    lose_unsynced_wal(path + ".wal", synced)  # drop never-fsynced bytes

    # 6. Reopen: recovery replays committed work and rolls back the torn
    #    delete — all 1010 rows are still there.
    reopened = RodentStore(path, page_size=4096, pool_capacity=128,
                           durable=True)
    print(f"recovery: {reopened.recovery_summary}")
    survivors = len(list(reopened.table("Accounts").scan()))
    print(f"after recovery: {survivors} rows "
          f"(layout {reopened.table('Accounts').plan.kind!r})")
    reopened.close()


if __name__ == "__main__":
    main()
