"""Legacy setup shim.

The primary metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package (pip falls back to ``setup.py develop`` when PEP 517 is disabled).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "RodentStore reproduction: an adaptive, declarative storage system "
        "(CIDR 2009)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
