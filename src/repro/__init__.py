"""RodentStore reproduction: an adaptive, declarative storage system.

Reproduces *The Case for RodentStore* (Cudre-Mauroux, Wu, Madden; CIDR 2009):
a storage engine whose physical layout — rows, columns, grids, space-filling
curve orders, folded nestings, compressed encodings — is declared with a
storage algebra and rendered by a shared backend.

Quickstart::

    from repro import RodentStore, Schema, Rect

    store = RodentStore(page_size=8192)
    store.create_table(
        "Traces",
        Schema.of("t:int", "lat:int", "lon:int", "id:int"),
        layout="zorder(grid[lat, lon],[1000, 1000](Traces))",
    )
    table = store.load("Traces", records)
    hits = list(table.scan(predicate=Rect({"lat": (a, b), "lon": (c, d)})))
"""

from repro.algebra import AlgebraInterpreter, PhysicalPlan, parse
from repro.engine import CostEstimate, CostModel, RodentStore, Table, TableStats
from repro.errors import RodentStoreError
from repro.query import Q, Range, Rect
from repro.types import Field, Schema

__version__ = "0.1.0"

__all__ = [
    "AlgebraInterpreter",
    "CostEstimate",
    "CostModel",
    "Field",
    "PhysicalPlan",
    "Q",
    "Range",
    "Rect",
    "RodentStore",
    "RodentStoreError",
    "Schema",
    "Table",
    "TableStats",
    "parse",
    "__version__",
]
