"""Storage-algebra abstract syntax.

Expressions describe *transformations of the canonical row-major layout* of a
logical table (paper Section 3). Nodes are immutable values: they can be
hashed, compared, rewritten, pretty-printed back to the paper's syntax
(:meth:`Node.to_text`), evaluated over in-memory nestings
(:mod:`repro.algebra.transforms`), type-checked
(:mod:`repro.algebra.validation`), and compiled to physical storage plans
(:mod:`repro.algebra.interpreter`).

Two node families live here:

* **scalar expressions** (:class:`Scalar` subclasses) — field references,
  constants, comparisons, arithmetic — used by ``select``, ``partition`` and
  comprehension conditions;
* **layout expressions** (:class:`Node` subclasses) — the algebra operators:
  ``project``, ``select``, ``fold``, ``grid``, ``zorder``, ``delta``, ...
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Sequence

from repro.errors import AlgebraError

# ---------------------------------------------------------------------------
# Scalar expressions (conditions and computed elements)
# ---------------------------------------------------------------------------


class Scalar:
    """Base class for scalar expressions evaluated per record."""

    def to_text(self) -> str:
        raise NotImplementedError

    def fields_used(self) -> set[str]:
        """Names of schema fields this expression reads."""
        return set()

    def __repr__(self) -> str:
        return self.to_text()


@dataclass(frozen=True)
class FieldRef(Scalar):
    """A reference to a record field, printed as ``r.name``."""

    name: str

    def to_text(self) -> str:
        return f"r.{self.name}"

    def fields_used(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class Const(Scalar):
    """A literal constant."""

    value: Any

    def to_text(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class Comparison(Scalar):
    """Binary comparison; ``op`` is one of ``= != < <= > >=``."""

    op: str
    left: Scalar
    right: Scalar

    _OPS: tuple[str, ...] = ("=", "!=", "<", "<=", ">", ">=")

    def __post_init__(self):
        if self.op not in self._OPS:
            raise AlgebraError(f"unknown comparison operator {self.op!r}")

    def to_text(self) -> str:
        return f"{self.left.to_text()} {self.op} {self.right.to_text()}"

    def fields_used(self) -> set[str]:
        return self.left.fields_used() | self.right.fields_used()


@dataclass(frozen=True)
class Arith(Scalar):
    """Binary arithmetic; ``op`` is one of ``+ - * / %``."""

    op: str
    left: Scalar
    right: Scalar

    _OPS: tuple[str, ...] = ("+", "-", "*", "/", "%")

    def __post_init__(self):
        if self.op not in self._OPS:
            raise AlgebraError(f"unknown arithmetic operator {self.op!r}")

    def to_text(self) -> str:
        return f"({self.left.to_text()} {self.op} {self.right.to_text()})"

    def fields_used(self) -> set[str]:
        return self.left.fields_used() | self.right.fields_used()


@dataclass(frozen=True)
class Logical(Scalar):
    """N-ary conjunction/disjunction or unary negation."""

    op: str  # "and" | "or" | "not"
    operands: tuple[Scalar, ...]

    def __post_init__(self):
        if self.op not in ("and", "or", "not"):
            raise AlgebraError(f"unknown logical operator {self.op!r}")
        if self.op == "not" and len(self.operands) != 1:
            raise AlgebraError("'not' takes exactly one operand")
        if self.op in ("and", "or") and len(self.operands) < 2:
            raise AlgebraError(f"'{self.op}' takes at least two operands")

    def to_text(self) -> str:
        if self.op == "not":
            return f"not ({self.operands[0].to_text()})"
        joiner = f" {self.op} "
        return "(" + joiner.join(o.to_text() for o in self.operands) + ")"

    def fields_used(self) -> set[str]:
        used: set[str] = set()
        for operand in self.operands:
            used |= operand.fields_used()
        return used


def conj(*operands: Scalar) -> Scalar:
    """Conjunction helper collapsing the single-operand case."""
    if len(operands) == 1:
        return operands[0]
    return Logical("and", tuple(operands))


# ---------------------------------------------------------------------------
# Ordering keys
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SortKey:
    """One ``orderby`` key: a field and a direction."""

    name: str
    ascending: bool = True

    def to_text(self) -> str:
        return f"r.{self.name} {'ASC' if self.ascending else 'DESC'}"


# ---------------------------------------------------------------------------
# Layout expressions
# ---------------------------------------------------------------------------


class Node:
    """Base class for layout expressions."""

    op_name: str = "node"

    def children(self) -> tuple["Node", ...]:
        raise NotImplementedError

    def with_children(self, children: Sequence["Node"]) -> "Node":
        """Rebuild this node with new children (same arity required)."""
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def transform_bottom_up(self, fn: Callable[["Node"], "Node"]) -> "Node":
        """Rewrite the tree bottom-up: children first, then this node."""
        new_children = [c.transform_bottom_up(fn) for c in self.children()]
        node = self if tuple(new_children) == self.children() else (
            self.with_children(new_children)
        )
        return fn(node)

    def table_names(self) -> set[str]:
        """Names of all logical tables referenced by the expression."""
        return {
            node.name for node in self.walk() if isinstance(node, TableRef)
        }

    def __repr__(self) -> str:
        return self.to_text()


@dataclass(frozen=True)
class TableRef(Node):
    """The canonical row-major nesting of a logical table (the paper's N)."""

    name: str
    op_name = "table"

    def children(self) -> tuple[Node, ...]:
        return ()

    def with_children(self, children: Sequence[Node]) -> Node:
        if children:
            raise AlgebraError("TableRef takes no children")
        return self

    def to_text(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Node):
    """An explicit nesting, e.g. ``[[1, 2, 3], [12, 13, 14]]``."""

    nesting: tuple
    op_name = "literal"

    @staticmethod
    def of(value: Any) -> "Literal":
        return Literal(_freeze(value))

    def children(self) -> tuple[Node, ...]:
        return ()

    def with_children(self, children: Sequence[Node]) -> Node:
        if children:
            raise AlgebraError("Literal takes no children")
        return self

    def to_text(self) -> str:
        return _render_nesting(self.nesting)

    def thaw(self) -> list:
        """The literal as mutable nested lists."""
        return _thaw(self.nesting)


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


def _render_nesting(value: Any) -> str:
    if isinstance(value, tuple):
        return "[" + ", ".join(_render_nesting(v) for v in value) + "]"
    return repr(value)


class _Unary(Node):
    """Shared plumbing for single-child operators."""

    child: Node

    def children(self) -> tuple[Node, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Node]) -> Node:
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Project(_Unary):
    """``project[Ai,...,Aj](N)`` — isolate fields (paper §3.5.1)."""

    child: Node
    fields: tuple[str, ...]
    op_name = "project"

    def __post_init__(self):
        if not self.fields:
            raise AlgebraError("project requires at least one field")

    def to_text(self) -> str:
        return f"project[{', '.join(self.fields)}]({self.child.to_text()})"


@dataclass(frozen=True)
class Append(_Unary):
    """``append([e1,...,em], N)`` — attach computed elements (paper §3.5.1)."""

    child: Node
    elements: tuple[tuple[str, Scalar], ...]  # (new field name, expression)
    op_name = "append"

    def __post_init__(self):
        if not self.elements:
            raise AlgebraError("append requires at least one element")

    def to_text(self) -> str:
        inner = ", ".join(
            f"{name}={expr.to_text()}" for name, expr in self.elements
        )
        return f"append[{inner}]({self.child.to_text()})"


@dataclass(frozen=True)
class Select(_Unary):
    """``select_C(N)`` — keep records satisfying C (paper §3.5.1)."""

    child: Node
    condition: Scalar
    op_name = "select"

    def to_text(self) -> str:
        return f"select[{self.condition.to_text()}]({self.child.to_text()})"


@dataclass(frozen=True)
class Partition(_Unary):
    """``partition_C(N)`` — horizontal partitioning (paper §3.5.1).

    Records are split into sub-nestings keyed by the value of ``key`` (a
    scalar expression). Three partitioning methods are supported:

    * ``value`` (the paper's default) — one partition per distinct key
      value, in first-occurrence order;
    * ``range`` — ``args`` are ascending split points ``b1 < ... < bk``
      defining k+1 partitions ``(-inf, b1), [b1, b2), ..., [bk, +inf)``,
      written ``partition[r.t; range, b1, ..., bk](N)``;
    * ``hash`` — ``args`` is a single bucket count n, records land in
      bucket ``stable_hash(key) % n``, written
      ``partition[r.id; hash, n](N)``.

    The child expression is each partition's physical design: the engine
    renders every partition as an independent region of that design.
    """

    child: Node
    key: Scalar
    method: str = "value"
    args: tuple[float, ...] = ()
    op_name = "partition"

    def __post_init__(self):
        if self.method not in ("value", "range", "hash"):
            raise AlgebraError(f"unknown partition method {self.method!r}")
        if self.method == "value" and self.args:
            raise AlgebraError("value partitioning takes no arguments")
        if self.method == "range":
            if not self.args:
                raise AlgebraError(
                    "range partitioning requires at least one split point"
                )
            if any(b >= a for b, a in zip(self.args, self.args[1:])):
                raise AlgebraError(
                    "range partition split points must be strictly ascending"
                )
        if self.method == "hash":
            if (
                len(self.args) != 1
                or self.args[0] != int(self.args[0])
                or not 1 <= int(self.args[0]) <= 4096
            ):
                raise AlgebraError(
                    "hash partitioning takes one bucket count in [1, 4096]"
                )

    def to_text(self) -> str:
        if self.method == "value":
            return f"partition[{self.key.to_text()}]({self.child.to_text()})"
        rendered = ", ".join(f"{a:g}" for a in self.args)
        return (
            f"partition[{self.key.to_text()}; {self.method}, {rendered}]"
            f"({self.child.to_text()})"
        )


@dataclass(frozen=True)
class Levels(_Unary):
    """``levels[k; ratio](N)`` — log-structured (LSM) levelled storage.

    The child expression is the design of each *run*: the engine renders
    inserted batches as immutable L0 runs of that design and merges runs
    size-tiered into exponentially larger levels, so ingest never rewrites
    existing data. ``k`` is the fan-out — a level holding ``k`` runs is
    merged into one run of the next level; ``ratio`` is the size ratio
    between consecutive levels (it scales each level's run-size class and
    thereby the merge cadence).

    An optional merge ``key`` gives upsert semantics: scans resolve runs
    newest-first and a newer row shadows older rows with the same key
    (last-writer-wins), written ``levels[k; ratio; r.id](N)``. Without a
    key the table is an append-only multiset. Deletes become tombstones
    either way, resolved at scan and merge time.
    """

    child: Node
    k: int = 4
    ratio: int = 4
    key: Scalar | None = None
    op_name = "levels"

    def __post_init__(self):
        if self.k != int(self.k) or not 2 <= int(self.k) <= 64:
            raise AlgebraError("levels fan-out k must be in [2, 64]")
        if self.ratio != int(self.ratio) or not 2 <= int(self.ratio) <= 64:
            raise AlgebraError("levels size ratio must be in [2, 64]")

    def to_text(self) -> str:
        if self.key is not None:
            return (
                f"levels[{self.k}; {self.ratio}; {self.key.to_text()}]"
                f"({self.child.to_text()})"
            )
        return f"levels[{self.k}; {self.ratio}]({self.child.to_text()})"


@dataclass(frozen=True)
class Fold(_Unary):
    """``fold_{B,A}(N)`` — nest B values co-occurring with each A value
    (paper §3.5.2)."""

    child: Node
    nest_fields: tuple[str, ...]  # B
    group_fields: tuple[str, ...]  # A
    op_name = "fold"

    def __post_init__(self):
        if not self.nest_fields or not self.group_fields:
            raise AlgebraError("fold requires nest and group fields")
        overlap = set(self.nest_fields) & set(self.group_fields)
        if overlap:
            raise AlgebraError(
                f"fold fields may not overlap (shared: {sorted(overlap)})"
            )

    def to_text(self) -> str:
        return (
            f"fold[{', '.join(self.nest_fields)}; "
            f"{', '.join(self.group_fields)}]({self.child.to_text()})"
        )


@dataclass(frozen=True)
class Unfold(_Unary):
    """Reverse of ``fold`` (paper §3.5.2)."""

    child: Node
    op_name = "unfold"

    def to_text(self) -> str:
        return f"unfold({self.child.to_text()})"


@dataclass(frozen=True)
class Prejoin(Node):
    """``prejoin_joinatt(N1, N2)`` — denormalizing equi-join (paper §3.5.2)."""

    left: Node
    right: Node
    join_attr: str
    op_name = "prejoin"

    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Node]) -> Node:
        left, right = children
        return replace(self, left=left, right=right)

    def to_text(self) -> str:
        return (
            f"prejoin[{self.join_attr}]"
            f"({self.left.to_text()}, {self.right.to_text()})"
        )


@dataclass(frozen=True)
class Delta(_Unary):
    """``∆(N)`` — delta compression of ordered values (paper §3.5.2).

    With ``fields`` given, each named field is replaced by its difference
    from the previous record (per cell when the input is gridded); without
    fields, the input is treated as a flat list of numbers.
    """

    child: Node
    fields: tuple[str, ...] = ()
    op_name = "delta"

    def to_text(self) -> str:
        if self.fields:
            return f"delta[{', '.join(self.fields)}]({self.child.to_text()})"
        return f"delta({self.child.to_text()})"


@dataclass(frozen=True)
class OrderBy(_Unary):
    """``orderby`` clause as a standalone transform (paper §3.5.3)."""

    child: Node
    keys: tuple[SortKey, ...]
    op_name = "orderby"

    def __post_init__(self):
        if not self.keys:
            raise AlgebraError("orderby requires at least one key")

    def to_text(self) -> str:
        inner = ", ".join(k.to_text() for k in self.keys)
        return f"orderby[{inner}]({self.child.to_text()})"


@dataclass(frozen=True)
class GroupBy(_Unary):
    """``groupby`` clause — regroup records into sub-nestings per key."""

    child: Node
    fields: tuple[str, ...]
    op_name = "groupby"

    def __post_init__(self):
        if not self.fields:
            raise AlgebraError("groupby requires at least one field")

    def to_text(self) -> str:
        return f"groupby[{', '.join(self.fields)}]({self.child.to_text()})"


@dataclass(frozen=True)
class Limit(_Unary):
    """``limit`` clause — keep the first n records."""

    child: Node
    count: int
    op_name = "limit"

    def __post_init__(self):
        if self.count < 0:
            raise AlgebraError("limit must be non-negative")

    def to_text(self) -> str:
        return f"limit[{self.count}]({self.child.to_text()})"


@dataclass(frozen=True)
class ZOrder(_Unary):
    """``zorder(N)`` — rearrange nested elements along a Z-curve
    (paper §3.5.3)."""

    child: Node
    op_name = "zorder"

    def to_text(self) -> str:
        return f"zorder({self.child.to_text()})"


@dataclass(frozen=True)
class HilbertOrder(_Unary):
    """Hilbert-curve ordering — an extension beyond the paper's zorder."""

    child: Node
    op_name = "hilbert"

    def to_text(self) -> str:
        return f"hilbert({self.child.to_text()})"


@dataclass(frozen=True)
class Transpose(_Unary):
    """``transpose(N)`` — matrix transposition (paper §3.6)."""

    child: Node
    op_name = "transpose"

    def to_text(self) -> str:
        return f"transpose({self.child.to_text()})"


@dataclass(frozen=True)
class Grid(_Unary):
    """``grid[A1..An],[stride1..striden](N)`` — repartition records into an
    n-dimensional array of cells (paper §3.6)."""

    child: Node
    dims: tuple[str, ...]
    strides: tuple[float, ...]
    op_name = "grid"

    def __post_init__(self):
        if not self.dims:
            raise AlgebraError("grid requires at least one dimension")
        if len(self.dims) != len(self.strides):
            raise AlgebraError(
                f"grid has {len(self.dims)} dims but {len(self.strides)} strides"
            )
        if any(s <= 0 for s in self.strides):
            raise AlgebraError("grid strides must be positive")

    def to_text(self) -> str:
        dims = ", ".join(self.dims)
        strides = ", ".join(str(s) for s in self.strides)
        return f"grid[{dims}],[{strides}]({self.child.to_text()})"


@dataclass(frozen=True)
class Chunk(_Unary):
    """``chunk[c1,...,ck](N)`` — split an array into fixed-shape chunks
    (paper §3.6, after Sarawagi & Stonebraker)."""

    child: Node
    shape: tuple[int, ...]
    op_name = "chunk"

    def __post_init__(self):
        if not self.shape or any(c < 1 for c in self.shape):
            raise AlgebraError("chunk shape must be positive")

    def to_text(self) -> str:
        return (
            f"chunk[{', '.join(str(c) for c in self.shape)}]"
            f"({self.child.to_text()})"
        )


@dataclass(frozen=True)
class Compress(_Unary):
    """``compress[codec](N)`` — compression via a named codec (paper §3.5.2
    allows arbitrary user-defined compression functions)."""

    child: Node
    codec: str
    fields: tuple[str, ...] = ()
    op_name = "compress"

    def to_text(self) -> str:
        if self.fields:
            return (
                f"compress[{self.codec}; {', '.join(self.fields)}]"
                f"({self.child.to_text()})"
            )
        return f"compress[{self.codec}]({self.child.to_text()})"


@dataclass(frozen=True)
class Rows(_Unary):
    """Explicit row-major representation (the paper's N_r comprehension)."""

    child: Node
    op_name = "rows"

    def to_text(self) -> str:
        return f"rows({self.child.to_text()})"


@dataclass(frozen=True)
class Columns(_Unary):
    """Column decomposition (the paper's N_c comprehension / DSM).

    ``groups`` lists the column groups; the default of one group per field is
    a pure column-store, ``[["a","b"],["c"]]`` co-locates a and b (hybrid
    row/column designs, paper §1 item 1).
    """

    child: Node
    groups: tuple[tuple[str, ...], ...] = ()
    op_name = "columns"

    def to_text(self) -> str:
        if not self.groups:
            return f"columns({self.child.to_text()})"
        inner = ", ".join("[" + ", ".join(g) + "]" for g in self.groups)
        return f"columns[{inner}]({self.child.to_text()})"


@dataclass(frozen=True)
class Mirror(Node):
    """Fractured-mirrors style duplication: store both layouts, let reads
    pick the cheaper one (extension; paper cites Ramamurthy et al.)."""

    left: Node
    right: Node
    op_name = "mirror"

    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Node]) -> Node:
        left, right = children
        return replace(self, left=left, right=right)

    def to_text(self) -> str:
        return f"mirror({self.left.to_text()}, {self.right.to_text()})"


# ---------------------------------------------------------------------------
# Builder helpers (fluent public API)
# ---------------------------------------------------------------------------


def table(name: str) -> TableRef:
    return TableRef(name)


def project(fields: Sequence[str], child: Node) -> Project:
    return Project(child, tuple(fields))


def select(condition: Scalar, child: Node) -> Select:
    return Select(child, condition)


def append(elements: dict[str, Scalar], child: Node) -> Append:
    return Append(child, tuple(elements.items()))


def partition(
    key: Scalar | str,
    child: Node,
    method: str = "value",
    args: Sequence[float] = (),
) -> Partition:
    if isinstance(key, str):
        key = FieldRef(key)
    return Partition(child, key, method, tuple(args))


def levels(
    child: Node,
    k: int = 4,
    ratio: int = 4,
    key: Scalar | str | None = None,
) -> Levels:
    if isinstance(key, str):
        key = FieldRef(key)
    return Levels(child, int(k), int(ratio), key)


def fold(
    nest_fields: Sequence[str], group_fields: Sequence[str], child: Node
) -> Fold:
    return Fold(child, tuple(nest_fields), tuple(group_fields))


def unfold(child: Node) -> Unfold:
    return Unfold(child)


def prejoin(join_attr: str, left: Node, right: Node) -> Prejoin:
    return Prejoin(left, right, join_attr)


def delta(child: Node, fields: Sequence[str] = ()) -> Delta:
    return Delta(child, tuple(fields))


def orderby(keys: Sequence[SortKey | str], child: Node) -> OrderBy:
    normalized = tuple(
        k if isinstance(k, SortKey) else SortKey(k) for k in keys
    )
    return OrderBy(child, normalized)


def groupby(fields: Sequence[str], child: Node) -> GroupBy:
    return GroupBy(child, tuple(fields))


def limit(count: int, child: Node) -> Limit:
    return Limit(child, count)


def zorder(child: Node) -> ZOrder:
    return ZOrder(child)


def hilbert(child: Node) -> HilbertOrder:
    return HilbertOrder(child)


def transpose(child: Node) -> Transpose:
    return Transpose(child)


def grid(
    dims: Sequence[str], strides: Sequence[float], child: Node
) -> Grid:
    return Grid(child, tuple(dims), tuple(float(s) for s in strides))


def chunk(shape: Sequence[int], child: Node) -> Chunk:
    return Chunk(child, tuple(shape))


def compress(codec: str, child: Node, fields: Sequence[str] = ()) -> Compress:
    return Compress(child, codec, tuple(fields))


def rows(child: Node) -> Rows:
    return Rows(child)


def columns(child: Node, groups: Sequence[Sequence[str]] = ()) -> Columns:
    return Columns(child, tuple(tuple(g) for g in groups))


def mirror(left: Node, right: Node) -> Mirror:
    return Mirror(left, right)
