"""List-comprehension evaluator (paper Section 3.3).

The storage algebra defines nestings through list comprehensions::

    e(v) | \\v <- N, C

with generators binding variables to successive elements of existing
nestings, boolean conditions, and SQL-flavoured clauses — ``limit``,
``orderby``, ``groupby``, ``partitionby`` — plus the helper functions
``pos()`` (position of an element in its source nesting) and ``count()``
(number of elements in a nesting).

This module evaluates such comprehensions over in-memory nestings. It is the
*definitional* engine: every transform in :mod:`repro.algebra.transforms` has
an equivalent comprehension, and the test suite checks that the direct
implementations agree with the comprehensions given in the paper.

Environments are plain dicts mapping variable names to bound values;
positions are tracked alongside under ``("pos", var)`` keys so that
``pos(env, var)`` works inside heads, conditions, and clause keys.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import AlgebraError

Env = dict
HeadFn = Callable[[Env], Any]
CondFn = Callable[[Env], bool]
KeyFn = Callable[[Env], Any]
Source = Any  # a nesting, or a callable(env) -> nesting


class Generator:
    """``\\v <- N`` — bind ``var`` to successive elements of ``source``.

    ``source`` may be a concrete nesting or a function of the environment
    (enabling dependent generators such as ``\\r' <- r``).
    """

    __slots__ = ("var", "source")

    def __init__(self, var: str, source: Source):
        if not var:
            raise AlgebraError("generator variable name may not be empty")
        self.var = var
        self.source = source

    def resolve(self, env: Env) -> Sequence[Any]:
        source = self.source(env) if callable(self.source) else self.source
        if not isinstance(source, (list, tuple)):
            raise AlgebraError(
                f"generator \\{self.var} source is not a nesting: {source!r}"
            )
        return source


class Clause:
    """Base class for comprehension clauses applied to the result list."""

    def apply(self, items: list[tuple[Env, Any]]) -> list[tuple[Env, Any]]:
        raise NotImplementedError


class OrderByClause(Clause):
    """``orderby key [ASC|DESC]`` over the bound environments."""

    def __init__(self, key: KeyFn, ascending: bool = True):
        self.key = key
        self.ascending = ascending

    def apply(self, items: list[tuple[Env, Any]]) -> list[tuple[Env, Any]]:
        return sorted(
            items, key=lambda pair: self.key(pair[0]), reverse=not self.ascending
        )


class LimitClause(Clause):
    """``limit n`` — keep the first n results; n may depend on nothing or be
    computed up front (the paper's ``limit count(N) - 1``)."""

    def __init__(self, count: int):
        if count < 0:
            raise AlgebraError("limit must be non-negative")
        self.count = count

    def apply(self, items: list[tuple[Env, Any]]) -> list[tuple[Env, Any]]:
        return items[: self.count]


class GroupByClause(Clause):
    """``groupby key`` — regroup results into sub-nestings sharing a key.

    Groups preserve first-occurrence order, matching the paper's use of
    ``groupby r.ID`` to regroup observations by trajectory.
    """

    def __init__(self, key: KeyFn):
        self.key = key

    def apply(self, items: list[tuple[Env, Any]]) -> list[tuple[Env, Any]]:
        order: list[Any] = []
        groups: dict[Any, list[Any]] = {}
        group_envs: dict[Any, Env] = {}
        for env, value in items:
            k = self.key(env)
            if k not in groups:
                groups[k] = []
                group_envs[k] = env
                order.append(k)
            groups[k].append(value)
        return [(group_envs[k], groups[k]) for k in order]


class PartitionByClause(Clause):
    """``partitionby key stride`` — partition results into sub-nestings by the
    discretized key ``floor(key / stride)`` (the basis of ``grid``)."""

    def __init__(self, key: KeyFn, stride: float | None = None):
        if stride is not None and stride <= 0:
            raise AlgebraError("partitionby stride must be positive")
        self.key = key
        self.stride = stride

    def bucket(self, env: Env) -> Any:
        value = self.key(env)
        if self.stride is None:
            return value
        return int(value // self.stride)

    def apply(self, items: list[tuple[Env, Any]]) -> list[tuple[Env, Any]]:
        order: list[Any] = []
        parts: dict[Any, list[Any]] = {}
        part_envs: dict[Any, Env] = {}
        for env, value in items:
            b = self.bucket(env)
            if b not in parts:
                parts[b] = []
                part_envs[b] = env
                order.append(b)
            parts[b].append(value)
        return [(part_envs[b], parts[b]) for b in order]


class Comprehension:
    """A full comprehension: head | generators, conditions, clauses."""

    def __init__(
        self,
        head: HeadFn,
        generators: Sequence[Generator],
        conditions: Sequence[CondFn] = (),
        clauses: Sequence[Clause] = (),
    ):
        if not generators:
            raise AlgebraError("a comprehension requires at least one generator")
        self.head = head
        self.generators = list(generators)
        self.conditions = list(conditions)
        self.clauses = list(clauses)

    def evaluate(self, env: Env | None = None) -> list:
        """Evaluate to a nesting (a Python list)."""
        base_env: Env = dict(env) if env else {}
        items: list[tuple[Env, Any]] = []
        self._expand(base_env, 0, items)
        for clause in self.clauses:
            items = clause.apply(items)
        return [value for _, value in items]

    def _expand(self, env: Env, depth: int, out: list[tuple[Env, Any]]) -> None:
        if depth == len(self.generators):
            if all(cond(env) for cond in self.conditions):
                out.append((dict(env), self.head(env)))
            return
        gen = self.generators[depth]
        for position, element in enumerate(gen.resolve(env)):
            env[gen.var] = element
            env[("pos", gen.var)] = position
            self._expand(env, depth + 1, out)
        env.pop(gen.var, None)
        env.pop(("pos", gen.var), None)


# -- helper functions (paper §3.3) ------------------------------------------


def pos(env: Env, var: str) -> int:
    """Position of the element bound to ``var`` within its source nesting."""
    try:
        return env[("pos", var)]
    except KeyError:
        raise AlgebraError(f"variable {var!r} is not bound in this scope") from None


def count(nesting: Sequence[Any]) -> int:
    """Number of elements contained in a nesting."""
    if not isinstance(nesting, (list, tuple)):
        raise AlgebraError(f"count() expects a nesting, got {nesting!r}")
    return len(nesting)


def comprehend(
    head: HeadFn,
    generators: Sequence[tuple[str, Source]],
    conditions: Sequence[CondFn] = (),
    clauses: Sequence[Clause] = (),
) -> list:
    """One-shot evaluation convenience wrapper.

    Example — the paper's row-major layout ``N_r``::

        comprehend(
            head=lambda env: [env["r"][0], env["r"][1], env["r"][2]],
            generators=[("r", table_records)],
        )
    """
    comp = Comprehension(
        head=head,
        generators=[Generator(var, src) for var, src in generators],
        conditions=conditions,
        clauses=clauses,
    )
    return comp.evaluate()
