"""The algebra interpreter: expressions -> physical storage plans.

Per the paper's architecture (Figure 1), the interpreter "compiles this
algebra into a physical storage plan (or a plan that transforms the current
representation into the new representation)". Compilation is purely static —
it normalizes the expression, type-checks it against the logical schemas, and
extracts the layout metadata into a :class:`PhysicalPlan`. Rendering the plan
against data is the renderer's job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra import ast, validation
from repro.algebra.physical import (
    LAYOUT_ARRAY,
    LAYOUT_COLUMNS,
    LAYOUT_FOLDED,
    LAYOUT_GRID,
    LAYOUT_LEVELLED,
    LAYOUT_MIRROR,
    LAYOUT_PARTITIONED,
    LAYOUT_ROWS,
    GridSpec,
    LevelSpec,
    PartitionSpec,
    PhysicalPlan,
)
from repro.algebra.rewriter import normalize
from repro.errors import AlgebraError
from repro.types.schema import Schema

_KIND_TO_LAYOUT = {
    validation.KIND_RECORDS: LAYOUT_ROWS,
    validation.KIND_GROUPED: LAYOUT_ROWS,  # groups cluster rows contiguously
    validation.KIND_GRID: LAYOUT_GRID,
    validation.KIND_FOLDED: LAYOUT_FOLDED,
    validation.KIND_COLUMNS: LAYOUT_COLUMNS,
    validation.KIND_NESTING: LAYOUT_ARRAY,
    validation.KIND_MIRROR: LAYOUT_MIRROR,
    validation.KIND_PARTITIONED: LAYOUT_PARTITIONED,
    validation.KIND_LEVELLED: LAYOUT_LEVELLED,
}


class AlgebraInterpreter:
    """Compile storage-algebra expressions against a set of logical schemas.

    Args:
        catalog: table name -> logical schema.
    """

    def __init__(self, catalog: dict[str, Schema]):
        self.catalog = dict(catalog)

    def compile(self, expr: ast.Node | str) -> PhysicalPlan:
        """Normalize, type-check, and translate ``expr`` to a physical plan.

        Accepts either an AST or the paper's textual syntax.
        """
        if isinstance(expr, str):
            from repro.algebra.parser import parse

            expr = parse(expr)
        normalized = normalize(expr)
        for node in normalized.walk():
            if isinstance(node, ast.Partition) and node is not normalized:
                raise AlgebraError(
                    "partition must be the outermost operator: the engine "
                    "renders one region per partition, so nothing can wrap "
                    "the partitioned result"
                )
            if isinstance(node, ast.Levels) and node is not normalized:
                raise AlgebraError(
                    "levels must be the outermost operator: the engine "
                    "renders one region per run, so nothing can wrap the "
                    "levelled result"
                )
        checked = validation.check(normalized, self.catalog)
        return self._plan_from_checked(normalized, checked)

    def _plan_from_checked(
        self, expr: ast.Node, checked: validation.Checked
    ) -> PhysicalPlan:
        layout = _KIND_TO_LAYOUT.get(checked.kind)
        if layout is None:
            raise AlgebraError(f"no physical layout for kind {checked.kind!r}")

        if layout == LAYOUT_PARTITIONED:
            if not isinstance(expr, ast.Partition):
                raise AlgebraError(
                    "partitioned plans require a partition expression"
                )
            inner = self._plan_from_checked(
                expr.child, checked.meta["child"]
            )
            if inner.kind == LAYOUT_ARRAY:
                raise AlgebraError(
                    "partitions require record-shaped regions, not arrays"
                )
            spec = PartitionSpec(
                key=expr.key,
                method=expr.method,
                bounds=expr.args if expr.method == "range" else (),
                buckets=int(expr.args[0]) if expr.method == "hash" else 0,
            )
            # The table-level stored order: each region keeps the inner
            # design's order, and regions concatenate in partition order —
            # globally sorted only when the partitions themselves are
            # ranges of the leading sort key.
            sort_keys = ()
            if (
                spec.method == "range"
                and inner.sort_keys
                and spec.key_field is not None
                and inner.sort_keys[0] == (spec.key_field, True)
            ):
                sort_keys = inner.sort_keys
            return PhysicalPlan(
                expr=expr,
                kind=LAYOUT_PARTITIONED,
                schema=inner.schema,
                sort_keys=tuple(sort_keys),
                partition=spec,
                partition_plans=(inner,),
            )

        if layout == LAYOUT_LEVELLED:
            if not isinstance(expr, ast.Levels):
                raise AlgebraError(
                    "levelled plans require a levels expression"
                )
            inner = self._plan_from_checked(
                expr.child, checked.meta["child"]
            )
            if inner.kind == LAYOUT_ARRAY:
                raise AlgebraError(
                    "levels require record-shaped runs, not arrays"
                )
            spec = LevelSpec(k=expr.k, ratio=expr.ratio, key=expr.key)
            # Runs resolve newest-first at scan time, so no table-level
            # stored order survives the run concatenation.
            return PhysicalPlan(
                expr=expr,
                kind=LAYOUT_LEVELLED,
                schema=inner.schema,
                levels=spec,
                level_plans=(inner,),
            )

        if layout == LAYOUT_MIRROR:
            if not isinstance(expr, ast.Mirror):
                raise AlgebraError("mirror plans require a mirror expression")
            left = self._plan_from_checked(expr.left, checked.meta["left"])
            right = self._plan_from_checked(expr.right, checked.meta["right"])
            return PhysicalPlan(
                expr=expr,
                kind=LAYOUT_MIRROR,
                schema=checked.schema,
                mirror_plans=(left, right),
            )

        if checked.schema is None and layout != LAYOUT_ARRAY:
            raise AlgebraError(
                f"layout {layout} requires a record schema"
            )

        grid_spec = None
        grid_meta = checked.meta.get("grid")
        if grid_meta is not None:
            grid_spec = GridSpec(
                dims=tuple(grid_meta["dims"]),
                strides=tuple(grid_meta["strides"]),
                cell_order=checked.meta.get("cell_order", "rowmajor"),
            )

        codecs: list[tuple[str, str]] = []
        for key, codec in checked.meta.get("codecs", {}).items():
            if key == "*":
                codecs.append(("*", codec))
            else:
                for field_name in key:
                    codecs.append((field_name, codec))

        schema = checked.schema
        if schema is None:
            # Array layouts of raw nestings store untyped leaves; synthesize
            # a single-column schema for cost estimation purposes.
            from repro.types.schema import Field
            from repro.types.types import FLOAT

            schema = Schema([Field("value", FLOAT)])

        return PhysicalPlan(
            expr=expr,
            kind=layout,
            schema=schema,
            column_groups=checked.meta.get("column_groups"),
            grid=grid_spec,
            delta_fields=tuple(checked.meta.get("delta_fields", ())),
            codecs=tuple(codecs),
            sort_keys=tuple(checked.meta.get("sort_keys", ())),
            group_fields=tuple(checked.meta.get("group_fields", ())),
            nest_fields=tuple(checked.meta.get("nest_fields", ())),
        )


@dataclass(frozen=True)
class TransformStep:
    """One step of a representation-change script."""

    action: str  # "materialize" | "swap" | "drop"
    detail: str


def transform_script(
    old_plan: PhysicalPlan | None, new_plan: PhysicalPlan
) -> list[TransformStep]:
    """Plan the transition from ``old_plan`` to ``new_plan``.

    The paper's interpreter can emit "a plan that transforms the current
    representation into the new representation"; this function produces that
    script. Re-rendering is always correct; when the new expression only
    *extends* the old one (same prefix), the script notes that the data is
    already in a compatible order so the renderer can skip re-sorting.
    """
    steps = [
        TransformStep(
            "materialize",
            f"render new layout: {new_plan.describe()}",
        )
    ]
    if old_plan is not None:
        if old_plan.sort_keys and old_plan.sort_keys == new_plan.sort_keys:
            steps.insert(
                0,
                TransformStep(
                    "note",
                    "existing order matches target order; streaming rewrite "
                    "without re-sort",
                ),
            )
        steps.append(
            TransformStep("drop", f"free old layout: {old_plan.describe()}")
        )
    steps.append(TransformStep("swap", "atomically switch catalog entry"))
    return steps
