"""Text syntax for the storage algebra.

Parses the paper's notation into AST nodes, e.g.::

    zorder(grid[y, z](N))
    project[lat, lon](Traces)
    delta[lat, lon](zorder(grid[lat, lon],[0.01, 0.01](Traces)))
    fold[zip, addr; area](T)
    select[r.area = 617 and r.zip > 2000](T)

Grammar (recursive descent)::

    expr      := call | NAME | literal
    call      := NAME params* '(' expr (',' expr)* ')'
    params    := '[' ... ']'               (operator-specific contents)
    literal   := '[' (literal | scalar) (',' ...)* ']'

``parse(text)`` is inverse to ``node.to_text()`` for every operator; the
round-trip property is exercised by the test suite.
"""

from __future__ import annotations

from typing import Any

from repro.algebra import ast
from repro.errors import ParseError

_PUNCT = ("(", ")", "[", "]", ",", ";")
_TWO_CHAR_OPS = ("!=", "<=", ">=")
_ONE_CHAR_OPS = ("=", "<", ">", "+", "-", "*", "/", "%")

_OPERATORS = {
    "project",
    "append",
    "select",
    "partition",
    "levels",
    "fold",
    "unfold",
    "prejoin",
    "delta",
    "orderby",
    "groupby",
    "limit",
    "zorder",
    "hilbert",
    "transpose",
    "grid",
    "chunk",
    "compress",
    "rows",
    "columns",
    "mirror",
}


class _Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: Any, pos: int):
        self.kind = kind  # "name" | "number" | "string" | "punct" | "op" | "eof"
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text[i : i + 2] in _TWO_CHAR_OPS:
            tokens.append(_Token("op", text[i : i + 2], i))
            i += 2
            continue
        if ch in _PUNCT:
            tokens.append(_Token("punct", ch, i))
            i += 1
            continue
        if ch in _ONE_CHAR_OPS:
            # A minus sign directly before a digit at value position is
            # handled in the number branch of the parser, not here.
            tokens.append(_Token("op", ch, i))
            i += 1
            continue
        if ch == "'" or ch == '"':
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 1
            if j >= n:
                raise ParseError("unterminated string literal", i)
            tokens.append(_Token("string", text[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                else:
                    break
            raw = text[i:j]
            value = float(raw) if ("." in raw or "e" in raw or "E" in raw) else int(raw)
            tokens.append(_Token("number", value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_."):
                j += 1
            tokens.append(_Token("name", text[i:j], i))
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(_Token("eof", None, n))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.i]

    def advance(self) -> _Token:
        token = self.tokens[self.i]
        self.i += 1
        return token

    def expect(self, kind: str, value: Any = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value if value is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.value!r}", token.pos
            )
        return self.advance()

    def accept(self, kind: str, value: Any = None) -> _Token | None:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    # -- entry point ----------------------------------------------------------

    def parse(self) -> ast.Node:
        node = self.parse_expr()
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(f"trailing input {token.value!r}", token.pos)
        return node

    def parse_expr(self) -> ast.Node:
        token = self.peek()
        if token.kind == "punct" and token.value == "[":
            return ast.Literal.of(self.parse_literal())
        if token.kind != "name":
            raise ParseError(
                f"expected expression, found {token.value!r}", token.pos
            )
        name = token.value
        if name.lower() in _OPERATORS:
            return self.parse_call(name.lower())
        self.advance()
        return ast.TableRef(name)

    # -- operator calls ---------------------------------------------------

    def parse_call(self, op: str) -> ast.Node:
        self.advance()  # operator name
        handler = getattr(self, f"_call_{op}")
        return handler()

    def _children(self, arity: int) -> list[ast.Node]:
        self.expect("punct", "(")
        children = [self.parse_expr()]
        while self.accept("punct", ","):
            children.append(self.parse_expr())
        self.expect("punct", ")")
        if len(children) != arity:
            raise ParseError(
                f"expected {arity} argument(s), found {len(children)}",
                self.peek().pos,
            )
        return children

    def _name_list(self) -> list[str]:
        names = [self._field_name()]
        while self.accept("punct", ","):
            names.append(self._field_name())
        return names

    def _field_name(self) -> str:
        token = self.expect("name")
        name = token.value
        return name[2:] if name.startswith("r.") else name

    def _number_list(self) -> list[float]:
        numbers = [self._signed_number()]
        while self.accept("punct", ","):
            numbers.append(self._signed_number())
        return numbers

    def _signed_number(self) -> float:
        sign = -1.0 if self.accept("op", "-") else 1.0
        token = self.expect("number")
        return sign * token.value

    # project[a, b](E)
    def _call_project(self) -> ast.Node:
        self.expect("punct", "[")
        fields = self._name_list()
        self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.Project(child, tuple(fields))

    # append[name=expr, ...](E)
    def _call_append(self) -> ast.Node:
        self.expect("punct", "[")
        elements: list[tuple[str, ast.Scalar]] = []
        while True:
            name = self.expect("name").value
            self.expect("op", "=")
            expr = self.parse_condition()
            elements.append((name, expr))
            if not self.accept("punct", ","):
                break
        self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.Append(child, tuple(elements))

    # select[cond](E)
    def _call_select(self) -> ast.Node:
        self.expect("punct", "[")
        condition = self.parse_condition()
        self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.Select(child, condition)

    # partition[expr](E) | partition[expr; range, b1, ...](E)
    # | partition[expr; hash, n](E)
    def _call_partition(self) -> ast.Node:
        self.expect("punct", "[")
        key = self.parse_condition()
        method = "value"
        args: list[float] = []
        if self.accept("punct", ";"):
            method = self.expect("name").value
            while self.accept("punct", ","):
                args.append(self._signed_number())
        self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.Partition(child, key, method, tuple(args))

    # levels[k; ratio](E) | levels[k; ratio; key](E)
    def _call_levels(self) -> ast.Node:
        self.expect("punct", "[")
        k = self.expect("number").value
        self.expect("punct", ";")
        ratio = self.expect("number").value
        if not isinstance(k, int) or not isinstance(ratio, int):
            raise ParseError(
                "levels takes integer k and ratio", self.peek().pos
            )
        key: ast.Scalar | None = None
        if self.accept("punct", ";"):
            key = self.parse_condition()
        self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.Levels(child, k, ratio, key)

    # fold[b1, b2; a1, a2](E)
    def _call_fold(self) -> ast.Node:
        self.expect("punct", "[")
        nest_fields = self._name_list()
        self.expect("punct", ";")
        group_fields = self._name_list()
        self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.Fold(child, tuple(nest_fields), tuple(group_fields))

    def _call_unfold(self) -> ast.Node:
        (child,) = self._children(1)
        return ast.Unfold(child)

    # prejoin[attr](E1, E2)
    def _call_prejoin(self) -> ast.Node:
        self.expect("punct", "[")
        attr = self._field_name()
        self.expect("punct", "]")
        left, right = self._children(2)
        return ast.Prejoin(left, right, attr)

    # delta(E) | delta[f1, f2](E)
    def _call_delta(self) -> ast.Node:
        fields: tuple[str, ...] = ()
        if self.accept("punct", "["):
            fields = tuple(self._name_list())
            self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.Delta(child, fields)

    # orderby[f1 asc, f2 desc](E)
    def _call_orderby(self) -> ast.Node:
        self.expect("punct", "[")
        keys: list[ast.SortKey] = []
        while True:
            name = self._field_name()
            ascending = True
            direction = self.accept("name")
            if direction is not None:
                lowered = direction.value.lower()
                if lowered == "desc":
                    ascending = False
                elif lowered != "asc":
                    raise ParseError(
                        f"expected ASC or DESC, found {direction.value!r}",
                        direction.pos,
                    )
            keys.append(ast.SortKey(name, ascending))
            if not self.accept("punct", ","):
                break
        self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.OrderBy(child, tuple(keys))

    # groupby[f1, f2](E)
    def _call_groupby(self) -> ast.Node:
        self.expect("punct", "[")
        fields = self._name_list()
        self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.GroupBy(child, tuple(fields))

    # limit[n](E)
    def _call_limit(self) -> ast.Node:
        self.expect("punct", "[")
        count = self.expect("number").value
        if not isinstance(count, int):
            raise ParseError("limit requires an integer", self.peek().pos)
        self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.Limit(child, count)

    def _call_zorder(self) -> ast.Node:
        (child,) = self._children(1)
        return ast.ZOrder(child)

    def _call_hilbert(self) -> ast.Node:
        (child,) = self._children(1)
        return ast.HilbertOrder(child)

    def _call_transpose(self) -> ast.Node:
        (child,) = self._children(1)
        return ast.Transpose(child)

    # grid[d1, d2](E) | grid[d1, d2],[s1, s2](E)
    def _call_grid(self) -> ast.Node:
        self.expect("punct", "[")
        dims = self._name_list()
        self.expect("punct", "]")
        strides: list[float]
        if self.accept("punct", ","):
            self.expect("punct", "[")
            strides = self._number_list()
            self.expect("punct", "]")
        else:
            strides = [1.0] * len(dims)
        (child,) = self._children(1)
        return ast.Grid(child, tuple(dims), tuple(float(s) for s in strides))

    # chunk[c1, c2](E)
    def _call_chunk(self) -> ast.Node:
        self.expect("punct", "[")
        shape = self._number_list()
        self.expect("punct", "]")
        if any(not float(c).is_integer() or c < 1 for c in shape):
            raise ParseError("chunk shape must be positive integers")
        (child,) = self._children(1)
        return ast.Chunk(child, tuple(int(c) for c in shape))

    # compress[codec](E) | compress[codec; f1, f2](E)
    def _call_compress(self) -> ast.Node:
        self.expect("punct", "[")
        codec = self.expect("name").value
        fields: tuple[str, ...] = ()
        if self.accept("punct", ";"):
            fields = tuple(self._name_list())
        self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.Compress(child, codec, fields)

    def _call_rows(self) -> ast.Node:
        (child,) = self._children(1)
        return ast.Rows(child)

    # columns(E) | columns[[a, b], [c]](E)
    def _call_columns(self) -> ast.Node:
        groups: list[tuple[str, ...]] = []
        if self.accept("punct", "["):
            while True:
                self.expect("punct", "[")
                groups.append(tuple(self._name_list()))
                self.expect("punct", "]")
                if not self.accept("punct", ","):
                    break
            self.expect("punct", "]")
        (child,) = self._children(1)
        return ast.Columns(child, tuple(groups))

    def _call_mirror(self) -> ast.Node:
        left, right = self._children(2)
        return ast.Mirror(left, right)

    # -- literal nestings ----------------------------------------------------

    def parse_literal(self) -> list:
        self.expect("punct", "[")
        items: list = []
        if not self.accept("punct", "]"):
            while True:
                token = self.peek()
                if token.kind == "punct" and token.value == "[":
                    items.append(self.parse_literal())
                elif token.kind == "number":
                    items.append(self.advance().value)
                elif token.kind == "op" and token.value == "-":
                    items.append(self._signed_number())
                elif token.kind == "string":
                    items.append(self.advance().value)
                elif token.kind == "name" and token.value in ("true", "false"):
                    items.append(self.advance().value == "true")
                else:
                    raise ParseError(
                        f"unexpected literal element {token.value!r}", token.pos
                    )
                if not self.accept("punct", ","):
                    break
            self.expect("punct", "]")
        return items

    # -- conditions ------------------------------------------------------------

    def parse_condition(self) -> ast.Scalar:
        return self._or_expr()

    def _or_expr(self) -> ast.Scalar:
        operands = [self._and_expr()]
        while self.accept("name", "or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return ast.Logical("or", tuple(operands))

    def _and_expr(self) -> ast.Scalar:
        operands = [self._not_expr()]
        while self.accept("name", "and"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return ast.Logical("and", tuple(operands))

    def _not_expr(self) -> ast.Scalar:
        if self.accept("name", "not"):
            return ast.Logical("not", (self._not_expr(),))
        return self._comparison()

    def _comparison(self) -> ast.Scalar:
        left = self._sum()
        token = self.peek()
        if token.kind == "op" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            right = self._sum()
            return ast.Comparison(op, left, right)
        return left

    def _sum(self) -> ast.Scalar:
        node = self._term()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("+", "-"):
                op = self.advance().value
                node = ast.Arith(op, node, self._term())
            else:
                return node

    def _term(self) -> ast.Scalar:
        node = self._factor()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("*", "/", "%"):
                op = self.advance().value
                node = ast.Arith(op, node, self._factor())
            else:
                return node

    def _factor(self) -> ast.Scalar:
        token = self.peek()
        if token.kind == "number":
            return ast.Const(self.advance().value)
        if token.kind == "string":
            return ast.Const(self.advance().value)
        if token.kind == "op" and token.value == "-":
            self.advance()
            inner = self._factor()
            if isinstance(inner, ast.Const) and isinstance(
                inner.value, (int, float)
            ):
                return ast.Const(-inner.value)
            return ast.Arith("-", ast.Const(0), inner)
        if token.kind == "punct" and token.value == "(":
            self.advance()
            node = self._or_expr()
            self.expect("punct", ")")
            return node
        if token.kind == "name":
            name = self.advance().value
            if name == "true":
                return ast.Const(True)
            if name == "false":
                return ast.Const(False)
            if name.startswith("r."):
                return ast.FieldRef(name[2:])
            return ast.FieldRef(name)
        raise ParseError(
            f"expected a value or field, found {token.value!r}", token.pos
        )


def parse(text: str) -> ast.Node:
    """Parse a textual algebra expression into an AST."""
    return _Parser(text).parse()


def parse_condition(text: str) -> ast.Scalar:
    """Parse a bare scalar condition such as ``"r.area = 617"``."""
    parser = _Parser(text)
    node = parser.parse_condition()
    token = parser.peek()
    if token.kind != "eof":
        raise ParseError(f"trailing input {token.value!r}", token.pos)
    return node
