"""Physical storage plans.

A :class:`PhysicalPlan` is the algebra interpreter's output (paper Figure 1:
"Algebra Specification -> Algebra Interpreter -> Physical Design"): a
declarative description of *how* a table's bytes are arranged, with every
piece of metadata the layout renderer and the access methods need — storage
kind, stored schema, column groups, grid geometry, cell ordering, delta
fields, per-field codecs, and sort order.

Plans carry no data and no page ids; rendering a plan against actual records
produces a :class:`repro.layout.renderer.StoredLayout`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.algebra import ast
from repro.types.schema import Schema

# Storage kinds a plan can describe.
LAYOUT_ROWS = "rows"
LAYOUT_COLUMNS = "columns"
LAYOUT_GRID = "grid"
LAYOUT_FOLDED = "folded"
LAYOUT_ARRAY = "array"
LAYOUT_MIRROR = "mirror"


@dataclass(frozen=True)
class GridSpec:
    """Grid geometry of a gridded layout."""

    dims: tuple[str, ...]
    strides: tuple[float, ...]
    cell_order: str = "rowmajor"  # rowmajor | zorder | hilbert

    def describe(self) -> str:
        geometry = ", ".join(
            f"{d}/{s:g}" for d, s in zip(self.dims, self.strides)
        )
        return f"grid({geometry}; {self.cell_order})"


@dataclass(frozen=True)
class PhysicalPlan:
    """A compiled physical design for one table.

    Attributes:
        expr: the (normalized) algebra expression this plan realizes.
        kind: one of the ``LAYOUT_*`` constants.
        schema: schema of the records as stored (after project/append).
        column_groups: vertical partitioning, for ``columns`` layouts.
        grid: grid geometry, for ``grid`` layouts.
        delta_fields: fields stored delta-encoded (values must be
            reconstructed by prefix sums at scan time).
        codecs: field name -> codec name (``"*"`` key = whole record/column
            default).
        sort_keys: (field, ascending) pairs the stored order satisfies.
        group_fields / nest_fields: fold structure, for ``folded`` layouts.
        mirror_plans: the two sub-plans, for ``mirror`` layouts.
    """

    expr: ast.Node
    kind: str
    schema: Schema
    column_groups: tuple[tuple[str, ...], ...] | None = None
    grid: GridSpec | None = None
    delta_fields: tuple[str, ...] = ()
    codecs: tuple[tuple[str, str], ...] = ()  # (field or "*", codec name)
    sort_keys: tuple[tuple[str, bool], ...] = ()
    group_fields: tuple[str, ...] = ()
    nest_fields: tuple[str, ...] = ()
    mirror_plans: tuple["PhysicalPlan", ...] = ()

    def codec_for(self, field_name: str) -> str:
        """Codec assigned to ``field_name`` (field-specific beats ``"*"``)."""
        default = "none"
        for key, codec in self.codecs:
            if key == field_name:
                return codec
            if key == "*":
                default = codec
        return default

    def describe(self) -> str:
        """One-line human-readable summary (used by the catalog and docs)."""
        parts = [self.kind]
        if self.grid is not None:
            parts.append(self.grid.describe())
        if self.column_groups:
            groups = " ".join(
                "(" + ",".join(g) + ")" for g in self.column_groups
            )
            parts.append(f"groups={groups}")
        if self.delta_fields:
            parts.append(f"delta={','.join(self.delta_fields)}")
        if self.codecs:
            rendered = ",".join(
                f"{k if isinstance(k, str) else '+'.join(k)}:{c}"
                for k, c in self.codecs
            )
            parts.append(f"codecs={rendered}")
        if self.sort_keys:
            keys = ",".join(
                f"{name}{'' if asc else ' desc'}" for name, asc in self.sort_keys
            )
            parts.append(f"order={keys}")
        return " ".join(parts)
