"""Physical storage plans.

A :class:`PhysicalPlan` is the algebra interpreter's output (paper Figure 1:
"Algebra Specification -> Algebra Interpreter -> Physical Design"): a
declarative description of *how* a table's bytes are arranged, with every
piece of metadata the layout renderer and the access methods need — storage
kind, stored schema, column groups, grid geometry, cell ordering, delta
fields, per-field codecs, and sort order.

Plans carry no data and no page ids; rendering a plan against actual records
produces a :class:`repro.layout.renderer.StoredLayout`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.algebra import ast
from repro.types.schema import Schema

# Storage kinds a plan can describe.
LAYOUT_ROWS = "rows"
LAYOUT_COLUMNS = "columns"
LAYOUT_GRID = "grid"
LAYOUT_FOLDED = "folded"
LAYOUT_ARRAY = "array"
LAYOUT_MIRROR = "mirror"
LAYOUT_PARTITIONED = "partitioned"
LAYOUT_LEVELLED = "levelled"


@dataclass(frozen=True)
class LevelSpec:
    """Levelled (LSM) storage parameters.

    Attributes:
        k: fan-out — a level holding ``k`` runs merges into one run of
            the next level.
        ratio: size ratio between consecutive levels; a run with ``n``
            rows belongs to the deepest level whose size class
            (``seal_rows * ratio**level``) still covers it.
        key: optional merge key (last-writer-wins upserts); ``None``
            means append-only multiset semantics.
    """

    k: int = 4
    ratio: int = 4
    key: "ast.Scalar | None" = None

    @property
    def key_field(self) -> str | None:
        """The merge key's field name when it is a plain field reference."""
        if isinstance(self.key, ast.FieldRef):
            return self.key.name
        return None

    def level_of(self, rows: int, seal_rows: int) -> int:
        """Size class of a run with ``rows`` rows (level 0 = freshest)."""
        level = 0
        capacity = max(1, seal_rows)
        while rows > capacity and level < 32:
            capacity *= self.ratio
            level += 1
        return level

    def describe(self) -> str:
        keyed = f"; key={self.key.to_text()}" if self.key is not None else ""
        return f"levels(k={self.k}, ratio={self.ratio}{keyed})"


@dataclass(frozen=True)
class PartitionSpec:
    """How a table's records split into horizontal partitions.

    Attributes:
        key: scalar expression evaluated per stored record.
        method: ``"value"`` (one partition per distinct key),
            ``"range"`` (``bounds`` are ascending split points), or
            ``"hash"`` (``buckets`` hash buckets).
        bounds: split points for range partitioning; bucket i covers
            ``[bounds[i-1], bounds[i])`` with open ends at both extremes.
        buckets: bucket count for hash partitioning.
    """

    key: "ast.Scalar"
    method: str = "value"
    bounds: tuple[float, ...] = ()
    buckets: int = 0

    @property
    def key_field(self) -> str | None:
        """The key's field name when it is a plain field reference (the
        case partition-bound pruning can exploit); ``None`` otherwise."""
        if isinstance(self.key, ast.FieldRef):
            return self.key.name
        return None

    def partition_count(self) -> int | None:
        """Number of partitions when fixed a priori (range/hash)."""
        if self.method == "range":
            return len(self.bounds) + 1
        if self.method == "hash":
            return self.buckets
        return None  # value partitions appear as keys are observed

    def describe(self) -> str:
        if self.method == "range":
            points = ", ".join(f"{b:g}" for b in self.bounds)
            return f"partition({self.key.to_text()}; range @ {points})"
        if self.method == "hash":
            return f"partition({self.key.to_text()}; hash x{self.buckets})"
        return f"partition({self.key.to_text()}; by value)"


@dataclass(frozen=True)
class GridSpec:
    """Grid geometry of a gridded layout."""

    dims: tuple[str, ...]
    strides: tuple[float, ...]
    cell_order: str = "rowmajor"  # rowmajor | zorder | hilbert

    def describe(self) -> str:
        geometry = ", ".join(
            f"{d}/{s:g}" for d, s in zip(self.dims, self.strides)
        )
        return f"grid({geometry}; {self.cell_order})"


@dataclass(frozen=True)
class PhysicalPlan:
    """A compiled physical design for one table.

    Attributes:
        expr: the (normalized) algebra expression this plan realizes.
        kind: one of the ``LAYOUT_*`` constants.
        schema: schema of the records as stored (after project/append).
        column_groups: vertical partitioning, for ``columns`` layouts.
        grid: grid geometry, for ``grid`` layouts.
        delta_fields: fields stored delta-encoded (values must be
            reconstructed by prefix sums at scan time).
        codecs: field name -> codec name (``"*"`` key = whole record/column
            default).
        sort_keys: (field, ascending) pairs the stored order satisfies.
        group_fields / nest_fields: fold structure, for ``folded`` layouts.
        mirror_plans: the two sub-plans, for ``mirror`` layouts.
        partition: how records split into partitions, for ``partitioned``
            layouts.
        partition_plans: the per-partition design template, for
            ``partitioned`` layouts (individual partitions may later
            diverge from it through single-partition re-layouts; the
            authoritative per-partition plan lives on the catalog's
            partition regions).
    """

    expr: ast.Node
    kind: str
    schema: Schema
    column_groups: tuple[tuple[str, ...], ...] | None = None
    grid: GridSpec | None = None
    delta_fields: tuple[str, ...] = ()
    codecs: tuple[tuple[str, str], ...] = ()  # (field or "*", codec name)
    sort_keys: tuple[tuple[str, bool], ...] = ()
    group_fields: tuple[str, ...] = ()
    nest_fields: tuple[str, ...] = ()
    mirror_plans: tuple["PhysicalPlan", ...] = ()
    partition: PartitionSpec | None = None
    partition_plans: tuple["PhysicalPlan", ...] = ()
    levels: LevelSpec | None = None
    level_plans: tuple["PhysicalPlan", ...] = ()

    def codec_for(self, field_name: str) -> str:
        """Codec assigned to ``field_name`` (field-specific beats ``"*"``)."""
        default = "none"
        for key, codec in self.codecs:
            if key == field_name:
                return codec
            if key == "*":
                default = codec
        return default

    def describe(self) -> str:
        """One-line human-readable summary (used by the catalog and docs)."""
        parts = [self.kind]
        if self.partition is not None:
            parts.append(self.partition.describe())
            if self.partition_plans:
                parts.append(f"each=[{self.partition_plans[0].describe()}]")
        if self.levels is not None:
            parts.append(self.levels.describe())
            if self.level_plans:
                parts.append(f"run=[{self.level_plans[0].describe()}]")
        if self.grid is not None:
            parts.append(self.grid.describe())
        if self.column_groups:
            groups = " ".join(
                "(" + ",".join(g) + ")" for g in self.column_groups
            )
            parts.append(f"groups={groups}")
        if self.delta_fields:
            parts.append(f"delta={','.join(self.delta_fields)}")
        if self.codecs:
            rendered = ",".join(
                f"{k if isinstance(k, str) else '+'.join(k)}:{c}"
                for k, c in self.codecs
            )
            parts.append(f"codecs={rendered}")
        if self.sort_keys:
            keys = ",".join(
                f"{name}{'' if asc else ' desc'}" for name, asc in self.sort_keys
            )
            parts.append(f"order={keys}")
        return " ".join(parts)
