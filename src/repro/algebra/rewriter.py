"""Algebraic rewrites: normalization and equivalence rules.

The storage algebra is declarative, so many expressions denote the same
physical layout. The rewriter canonicalizes expressions before costing or
rendering them, which both deduplicates the optimizer's search space and
removes no-op work from render plans. Rules (applied bottom-up to fixpoint):

* ``transpose(transpose(X))        -> X``
* ``zorder(zorder(X))              -> zorder(X)``   (idempotent)
* ``rows(rows(X))                  -> rows(X)``
* ``select_C1(select_C2(X))        -> select_{C2 and C1}(X)``
* ``project_A(project_B(X))        -> project_A(X)``   when A ⊆ B
* ``limit_m(limit_n(X))            -> limit_{min(m,n)}(X)``
* ``orderby_K1(orderby_K2(X))      -> orderby_K1(X)``  (outer order wins)
* ``unfold(fold_{B,A}(X))          -> project_{A+B}(X)``
* ``select_C(orderby_K(X))         -> orderby_K(select_C(X))``  (filter early)
* ``select_C(project_A(X))         -> project_A(select_C(X))``  when C only
  reads fields in A (filter before narrowing never reads dropped fields)
"""

from __future__ import annotations

from repro.algebra import ast


def normalize(node: ast.Node, max_passes: int = 20) -> ast.Node:
    """Apply the rewrite rules bottom-up until the expression is stable."""
    current = node
    for _ in range(max_passes):
        rewritten = current.transform_bottom_up(_rewrite_one)
        if rewritten == current:
            return current
        current = rewritten
    return current


def _rewrite_one(node: ast.Node) -> ast.Node:
    if isinstance(node, ast.Transpose) and isinstance(node.child, ast.Transpose):
        return node.child.child
    if isinstance(node, ast.ZOrder) and isinstance(node.child, ast.ZOrder):
        return node.child
    if isinstance(node, ast.HilbertOrder) and isinstance(
        node.child, ast.HilbertOrder
    ):
        return node.child
    if isinstance(node, ast.Rows) and isinstance(node.child, ast.Rows):
        return node.child
    if isinstance(node, ast.Select) and isinstance(node.child, ast.Select):
        merged = ast.conj(node.child.condition, node.condition)
        return ast.Select(node.child.child, merged)
    if isinstance(node, ast.Project) and isinstance(node.child, ast.Project):
        if set(node.fields) <= set(node.child.fields):
            return ast.Project(node.child.child, node.fields)
    if isinstance(node, ast.Limit) and isinstance(node.child, ast.Limit):
        return ast.Limit(node.child.child, min(node.count, node.child.count))
    if isinstance(node, ast.OrderBy) and isinstance(node.child, ast.OrderBy):
        return ast.OrderBy(node.child.child, node.keys)
    if isinstance(node, ast.Unfold) and isinstance(node.child, ast.Fold):
        fold = node.child
        return ast.Project(
            fold.child, tuple(fold.group_fields) + tuple(fold.nest_fields)
        )
    if isinstance(node, ast.Select) and isinstance(node.child, ast.OrderBy):
        inner = ast.Select(node.child.child, node.condition)
        return ast.OrderBy(inner, node.child.keys)
    if isinstance(node, ast.Select) and isinstance(node.child, ast.Project):
        project = node.child
        if node.condition.fields_used() <= set(project.fields):
            inner = ast.Select(project.child, node.condition)
            return ast.Project(inner, project.fields)
    return node


def structurally_equal(a: ast.Node, b: ast.Node) -> bool:
    """Equality after normalization (a cheap equivalence approximation)."""
    return normalize(a) == normalize(b)
