"""Direct implementations of the storage-algebra transforms (paper §3.5-3.6).

Each operator has a pure-Python implementation over in-memory nestings. The
test suite checks these against the *definitional* comprehensions of
:mod:`repro.algebra.comprehension`, mirroring how the paper defines each
transform as a list comprehension.

Evaluation results carry a small amount of structure beyond the raw nesting
(`Evaluated.kind` / `Evaluated.meta`): grid metadata (dims, strides, origin,
cell coordinates) and fold metadata (group/nest field names) are needed both
by downstream transforms (``zorder`` reorders *cells*; ``unfold`` must know
what was folded) and by the physical layout renderer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.algebra import ast
from repro.errors import AlgebraError
from repro.curves.hilbert import hilbert_sort_key
from repro.curves.zorder import zorder_matrix, zorder_sort_key
from repro.types.values import multisort

Record = tuple
Positions = dict


# ---------------------------------------------------------------------------
# Scalar evaluation
# ---------------------------------------------------------------------------


def eval_scalar(expr: ast.Scalar, record: Sequence[Any], positions: Positions) -> Any:
    """Evaluate a scalar expression against one record.

    Args:
        expr: the scalar AST.
        record: the record tuple.
        positions: field name -> tuple position mapping.
    """
    if isinstance(expr, ast.Const):
        return expr.value
    if isinstance(expr, ast.FieldRef):
        try:
            return record[positions[expr.name]]
        except KeyError:
            raise AlgebraError(
                f"unknown field {expr.name!r}; available: {sorted(positions)}"
            ) from None
    if isinstance(expr, ast.Comparison):
        left = eval_scalar(expr.left, record, positions)
        right = eval_scalar(expr.right, record, positions)
        return _COMPARATORS[expr.op](left, right)
    if isinstance(expr, ast.Arith):
        left = eval_scalar(expr.left, record, positions)
        right = eval_scalar(expr.right, record, positions)
        return _ARITHMETIC[expr.op](left, right)
    if isinstance(expr, ast.Logical):
        if expr.op == "not":
            return not eval_scalar(expr.operands[0], record, positions)
        if expr.op == "and":
            return all(
                eval_scalar(op, record, positions) for op in expr.operands
            )
        return any(eval_scalar(op, record, positions) for op in expr.operands)
    raise AlgebraError(f"cannot evaluate scalar expression {expr!r}")


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


# ---------------------------------------------------------------------------
# Evaluation results
# ---------------------------------------------------------------------------

KIND_RECORDS = "records"
KIND_GROUPED = "grouped"
KIND_GRID = "grid"
KIND_FOLDED = "folded"
KIND_COLUMNS = "columns"
KIND_NESTING = "nesting"  # raw literal / matrix results
KIND_MIRROR = "mirror"


@dataclass
class Evaluated:
    """The result of evaluating an algebra expression over nestings.

    Attributes:
        value: the nesting itself (records, cells, columns, or raw lists).
        fields: record field names when the leaves are uniform records.
        kind: one of the ``KIND_*`` constants describing the structure.
        meta: structure-specific metadata (grid geometry, fold fields,
            column groups, compression codecs, delta fields, sort order).
    """

    value: list
    fields: tuple[str, ...] | None = None
    kind: str = KIND_RECORDS
    meta: dict = field(default_factory=dict)

    @property
    def positions(self) -> Positions:
        if self.fields is None:
            raise AlgebraError(f"{self.kind} result has no named fields")
        return {name: i for i, name in enumerate(self.fields)}

    def records(self) -> list:
        """Flat list of records, concatenating groups/cells when needed."""
        if self.kind == KIND_RECORDS:
            return self.value
        if self.kind in (KIND_GROUPED, KIND_GRID):
            flat: list = []
            for group in self.value:
                flat.extend(group)
            return flat
        if self.kind == KIND_MIRROR:
            return self.meta["left"].records()
        raise AlgebraError(
            f"cannot view a {self.kind} result as flat records; "
            "apply unfold/rows first"
        )

    def copy_with(self, **changes: Any) -> "Evaluated":
        merged = {
            "value": self.value,
            "fields": self.fields,
            "kind": self.kind,
            "meta": dict(self.meta),
        }
        merged.update(changes)
        return Evaluated(**merged)


# ---------------------------------------------------------------------------
# Record-level transforms
# ---------------------------------------------------------------------------


def project_records(
    records: Sequence[Record], positions: Positions, fields: Sequence[str]
) -> list[Record]:
    """``project[A...](N) = [[r.Ai, ..., r.Aj] | \\r <- N]``."""
    try:
        idx = [positions[f] for f in fields]
    except KeyError as exc:
        raise AlgebraError(f"unknown field {exc.args[0]!r} in project") from None
    return [tuple(r[i] for i in idx) for r in records]


def select_records(
    records: Sequence[Record], positions: Positions, condition: ast.Scalar
) -> list[Record]:
    """``select_C(N)`` — records satisfying condition C."""
    return [r for r in records if eval_scalar(condition, r, positions)]


def append_records(
    records: Sequence[Record],
    positions: Positions,
    elements: Sequence[tuple[str, ast.Scalar]],
) -> list[Record]:
    """``append([e1,...,em], N)`` — attach computed elements to each tuple."""
    return [
        tuple(r) + tuple(eval_scalar(expr, r, positions) for _, expr in elements)
        for r in records
    ]


def partition_records(
    records: Sequence[Record], positions: Positions, key: ast.Scalar
) -> tuple[list[list[Record]], list[Any]]:
    """``partition_C(N)`` — first-occurrence-ordered horizontal partitions.

    Returns (partitions, partition_keys).
    """
    order: list[Any] = []
    parts: dict[Any, list[Record]] = {}
    for r in records:
        k = eval_scalar(key, r, positions)
        if k not in parts:
            parts[k] = []
            order.append(k)
        parts[k].append(r)
    return [parts[k] for k in order], order


def groupby_records(
    records: Sequence[Record], positions: Positions, fields: Sequence[str]
) -> tuple[list[list[Record]], list[tuple]]:
    """``groupby`` clause — regroup records sharing the key fields."""
    idx = [positions[f] for f in fields]
    order: list[tuple] = []
    groups: dict[tuple, list[Record]] = {}
    for r in records:
        k = tuple(r[i] for i in idx)
        if k not in groups:
            groups[k] = []
            order.append(k)
        groups[k].append(r)
    return [groups[k] for k in order], order


def orderby_records(
    records: Sequence[Record],
    positions: Positions,
    keys: Sequence[ast.SortKey],
) -> list[Record]:
    """``orderby`` — multi-key stable sort with per-key direction."""
    idx = [positions[k.name] for k in keys]
    descending = [not k.ascending for k in keys]
    return multisort(records, idx, descending)


def fold_records(
    records: Sequence[Record],
    positions: Positions,
    nest_fields: Sequence[str],
    group_fields: Sequence[str],
) -> list[Record]:
    """``fold_{B,A}(N) = [r.A, [r'.B | \\r' <- N, r.A = r'.A] | \\r <- N]``.

    Implemented with the hash strategy of paper §4.2 (one pass builds the
    groups) rather than Algorithm 1's nested loops; both are provided — see
    :func:`fold_records_nested_loops` — and produce identical output.
    """
    group_idx = [positions[f] for f in group_fields]
    nest_idx = [positions[f] for f in nest_fields]
    single = len(nest_idx) == 1
    order: list[tuple] = []
    nested: dict[tuple, list] = {}
    for r in records:
        k = tuple(r[i] for i in group_idx)
        if k not in nested:
            nested[k] = []
            order.append(k)
        if single:
            nested[k].append(r[nest_idx[0]])
        else:
            nested[k].append(tuple(r[i] for i in nest_idx))
    return [k + (nested[k],) for k in order]


def fold_records_nested_loops(
    records: Sequence[Record],
    positions: Positions,
    nest_fields: Sequence[str],
    group_fields: Sequence[str],
) -> list[Record]:
    """Algorithm 1 from the paper: fold via nested for loops.

    Quadratic; kept as the reference implementation and exercised by the
    fold-rendering ablation benchmark.
    """
    group_idx = [positions[f] for f in group_fields]
    nest_idx = [positions[f] for f in nest_fields]
    single = len(nest_idx) == 1
    outer_list: list[tuple] = []
    out: list[Record] = []
    for r in records:
        key = tuple(r[i] for i in group_idx)
        if key in outer_list:
            continue
        inner_list: list = []
        for r2 in records:
            if tuple(r2[i] for i in group_idx) == key:
                if single:
                    inner_list.append(r2[nest_idx[0]])
                else:
                    inner_list.append(tuple(r2[i] for i in nest_idx))
        outer_list.append(key)
        out.append(key + (inner_list,))
    return out


def unfold_records(
    folded: Sequence[Record], n_group_fields: int, n_nest_fields: int
) -> list[Record]:
    """Reverse :func:`fold_records`."""
    out: list[Record] = []
    for row in folded:
        key = tuple(row[:n_group_fields])
        nested = row[n_group_fields]
        for item in nested:
            if n_nest_fields == 1:
                out.append(key + (item,))
            else:
                out.append(key + tuple(item))
    return out


def prejoin_records(
    left: Sequence[Record],
    left_positions: Positions,
    right: Sequence[Record],
    right_positions: Positions,
    join_attr: str,
) -> list[Record]:
    """``prejoin_joinatt(N1, N2)`` — denormalizing equi-join.

    Hash join on the shared attribute; output records concatenate the left
    record with the right record (join attribute kept on both sides, as in
    the paper's ``[[r1, r2] | ...]``).
    """
    if join_attr not in left_positions or join_attr not in right_positions:
        raise AlgebraError(
            f"join attribute {join_attr!r} must exist on both inputs"
        )
    right_by_key: dict[Any, list[Record]] = {}
    rp = right_positions[join_attr]
    for r in right:
        right_by_key.setdefault(r[rp], []).append(r)
    lp = left_positions[join_attr]
    out: list[Record] = []
    for l in left:
        for r in right_by_key.get(l[lp], ()):
            out.append(tuple(l) + tuple(r))
    return out


def prejoined_fields(
    left_fields: Sequence[str], right_fields: Sequence[str]
) -> tuple[str, ...]:
    """Output field names for prejoin, suffixing right-side duplicates."""
    taken = set(left_fields)
    renamed: list[str] = []
    for name in right_fields:
        if name in taken:
            candidate = f"{name}_2"
            counter = 2
            while candidate in taken:
                counter += 1
                candidate = f"{name}_{counter}"
            renamed.append(candidate)
            taken.add(candidate)
        else:
            renamed.append(name)
            taken.add(name)
    return tuple(left_fields) + tuple(renamed)


# ---------------------------------------------------------------------------
# Delta compression (paper's ∆)
# ---------------------------------------------------------------------------


def delta_list(values: Sequence[float]) -> list[float]:
    """``∆(N)`` over a flat list: first value absolute, then differences.

    ``∆([3, 5, 6]) == [3, 2, 1]``.
    """
    out: list[float] = []
    prev = 0
    for i, v in enumerate(values):
        out.append(v if i == 0 else v - prev)
        prev = v
    return out


def undelta_list(deltas: Sequence[float]) -> list[float]:
    """Inverse of :func:`delta_list` (prefix sums)."""
    out: list[float] = []
    acc = 0
    for i, d in enumerate(deltas):
        acc = d if i == 0 else acc + d
        out.append(acc)
    return out


def delta_records(
    records: Sequence[Record], positions: Positions, fields: Sequence[str]
) -> list[Record]:
    """Per-field delta encoding across consecutive records."""
    idx = [positions[f] for f in fields]
    out: list[Record] = []
    prev: Record | None = None
    for r in records:
        if prev is None:
            out.append(tuple(r))
        else:
            row = list(r)
            for i in idx:
                row[i] = r[i] - prev[i]
            out.append(tuple(row))
        prev = r
    return out


def undelta_records(
    records: Sequence[Record], positions: Positions, fields: Sequence[str]
) -> list[Record]:
    """Inverse of :func:`delta_records`."""
    idx = [positions[f] for f in fields]
    out: list[Record] = []
    acc: list | None = None
    for r in records:
        if acc is None:
            acc = list(r)
        else:
            acc = list(r)
            prev = out[-1]
            for i in idx:
                acc[i] = prev[i] + r[i]
        out.append(tuple(acc))
    return out


# ---------------------------------------------------------------------------
# Arrays: transpose, grid, chunk
# ---------------------------------------------------------------------------


def transpose_matrix(matrix: Sequence[Sequence[Any]]) -> list[list[Any]]:
    """``transpose(N)`` — [[1,2,3],[4,5,6]] becomes [[1,4],[2,5],[3,6]]."""
    if not matrix:
        return []
    widths = {len(row) for row in matrix}
    if len(widths) != 1:
        raise AlgebraError("transpose requires a rectangular nesting")
    return [list(col) for col in zip(*matrix)]


@dataclass
class GridResult:
    """A gridded nesting: cells plus geometry.

    Attributes:
        cells: list of cells (each a list of records), parallel to ``coords``.
        coords: integer cell coordinates along each dimension.
        dims: the gridded field names.
        strides: cell extent along each dimension.
        origin: minimum attribute value along each dimension.
    """

    cells: list[list[Record]]
    coords: list[tuple[int, ...]]
    dims: tuple[str, ...]
    strides: tuple[float, ...]
    origin: tuple[float, ...]

    def cell_bounds(self, coord: Sequence[int]) -> list[tuple[float, float]]:
        """[lo, hi) attribute bounds of the cell at ``coord``."""
        return [
            (o + c * s, o + (c + 1) * s)
            for o, c, s in zip(self.origin, coord, self.strides)
        ]

    def coord_of(self, record: Record, positions: Positions) -> tuple[int, ...]:
        idx = [positions[d] for d in self.dims]
        return tuple(
            int((record[i] - o) // s)
            for i, o, s in zip(idx, self.origin, self.strides)
        )


def grid_records(
    records: Sequence[Record],
    positions: Positions,
    dims: Sequence[str],
    strides: Sequence[float],
    origin: Sequence[float] | None = None,
) -> GridResult:
    """``grid[A1..An],[s1..sn](N)`` — repartition records into grid cells.

    Cells are produced in row-major coordinate order (the canonical array
    layout); apply ``zorder``/``hilbert`` to reorder them along a curve.
    """
    try:
        idx = [positions[d] for d in dims]
    except KeyError as exc:
        raise AlgebraError(f"unknown grid dimension {exc.args[0]!r}") from None
    strides = tuple(float(s) for s in strides)
    if origin is None:
        if not records:
            origin = tuple(0.0 for _ in dims)
        else:
            origin = tuple(min(r[i] for r in records) for i in idx)
    else:
        origin = tuple(float(o) for o in origin)

    cells: dict[tuple[int, ...], list[Record]] = {}
    for r in records:
        coord = tuple(
            int((r[i] - o) // s) for i, o, s in zip(idx, origin, strides)
        )
        cells.setdefault(coord, []).append(r)
    ordered = sorted(cells)
    return GridResult(
        cells=[cells[c] for c in ordered],
        coords=list(ordered),
        dims=tuple(dims),
        strides=strides,
        origin=origin,
    )


def zorder_grid(grid: GridResult) -> GridResult:
    """Reorder a grid's cells along the Z-curve (paper §3.5.3 / case study N3')."""
    normalized = _normalized_coords(grid.coords)
    order = sorted(
        range(len(grid.coords)),
        key=lambda i: zorder_sort_key(normalized[i]),
    )
    return GridResult(
        cells=[grid.cells[i] for i in order],
        coords=[grid.coords[i] for i in order],
        dims=grid.dims,
        strides=grid.strides,
        origin=grid.origin,
    )


def hilbert_grid(grid: GridResult) -> GridResult:
    """Reorder a 2-D grid's cells along the Hilbert curve (extension)."""
    if len(grid.dims) != 2:
        raise AlgebraError("hilbert ordering requires a 2-D grid")
    normalized = _normalized_coords(grid.coords)
    max_coord = max((max(c) for c in normalized), default=0)
    order_bits = max(max_coord.bit_length(), 1)
    order = sorted(
        range(len(grid.coords)),
        key=lambda i: hilbert_sort_key(normalized[i], order_bits),
    )
    return GridResult(
        cells=[grid.cells[i] for i in order],
        coords=[grid.coords[i] for i in order],
        dims=grid.dims,
        strides=grid.strides,
        origin=grid.origin,
    )


def _normalized_coords(
    coords: Sequence[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """Shift coordinates to be non-negative for curve encoding."""
    if not coords:
        return []
    ndims = len(coords[0])
    mins = [min(c[d] for c in coords) for d in range(ndims)]
    return [tuple(c[d] - mins[d] for d in range(ndims)) for c in coords]


def chunk_nesting(nesting: Sequence[Any], shape: Sequence[int]) -> list:
    """``chunk[c1..ck](N)`` — split an array into fixed-shape chunks.

    For a 1-D shape, splits a flat list into runs; for higher dimensions,
    tiles the array and emits chunks in row-major chunk order, each chunk a
    nested list of the given shape (edge chunks may be smaller).
    """
    if len(shape) == 1:
        size = shape[0]
        return [
            list(nesting[i : i + size]) for i in range(0, len(nesting), size)
        ]
    outer, inner_shape = shape[0], shape[1:]
    row_groups = [
        list(nesting[i : i + outer]) for i in range(0, len(nesting), outer)
    ]
    chunks: list = []
    for group in row_groups:
        # Chunk each row of the group, then zip the rows of corresponding
        # inner chunks together so every output chunk is contiguous.
        per_row = [chunk_nesting(row, inner_shape) for row in group]
        n_inner = max(len(p) for p in per_row) if per_row else 0
        for j in range(n_inner):
            chunks.append([p[j] for p in per_row if j < len(p)])
    return chunks


# ---------------------------------------------------------------------------
# Column decomposition
# ---------------------------------------------------------------------------


def columns_records(
    records: Sequence[Record],
    positions: Positions,
    groups: Sequence[Sequence[str]],
) -> list[list]:
    """``N_c``-style vertical decomposition into column groups.

    Single-field groups produce flat value lists (the paper's
    ``[r.Zip | \\r <- T]``); multi-field groups produce mini-record lists.
    """
    out: list[list] = []
    for group in groups:
        idx = [positions[f] for f in group]
        if len(idx) == 1:
            i = idx[0]
            out.append([r[i] for r in records])
        else:
            out.append([tuple(r[i] for i in idx) for r in records])
    return out


def default_column_groups(fields: Sequence[str]) -> tuple[tuple[str, ...], ...]:
    """Pure DSM: one group per field."""
    return tuple((f,) for f in fields)


# ---------------------------------------------------------------------------
# Expression evaluator
# ---------------------------------------------------------------------------


class Evaluator:
    """Evaluate algebra expressions over in-memory tables.

    Args:
        tables: mapping of table name to ``(records, field_names)``.
    """

    def __init__(self, tables: dict[str, tuple[Sequence[Record], Sequence[str]]]):
        self.tables = {
            name: (list(records), tuple(fields))
            for name, (records, fields) in tables.items()
        }

    def evaluate(self, node: ast.Node) -> Evaluated:
        method = getattr(self, f"_eval_{type(node).__name__.lower()}", None)
        if method is None:
            raise AlgebraError(f"cannot evaluate node {type(node).__name__}")
        return method(node)

    # -- leaves ------------------------------------------------------------

    def _eval_tableref(self, node: ast.TableRef) -> Evaluated:
        try:
            records, fields = self.tables[node.name]
        except KeyError:
            raise AlgebraError(f"unknown table {node.name!r}") from None
        return Evaluated(list(records), fields, KIND_RECORDS)

    def _eval_literal(self, node: ast.Literal) -> Evaluated:
        return Evaluated(node.thaw(), None, KIND_NESTING)

    # -- record transforms ---------------------------------------------------

    def _eval_project(self, node: ast.Project) -> Evaluated:
        child = self.evaluate(node.child)
        if child.kind == KIND_GRID:
            grid: GridResult = child.meta["grid"]
            positions = child.positions
            new_cells = [
                project_records(cell, positions, node.fields)
                for cell in grid.cells
            ]
            new_positions = {f: i for i, f in enumerate(node.fields)}
            new_grid = GridResult(
                new_cells, list(grid.coords), grid.dims, grid.strides, grid.origin
            )
            if any(d not in new_positions for d in grid.dims):
                raise AlgebraError(
                    "projecting away grid dimensions is not supported; "
                    "project before grid instead"
                )
            return child.copy_with(
                value=new_cells,
                fields=tuple(node.fields),
                meta={**child.meta, "grid": new_grid},
            )
        records = child.records()
        projected = project_records(records, child.positions, node.fields)
        return Evaluated(projected, tuple(node.fields), KIND_RECORDS)

    def _eval_select(self, node: ast.Select) -> Evaluated:
        child = self.evaluate(node.child)
        records = child.records()
        kept = select_records(records, child.positions, node.condition)
        return Evaluated(kept, child.fields, KIND_RECORDS)

    def _eval_append(self, node: ast.Append) -> Evaluated:
        child = self.evaluate(node.child)
        records = child.records()
        appended = append_records(records, child.positions, node.elements)
        new_fields = tuple(child.fields) + tuple(n for n, _ in node.elements)
        return Evaluated(appended, new_fields, KIND_RECORDS)

    def _eval_partition(self, node: ast.Partition) -> Evaluated:
        child = self.evaluate(node.child)
        records = child.records()
        parts, keys = partition_records(records, child.positions, node.key)
        return Evaluated(
            parts, child.fields, KIND_GROUPED, {"partition_keys": keys}
        )

    def _eval_groupby(self, node: ast.GroupBy) -> Evaluated:
        child = self.evaluate(node.child)
        records = child.records()
        groups, keys = groupby_records(records, child.positions, node.fields)
        return Evaluated(
            groups,
            child.fields,
            KIND_GROUPED,
            {"group_keys": keys, "group_fields": tuple(node.fields)},
        )

    def _eval_orderby(self, node: ast.OrderBy) -> Evaluated:
        child = self.evaluate(node.child)
        if child.kind == KIND_GROUPED:
            positions = child.positions
            sorted_groups = [
                orderby_records(group, positions, node.keys)
                for group in child.value
            ]
            return child.copy_with(value=sorted_groups)
        records = child.records()
        ordered = orderby_records(records, child.positions, node.keys)
        meta = {"sort_keys": tuple((k.name, k.ascending) for k in node.keys)}
        return Evaluated(ordered, child.fields, KIND_RECORDS, meta)

    def _eval_limit(self, node: ast.Limit) -> Evaluated:
        child = self.evaluate(node.child)
        return child.copy_with(value=child.value[: node.count])

    def _eval_fold(self, node: ast.Fold) -> Evaluated:
        child = self.evaluate(node.child)
        records = child.records()
        folded = fold_records(
            records, child.positions, node.nest_fields, node.group_fields
        )
        fields = tuple(node.group_fields) + ("__folded__",)
        return Evaluated(
            folded,
            fields,
            KIND_FOLDED,
            {
                "group_fields": tuple(node.group_fields),
                "nest_fields": tuple(node.nest_fields),
            },
        )

    def _eval_unfold(self, node: ast.Unfold) -> Evaluated:
        child = self.evaluate(node.child)
        if child.kind != KIND_FOLDED:
            raise AlgebraError("unfold requires a folded input")
        group_fields = child.meta["group_fields"]
        nest_fields = child.meta["nest_fields"]
        records = unfold_records(
            child.value, len(group_fields), len(nest_fields)
        )
        return Evaluated(
            records, tuple(group_fields) + tuple(nest_fields), KIND_RECORDS
        )

    def _eval_prejoin(self, node: ast.Prejoin) -> Evaluated:
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        joined = prejoin_records(
            left.records(),
            left.positions,
            right.records(),
            right.positions,
            node.join_attr,
        )
        fields = prejoined_fields(left.fields, right.fields)
        return Evaluated(joined, fields, KIND_RECORDS)

    def _eval_delta(self, node: ast.Delta) -> Evaluated:
        child = self.evaluate(node.child)
        if not node.fields:
            if child.kind != KIND_NESTING:
                raise AlgebraError(
                    "delta without fields applies to flat value nestings"
                )
            return Evaluated(
                delta_list(child.value), None, KIND_NESTING, {"delta": True}
            )
        positions = child.positions
        if child.kind == KIND_GRID:
            grid: GridResult = child.meta["grid"]
            new_cells = [
                delta_records(cell, positions, node.fields)
                for cell in grid.cells
            ]
            new_grid = GridResult(
                new_cells, list(grid.coords), grid.dims, grid.strides, grid.origin
            )
            meta = {**child.meta, "grid": new_grid,
                    "delta_fields": tuple(node.fields)}
            return child.copy_with(value=new_cells, meta=meta)
        if child.kind == KIND_GROUPED:
            new_groups = [
                delta_records(group, positions, node.fields)
                for group in child.value
            ]
            meta = {**child.meta, "delta_fields": tuple(node.fields)}
            return child.copy_with(value=new_groups, meta=meta)
        records = child.records()
        encoded = delta_records(records, positions, node.fields)
        meta = {**child.meta, "delta_fields": tuple(node.fields)}
        return Evaluated(encoded, child.fields, KIND_RECORDS, meta)

    # -- arrays ------------------------------------------------------------

    def _eval_grid(self, node: ast.Grid) -> Evaluated:
        child = self.evaluate(node.child)
        records = child.records()
        grid = grid_records(records, child.positions, node.dims, node.strides)
        return Evaluated(
            grid.cells,
            child.fields,
            KIND_GRID,
            {**child.meta, "grid": grid, "cell_order": "rowmajor"},
        )

    def _eval_zorder(self, node: ast.ZOrder) -> Evaluated:
        child = self.evaluate(node.child)
        if child.kind == KIND_GRID:
            grid = zorder_grid(child.meta["grid"])
            return child.copy_with(
                value=grid.cells,
                meta={**child.meta, "grid": grid, "cell_order": "zorder"},
            )
        if child.kind in (KIND_NESTING, KIND_GROUPED):
            return Evaluated(
                zorder_matrix(child.value), child.fields, KIND_NESTING
            )
        raise AlgebraError(
            f"zorder applies to grids or two-level nestings, not {child.kind}"
        )

    def _eval_hilbertorder(self, node: ast.HilbertOrder) -> Evaluated:
        child = self.evaluate(node.child)
        if child.kind != KIND_GRID:
            raise AlgebraError("hilbert ordering requires a gridded input")
        grid = hilbert_grid(child.meta["grid"])
        return child.copy_with(
            value=grid.cells,
            meta={**child.meta, "grid": grid, "cell_order": "hilbert"},
        )

    def _eval_transpose(self, node: ast.Transpose) -> Evaluated:
        child = self.evaluate(node.child)
        if child.kind == KIND_NESTING:
            return Evaluated(
                transpose_matrix(child.value), None, KIND_NESTING
            )
        records = child.records()
        return Evaluated(
            transpose_matrix([list(r) for r in records]), None, KIND_NESTING
        )

    def _eval_chunk(self, node: ast.Chunk) -> Evaluated:
        child = self.evaluate(node.child)
        if child.kind == KIND_NESTING:
            source = child.value
        else:
            source = child.records()
        return Evaluated(
            chunk_nesting(source, node.shape),
            child.fields,
            KIND_NESTING,
            {"chunk_shape": node.shape},
        )

    # -- layout markers ---------------------------------------------------

    def _eval_rows(self, node: ast.Rows) -> Evaluated:
        child = self.evaluate(node.child)
        return Evaluated(child.records(), child.fields, KIND_RECORDS)

    def _eval_columns(self, node: ast.Columns) -> Evaluated:
        child = self.evaluate(node.child)
        records = child.records()
        groups = node.groups or default_column_groups(child.fields)
        cols = columns_records(records, child.positions, groups)
        return Evaluated(
            cols,
            child.fields,
            KIND_COLUMNS,
            {**child.meta, "column_groups": groups},
        )

    def _eval_compress(self, node: ast.Compress) -> Evaluated:
        child = self.evaluate(node.child)
        codecs = dict(child.meta.get("codecs", {}))
        key = tuple(node.fields) if node.fields else "*"
        codecs[key] = node.codec
        return child.copy_with(meta={**child.meta, "codecs": codecs})

    def _eval_mirror(self, node: ast.Mirror) -> Evaluated:
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        return Evaluated(
            left.value,
            left.fields,
            KIND_MIRROR,
            {"left": left, "right": right},
        )


def evaluate(
    node: ast.Node,
    tables: dict[str, tuple[Sequence[Record], Sequence[str]]],
) -> Evaluated:
    """Convenience one-shot evaluation of an algebra expression."""
    return Evaluator(tables).evaluate(node)
