"""Static type checking of algebra expressions against logical schemas.

``check(expr, catalog)`` walks an expression bottom-up, verifying that every
field reference resolves, that conditions compare compatible types, that grid
dimensions and delta fields are numeric, and so on — raising
:class:`TypeCheckError` otherwise. It returns a :class:`Checked` summary
(structural kind, output schema, and layout-relevant metadata) that the
interpreter uses to build physical plans without evaluating any data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.algebra import ast
from repro.errors import TypeCheckError
from repro.types.schema import Field, Schema
from repro.types.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    BoolType,
    DataType,
    FloatType,
    IntType,
    ListType,
    NestedType,
    StringType,
)

# Structural kinds, mirroring repro.algebra.transforms.KIND_*.
KIND_RECORDS = "records"
KIND_GROUPED = "grouped"
KIND_GRID = "grid"
KIND_FOLDED = "folded"
KIND_COLUMNS = "columns"
KIND_NESTING = "nesting"
KIND_MIRROR = "mirror"
# Horizontal partitioning: per-partition regions of the child design.
KIND_PARTITIONED = "partitioned"
# Log-structured levelled storage: immutable runs of the child design.
KIND_LEVELLED = "levelled"


@dataclass
class Checked:
    """Result of statically checking an expression.

    Attributes:
        kind: structural kind of the result (records, grid, columns, ...).
        schema: record schema when the result's leaves are uniform records.
        meta: layout metadata accumulated along the way — grid geometry,
            column groups, delta fields, codecs, sort keys, fold fields.
    """

    kind: str
    schema: Schema | None
    meta: dict = field(default_factory=dict)

    def require_schema(self, context: str) -> Schema:
        if self.schema is None:
            raise TypeCheckError(f"{context} requires a record-shaped input")
        return self.schema


def _is_numeric(dtype: DataType) -> bool:
    base = getattr(dtype, "base", dtype)
    return isinstance(base, (IntType, FloatType))


def _is_comparable(a: DataType, b: DataType) -> bool:
    if _is_numeric(a) and _is_numeric(b):
        return True
    base_a = getattr(a, "base", a)
    base_b = getattr(b, "base", b)
    return type(base_a) is type(base_b)


def infer_scalar_type(expr: ast.Scalar, schema: Schema) -> DataType:
    """Infer the type of a scalar expression over ``schema`` records."""
    if isinstance(expr, ast.Const):
        value = expr.value
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return FLOAT
        if isinstance(value, str):
            return STRING
        raise TypeCheckError(f"unsupported constant {value!r}")
    if isinstance(expr, ast.FieldRef):
        if not schema.has_field(expr.name):
            raise TypeCheckError(
                f"unknown field {expr.name!r}; schema has {schema.names()}"
            )
        return schema.field(expr.name).dtype
    if isinstance(expr, ast.Comparison):
        left = infer_scalar_type(expr.left, schema)
        right = infer_scalar_type(expr.right, schema)
        if not _is_comparable(left, right):
            raise TypeCheckError(
                f"cannot compare {left.name} with {right.name} "
                f"in {expr.to_text()}"
            )
        return BOOL
    if isinstance(expr, ast.Arith):
        left = infer_scalar_type(expr.left, schema)
        right = infer_scalar_type(expr.right, schema)
        if not (_is_numeric(left) and _is_numeric(right)):
            raise TypeCheckError(
                f"arithmetic requires numeric operands in {expr.to_text()}"
            )
        if expr.op == "/":
            return FLOAT
        if isinstance(getattr(left, "base", left), FloatType) or isinstance(
            getattr(right, "base", right), FloatType
        ):
            return FLOAT
        return INT
    if isinstance(expr, ast.Logical):
        for operand in expr.operands:
            operand_type = infer_scalar_type(operand, schema)
            if not isinstance(getattr(operand_type, "base", operand_type), BoolType):
                raise TypeCheckError(
                    f"logical operand {operand.to_text()} is not boolean"
                )
        return BOOL
    raise TypeCheckError(f"cannot type scalar expression {expr!r}")


def check(expr: ast.Node, catalog: dict[str, Schema]) -> Checked:
    """Type-check ``expr`` against ``catalog`` (table name -> schema)."""
    return _Checker(catalog).check(expr)


class _Checker:
    def __init__(self, catalog: dict[str, Schema]):
        self.catalog = catalog

    def check(self, node: ast.Node) -> Checked:
        method = getattr(self, f"_check_{type(node).__name__.lower()}", None)
        if method is None:
            raise TypeCheckError(f"cannot check node {type(node).__name__}")
        return method(node)

    # -- leaves ------------------------------------------------------------

    def _check_tableref(self, node: ast.TableRef) -> Checked:
        if node.name not in self.catalog:
            raise TypeCheckError(f"unknown table {node.name!r}")
        return Checked(KIND_RECORDS, self.catalog[node.name])

    def _check_literal(self, node: ast.Literal) -> Checked:
        return Checked(KIND_NESTING, None)

    # -- record transforms ---------------------------------------------------

    def _check_project(self, node: ast.Project) -> Checked:
        child = self.check(node.child)
        schema = child.require_schema("project")
        projected = schema.project(node.fields)  # raises on unknown fields
        if child.kind == KIND_GRID:
            grid_meta = child.meta.get("grid", {})
            missing = [
                d for d in grid_meta.get("dims", ()) if not projected.has_field(d)
            ]
            if missing:
                raise TypeCheckError(
                    f"project would drop grid dimension(s) {missing}; "
                    "project before grid instead"
                )
            return Checked(KIND_GRID, projected, dict(child.meta))
        return Checked(KIND_RECORDS, projected)

    def _check_select(self, node: ast.Select) -> Checked:
        child = self.check(node.child)
        schema = child.require_schema("select")
        condition_type = infer_scalar_type(node.condition, schema)
        if not isinstance(
            getattr(condition_type, "base", condition_type), BoolType
        ):
            raise TypeCheckError(
                f"select condition {node.condition.to_text()} is not boolean"
            )
        return Checked(KIND_RECORDS, schema)

    def _check_append(self, node: ast.Append) -> Checked:
        child = self.check(node.child)
        schema = child.require_schema("append")
        new_fields = []
        for name, expr in node.elements:
            if schema.has_field(name):
                raise TypeCheckError(
                    f"append element {name!r} collides with an existing field"
                )
            new_fields.append(Field(name, infer_scalar_type(expr, schema)))
        return Checked(KIND_RECORDS, schema.append_fields(new_fields))

    def _check_partition(self, node: ast.Partition) -> Checked:
        child = self.check(node.child)
        if child.kind == KIND_PARTITIONED:
            raise TypeCheckError("partitions cannot nest")
        if child.kind == KIND_LEVELLED:
            raise TypeCheckError("partition cannot wrap a levelled design")
        schema = child.require_schema("partition")
        # The key is evaluated on the records a scan of the child design
        # produces; folded designs un-nest, so the key may reference both
        # group and nested fields.
        if child.kind == KIND_FOLDED:
            nest_schema: Schema = child.meta["nest_schema"]
            key_schema = Schema(
                [schema.field(f) for f in child.meta["group_fields"]]
                + list(nest_schema.fields)
            )
        else:
            key_schema = schema
        key_type = infer_scalar_type(node.key, key_schema)
        if node.method == "range" and not _is_numeric(key_type):
            raise TypeCheckError(
                f"range partitioning requires a numeric key, got "
                f"{key_type.name} in {node.key.to_text()}"
            )
        return Checked(KIND_PARTITIONED, schema, {"child": child})

    def _check_levels(self, node: ast.Levels) -> Checked:
        child = self.check(node.child)
        if child.kind in (KIND_LEVELLED, KIND_PARTITIONED, KIND_MIRROR):
            raise TypeCheckError(
                f"levels cannot wrap a {child.kind} design"
            )
        schema = child.require_schema("levels")
        if node.key is not None:
            # The merge key is evaluated on the records a scan of the run
            # design produces (same record shape as partition keys).
            if child.kind == KIND_FOLDED:
                nest_schema: Schema = child.meta["nest_schema"]
                key_schema = Schema(
                    [schema.field(f) for f in child.meta["group_fields"]]
                    + list(nest_schema.fields)
                )
            else:
                key_schema = schema
            infer_scalar_type(node.key, key_schema)
        return Checked(KIND_LEVELLED, schema, {"child": child})

    def _check_groupby(self, node: ast.GroupBy) -> Checked:
        child = self.check(node.child)
        schema = child.require_schema("groupby")
        schema.project(node.fields)
        return Checked(
            KIND_GROUPED, schema, {"group_fields": tuple(node.fields)}
        )

    def _check_orderby(self, node: ast.OrderBy) -> Checked:
        child = self.check(node.child)
        schema = child.require_schema("orderby")
        for key in node.keys:
            if not schema.has_field(key.name):
                raise TypeCheckError(f"unknown orderby field {key.name!r}")
        meta = dict(child.meta)
        if child.kind == KIND_RECORDS:
            meta["sort_keys"] = tuple((k.name, k.ascending) for k in node.keys)
        return Checked(child.kind, schema, meta)

    def _check_limit(self, node: ast.Limit) -> Checked:
        child = self.check(node.child)
        return Checked(child.kind, child.schema, dict(child.meta))

    def _check_fold(self, node: ast.Fold) -> Checked:
        child = self.check(node.child)
        schema = child.require_schema("fold")
        schema.project(node.group_fields)
        nested = schema.project(node.nest_fields)
        if len(node.nest_fields) == 1:
            folded_type: DataType = ListType(nested.fields[0].dtype)
        else:
            folded_type = ListType(
                NestedType(tuple(f.dtype for f in nested.fields))
            )
        out = Schema(
            [schema.field(f) for f in node.group_fields]
            + [Field("__folded__", folded_type)]
        )
        return Checked(
            KIND_FOLDED,
            out,
            {
                "group_fields": tuple(node.group_fields),
                "nest_fields": tuple(node.nest_fields),
                "nest_schema": nested,
            },
        )

    def _check_unfold(self, node: ast.Unfold) -> Checked:
        child = self.check(node.child)
        if child.kind != KIND_FOLDED:
            raise TypeCheckError("unfold requires a folded input")
        schema = child.require_schema("unfold")
        nest_schema: Schema = child.meta["nest_schema"]
        out = Schema(
            [schema.field(f) for f in child.meta["group_fields"]]
            + list(nest_schema.fields)
        )
        return Checked(KIND_RECORDS, out)

    def _check_prejoin(self, node: ast.Prejoin) -> Checked:
        left = self.check(node.left)
        right = self.check(node.right)
        left_schema = left.require_schema("prejoin")
        right_schema = right.require_schema("prejoin")
        for side, schema in (("left", left_schema), ("right", right_schema)):
            if not schema.has_field(node.join_attr):
                raise TypeCheckError(
                    f"prejoin attribute {node.join_attr!r} missing on {side} input"
                )
        from repro.algebra.transforms import prejoined_fields

        names = prejoined_fields(left_schema.names(), right_schema.names())
        types = left_schema.types() + right_schema.types()
        out = Schema([Field(n, t) for n, t in zip(names, types)])
        return Checked(KIND_RECORDS, out)

    def _check_delta(self, node: ast.Delta) -> Checked:
        child = self.check(node.child)
        if not node.fields:
            if child.kind != KIND_NESTING:
                raise TypeCheckError(
                    "delta without fields applies to flat value nestings"
                )
            return Checked(KIND_NESTING, None, {"delta": True})
        schema = child.require_schema("delta")
        for name in node.fields:
            if not schema.has_field(name):
                raise TypeCheckError(f"unknown delta field {name!r}")
            if not _is_numeric(schema.field(name).dtype):
                raise TypeCheckError(
                    f"delta field {name!r} is not numeric "
                    f"({schema.field(name).dtype.name})"
                )
        meta = dict(child.meta)
        meta["delta_fields"] = tuple(node.fields)
        return Checked(child.kind, schema, meta)

    # -- arrays ------------------------------------------------------------

    def _check_grid(self, node: ast.Grid) -> Checked:
        child = self.check(node.child)
        schema = child.require_schema("grid")
        for dim in node.dims:
            if not schema.has_field(dim):
                raise TypeCheckError(f"unknown grid dimension {dim!r}")
            if not _is_numeric(schema.field(dim).dtype):
                raise TypeCheckError(
                    f"grid dimension {dim!r} is not numeric "
                    f"({schema.field(dim).dtype.name})"
                )
        meta = dict(child.meta)
        meta["grid"] = {
            "dims": tuple(node.dims),
            "strides": tuple(node.strides),
        }
        meta["cell_order"] = "rowmajor"
        return Checked(KIND_GRID, schema, meta)

    def _check_zorder(self, node: ast.ZOrder) -> Checked:
        child = self.check(node.child)
        if child.kind == KIND_GRID:
            meta = dict(child.meta)
            meta["cell_order"] = "zorder"
            return Checked(KIND_GRID, child.schema, meta)
        if child.kind in (KIND_NESTING, KIND_GROUPED, KIND_PARTITIONED):
            # zorder over a grouped/partitioned nesting flattens it along
            # the curve into an array. Note the *interpreter* additionally
            # requires partition to be outermost (a partitioned layout
            # renders as separate regions, which nothing can wrap), so
            # this branch only serves direct validation/evaluation users.
            return Checked(KIND_NESTING, None)
        raise TypeCheckError(
            f"zorder applies to grids or two-level nestings, not {child.kind}"
        )

    def _check_hilbertorder(self, node: ast.HilbertOrder) -> Checked:
        child = self.check(node.child)
        if child.kind != KIND_GRID:
            raise TypeCheckError("hilbert ordering requires a gridded input")
        grid_meta = child.meta.get("grid", {})
        if len(grid_meta.get("dims", ())) != 2:
            raise TypeCheckError("hilbert ordering requires a 2-D grid")
        meta = dict(child.meta)
        meta["cell_order"] = "hilbert"
        return Checked(KIND_GRID, child.schema, meta)

    def _check_transpose(self, node: ast.Transpose) -> Checked:
        self.check(node.child)
        return Checked(KIND_NESTING, None)

    def _check_chunk(self, node: ast.Chunk) -> Checked:
        child = self.check(node.child)
        return Checked(
            KIND_NESTING, child.schema, {"chunk_shape": node.shape}
        )

    # -- layout markers ---------------------------------------------------

    def _check_rows(self, node: ast.Rows) -> Checked:
        child = self.check(node.child)
        schema = child.require_schema("rows")
        return Checked(KIND_RECORDS, schema, dict(child.meta))

    def _check_columns(self, node: ast.Columns) -> Checked:
        child = self.check(node.child)
        schema = child.require_schema("columns")
        groups = node.groups or tuple((f,) for f in schema.names())
        seen: set[str] = set()
        for group in groups:
            for name in group:
                if not schema.has_field(name):
                    raise TypeCheckError(f"unknown column-group field {name!r}")
                if name in seen:
                    raise TypeCheckError(
                        f"field {name!r} appears in multiple column groups"
                    )
                seen.add(name)
        meta = dict(child.meta)
        meta["column_groups"] = groups
        return Checked(KIND_COLUMNS, schema, meta)

    def _check_compress(self, node: ast.Compress) -> Checked:
        from repro.compression import codec_names

        child = self.check(node.child)
        if node.codec not in codec_names():
            raise TypeCheckError(
                f"unknown codec {node.codec!r}; available: {sorted(codec_names())}"
            )
        if node.fields:
            schema = child.require_schema("compress")
            nest_fields = set(child.meta.get("nest_fields", ()))
            for name in node.fields:
                if not schema.has_field(name) and name not in nest_fields:
                    raise TypeCheckError(f"unknown compress field {name!r}")
        meta = dict(child.meta)
        codecs = dict(meta.get("codecs", {}))
        codecs[tuple(node.fields) if node.fields else "*"] = node.codec
        meta["codecs"] = codecs
        return Checked(child.kind, child.schema, meta)

    def _check_mirror(self, node: ast.Mirror) -> Checked:
        left = self.check(node.left)
        right = self.check(node.right)
        left_schema = left.require_schema("mirror")
        right.require_schema("mirror")
        return Checked(
            KIND_MIRROR, left_schema, {"left": left, "right": right}
        )
