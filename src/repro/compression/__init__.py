"""Compression codecs pluggable into ``compress[codec](N)`` and the renderer.

Importing this package registers the built-in codecs:

======== ===========================================================
name     scheme
======== ===========================================================
none     plain vector serialization
varint   zigzag + LEB128 (null suppression for small ints)
delta    first value raw, then differences (the paper's ∆, byte level)
rle      run-length encoding
dict     dictionary + bit-packed codes
bitpack  minimal-width bit packing (non-negative ints)
for      frame of reference + bit packing
lz       Lempel-Ziv (zlib)
xor      byte-aligned Gorilla-style XOR for floats
======== ===========================================================
"""

from repro.compression.base import (
    Codec,
    CodecError,
    NoneCodec,
    codec_names,
    get_codec,
    register,
)
from repro.compression.bitpack import (
    BitpackCodec,
    ForCodec,
    pack_uints,
    unpack_uints,
    unpack_uints_bulk,
)
from repro.compression.delta import DeltaCodec
from repro.compression.dictionary import DictionaryCodec
from repro.compression.lz import LzCodec
from repro.compression.rle import RleCodec
from repro.compression.varint import (
    VarintCodec,
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
    zigzag_varint_decode_all,
)
from repro.compression.xor import XorFloatCodec

__all__ = [
    "BitpackCodec",
    "Codec",
    "CodecError",
    "DeltaCodec",
    "DictionaryCodec",
    "ForCodec",
    "LzCodec",
    "NoneCodec",
    "RleCodec",
    "VarintCodec",
    "XorFloatCodec",
    "codec_names",
    "get_codec",
    "pack_uints",
    "register",
    "unpack_uints",
    "unpack_uints_bulk",
    "varint_decode",
    "varint_encode",
    "zigzag_decode",
    "zigzag_encode",
    "zigzag_varint_decode_all",
]
