"""Codec interface and registry.

The paper (§3.5.2) notes that "the storage algebra supports a wide range of
compression schemes by producing nestings through user-defined functions".
Codecs plug into the algebra through ``compress[codec](N)`` and into the
layout renderer, which encodes column chunks / cell columns with the codec
named in the physical plan.

Every codec is value-level and lossless: ``decode(encode(values)) == values``
for any list of values valid for the declared type class.

Codecs expose three read paths:

* :meth:`Codec.decode` — the canonical value-at-a-time implementation;
* :meth:`Codec.decode_all` — the *bulk* fast path used by the batch scan
  pipeline (:meth:`repro.layout.renderer.LayoutRenderer.iter_batches`).
  It must return exactly what ``decode`` returns; built-in codecs override
  it with implementations that decode whole chunks in a few C-level calls
  (``struct.unpack`` of entire vectors, word-at-a-time bit unpacking,
  inlined varint loops) instead of per-value round-trips.
* :meth:`Codec.decode_buffer` — the *vectorized* fast path: for 8-byte
  numeric element types it lands directly in a contiguous typed vector
  (numpy ``ndarray`` when importable, stdlib ``array`` otherwise — see
  :mod:`repro.vector`); for everything else it returns ``decode_all``'s
  plain list. Callers treat both shapes uniformly, so overriding it is
  purely a speed optimization, never a behavior change.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import RodentStoreError
from repro.storage.serializer import VectorSerializer
from repro.types.types import DataType


class CodecError(RodentStoreError):
    """A codec cannot encode/decode the given values."""


class Codec:
    """Base class for value-vector codecs."""

    name: str = "codec"

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes, dtype: DataType) -> list:
        raise NotImplementedError

    def decode_all(self, data: bytes, dtype: DataType) -> list:
        """Bulk-decode an entire chunk (batch scan fast path).

        Equivalent to :meth:`decode` — same bytes in, same list out — but
        subclasses may use vectorized implementations. The default simply
        delegates.
        """
        return self.decode(data, dtype)

    def decode_buffer(self, data: bytes, dtype: DataType):
        """Bulk-decode into a typed vector when the element type allows.

        Returns a contiguous typed vector (``numpy.ndarray`` or stdlib
        ``array``) *or* a plain list — same values as :meth:`decode`
        either way. The default delegates to :meth:`decode_all`;
        subclasses override it to skip python-object materialization
        entirely for numeric chunks.
        """
        return self.decode_all(data, dtype)

    def __repr__(self) -> str:
        return f"<codec {self.name}>"


class NoneCodec(Codec):
    """Identity codec: plain vector serialization."""

    name = "none"

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        return VectorSerializer(dtype).encode(values)

    def decode(self, data: bytes, dtype: DataType) -> list:
        return VectorSerializer(dtype).decode(data)

    def decode_all(self, data: bytes, dtype: DataType) -> list:
        return VectorSerializer(dtype).decode_bulk(data)

    def decode_buffer(self, data: bytes, dtype: DataType):
        return VectorSerializer(dtype).decode_buffer(data)


_REGISTRY: dict[str, Codec] = {}


def register(codec: Codec) -> Codec:
    """Register a codec instance under its ``name``.

    Re-registering a name replaces the previous codec, which lets user code
    override built-ins (the paper's "user-defined functions").
    """
    _REGISTRY[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def codec_names() -> set[str]:
    return set(_REGISTRY)


register(NoneCodec())
