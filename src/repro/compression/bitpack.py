"""Bit-packing and frame-of-reference coding.

``pack_uints`` stores non-negative integers at the minimal fixed bit width;
:class:`ForCodec` (frame of reference) subtracts the minimum first so that
clustered values — e.g. timestamps within one grid cell — pack tightly.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from repro import vector
from repro.compression.base import Codec, CodecError, register
from repro.types.types import DataType, IntType

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")

_NP_WIDTH_DTYPES = {8: "u1", 16: "<u2", 32: "<u4", 64: "<u8"}


def _unpack_uints_ndarray(data: bytes):
    """Byte-aligned widths decoded straight into an int64 ndarray, or None
    when numpy is unavailable or the width needs the bit-twiddling loop."""
    np = vector.numpy_module()
    if np is None or not vector.numpy_enabled() or len(data) < 5:
        return None
    (count,) = _U32.unpack_from(data, 0)
    width = data[4]
    np_dtype = _NP_WIDTH_DTYPES.get(width)
    if np_dtype is None:
        return None
    if len(data) - 5 < count * (width // 8):
        raise CodecError("truncated bit-packed payload")
    codes = np.frombuffer(data, dtype=np_dtype, count=count, offset=5)
    return codes.astype("<i8")


def pack_uints(values: Sequence[int]) -> bytes:
    """Pack non-negative ints at the minimal per-vector fixed bit width."""
    for v in values:
        if v < 0:
            raise CodecError(f"bit packing requires non-negative ints, got {v}")
    width = max((v.bit_length() for v in values), default=0)
    width = max(width, 1)
    out = bytearray(_U32.pack(len(values)))
    out.append(width)
    acc = 0
    bits = 0
    for v in values:
        acc |= v << bits
        bits += width
        while bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            bits -= 8
    if bits:
        out.append(acc & 0xFF)
    return bytes(out)


def unpack_uints(data: bytes) -> list[int]:
    """Invert :func:`pack_uints`."""
    if len(data) < 5:
        raise CodecError("truncated bit-packed vector")
    (count,) = _U32.unpack_from(data, 0)
    width = data[4]
    if width == 0 or width > 64:
        raise CodecError(f"invalid bit width {width}")
    values: list[int] = []
    acc = 0
    bits = 0
    offset = 5
    mask = (1 << width) - 1
    while len(values) < count:
        while bits < width:
            if offset >= len(data):
                raise CodecError("truncated bit-packed payload")
            acc |= data[offset] << bits
            offset += 1
            bits += 8
        values.append(acc & mask)
        acc >>= width
        bits -= width
    return values


def unpack_uints_bulk(data: bytes) -> list[int]:
    """Bulk counterpart of :func:`unpack_uints` (batch scan fast path).

    Consumes the payload 64 bits at a time (one ``struct`` unpack for the
    whole vector) instead of byte-at-a-time, and emits byte-aligned widths
    with a plain slice-free loop. Output is identical to
    :func:`unpack_uints`.
    """
    if len(data) < 5:
        raise CodecError("truncated bit-packed vector")
    (count,) = _U32.unpack_from(data, 0)
    width = data[4]
    if width == 0 or width > 64:
        raise CodecError(f"invalid bit width {width}")
    payload = data[5:]
    if len(payload) * 8 < count * width:
        raise CodecError("truncated bit-packed payload")
    if width == 8:
        return list(payload[:count])
    if width in (16, 32, 64):
        fmt = {16: "H", 32: "I", 64: "Q"}[width]
        return list(struct.unpack_from(f"<{count}{fmt}", payload, 0))
    n_words, tail = divmod(len(payload), 8)
    words = struct.unpack_from(f"<{n_words}Q", payload, 0)
    values: list[int] = []
    append = values.append
    acc = 0
    bits = 0
    mask = (1 << width) - 1
    remaining = count
    for word in words:
        acc |= word << bits
        bits += 64
        while bits >= width and remaining:
            append(acc & mask)
            acc >>= width
            bits -= width
            remaining -= 1
        if not remaining:
            return values
    if tail:
        acc |= int.from_bytes(payload[n_words * 8 :], "little") << bits
        bits += tail * 8
        while bits >= width and remaining:
            append(acc & mask)
            acc >>= width
            bits -= width
            remaining -= 1
    if remaining:
        raise CodecError("truncated bit-packed payload")
    return values


class BitpackCodec(Codec):
    """Minimal-width bit packing of non-negative integer vectors."""

    name = "bitpack"

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        base = getattr(dtype, "base", dtype)
        if not isinstance(base, IntType):
            raise CodecError(
                f"bitpack codec requires an integer type, got {dtype.name}"
            )
        return pack_uints(list(values))

    def decode(self, data: bytes, dtype: DataType) -> list:
        return unpack_uints(data)

    def decode_all(self, data: bytes, dtype: DataType) -> list:
        return unpack_uints_bulk(data)

    def decode_buffer(self, data: bytes, dtype: DataType):
        if vector.typecode_for(dtype) == "q":
            out = _unpack_uints_ndarray(data)
            if out is not None:
                return out
            fallback = vector.from_values(unpack_uints_bulk(data), "q")
            if fallback is not None:
                return fallback
        return unpack_uints_bulk(data)


class ForCodec(Codec):
    """Frame of reference: subtract the vector minimum, then bit-pack."""

    name = "for"

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        base = getattr(dtype, "base", dtype)
        if not isinstance(base, IntType):
            raise CodecError(
                f"for codec requires an integer type, got {dtype.name}"
            )
        reference = min(values) if values else 0
        packed = pack_uints([v - reference for v in values])
        return _I64.pack(reference) + packed

    def decode(self, data: bytes, dtype: DataType) -> list:
        if len(data) < 8:
            raise CodecError("truncated frame-of-reference vector")
        (reference,) = _I64.unpack_from(data, 0)
        return [v + reference for v in unpack_uints(data[8:])]

    def decode_all(self, data: bytes, dtype: DataType) -> list:
        if len(data) < 8:
            raise CodecError("truncated frame-of-reference vector")
        (reference,) = _I64.unpack_from(data, 0)
        if reference == 0:
            return unpack_uints_bulk(data[8:])
        return [v + reference for v in unpack_uints_bulk(data[8:])]

    def decode_buffer(self, data: bytes, dtype: DataType):
        if len(data) < 8:
            raise CodecError("truncated frame-of-reference vector")
        if vector.typecode_for(dtype) == "q":
            (reference,) = _I64.unpack_from(data, 0)
            deltas = _unpack_uints_ndarray(data[8:])
            if deltas is not None:
                return deltas + reference if reference else deltas
            fallback = vector.from_values(self.decode_all(data, dtype), "q")
            if fallback is not None:
                return fallback
        return self.decode_all(data, dtype)


register(BitpackCodec())
register(ForCodec())
