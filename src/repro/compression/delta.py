"""Delta codec: the byte-level counterpart of the paper's ∆ transform.

Stores the first value raw, then successive differences. Integer vectors get
zigzag-varint differences (the common case for timestamps and scaled
coordinates); float vectors store differences as raw doubles (lossless but
size-neutral — combine with ``xor`` or quantize upstream for space savings).
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from repro import vector
from repro.compression.base import Codec, CodecError, register
from repro.compression.varint import (
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
    zigzag_varint_decode_all,
)
from repro.types.types import DataType, FloatType, IntType

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")


class DeltaCodec(Codec):
    """First value absolute, then differences (varint for ints)."""

    name = "delta"

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        base = getattr(dtype, "base", dtype)
        if isinstance(base, IntType):
            return self._encode_ints(values)
        if isinstance(base, FloatType):
            return self._encode_floats(values)
        raise CodecError(f"delta codec requires a numeric type, got {dtype.name}")

    def decode(self, data: bytes, dtype: DataType) -> list:
        base = getattr(dtype, "base", dtype)
        if isinstance(base, IntType):
            return self._decode_ints(data)
        if isinstance(base, FloatType):
            return self._decode_floats(data)
        raise CodecError(f"delta codec requires a numeric type, got {dtype.name}")

    def decode_all(self, data: bytes, dtype: DataType) -> list:
        base = getattr(dtype, "base", dtype)
        if isinstance(base, IntType):
            return self._decode_ints_bulk(data)
        if isinstance(base, FloatType):
            return self._decode_floats_bulk(data)
        raise CodecError(f"delta codec requires a numeric type, got {dtype.name}")

    def decode_buffer(self, data: bytes, dtype: DataType):
        base = getattr(dtype, "base", dtype)
        if isinstance(base, IntType) and vector.typecode_for(dtype) == "q":
            np = vector.numpy_module()
            if np is not None and vector.numpy_enabled():
                count, offset = self._header(data, expected_tag=0)
                diffs = zigzag_varint_decode_all(data, offset, count)
                try:
                    # The running sum at step i is exactly values[i], so a
                    # cumsum never exceeds the original values' range; only
                    # ints wider than 64 bits force the python loop.
                    return np.cumsum(np.array(diffs, dtype="<i8"))
                except OverflowError:
                    return self._decode_ints_bulk(data)
            fallback = vector.from_values(self._decode_ints_bulk(data), "q")
            if fallback is not None:
                return fallback
        elif isinstance(base, FloatType) and vector.typecode_for(dtype) == "d":
            # Raw-vs-diff accumulation must stay sequential for exactness;
            # wrap the decoded list so downstream stays typed.
            fallback = vector.from_values(self._decode_floats_bulk(data), "d")
            if fallback is not None:
                return fallback
        return self.decode_all(data, dtype)

    # -- integers ---------------------------------------------------------

    def _encode_ints(self, values: Sequence[int]) -> bytes:
        out = bytearray(_U32.pack(len(values)))
        out.append(0)  # tag: integer payload
        prev = 0
        for i, v in enumerate(values):
            if not isinstance(v, int):
                raise CodecError(f"delta codec got non-integer {v!r}")
            diff = v if i == 0 else v - prev
            varint_encode(zigzag_encode(diff), out)
            prev = v
        return bytes(out)

    def _decode_ints(self, data: bytes) -> list[int]:
        count, offset = self._header(data, expected_tag=0)
        values: list[int] = []
        acc = 0
        for i in range(count):
            raw, offset = varint_decode(data, offset)
            diff = zigzag_decode(raw)
            acc = diff if i == 0 else acc + diff
            values.append(acc)
        return values

    def _decode_ints_bulk(self, data: bytes) -> list[int]:
        count, offset = self._header(data, expected_tag=0)
        diffs = zigzag_varint_decode_all(data, offset, count)
        acc = 0
        for i, diff in enumerate(diffs):
            acc += diff
            diffs[i] = acc
        return diffs

    # -- floats -----------------------------------------------------------

    def _encode_floats(self, values: Sequence[float]) -> bytes:
        # Float subtraction is not always exactly invertible (prev + diff may
        # round); a per-value bitmap marks values stored raw instead, keeping
        # the codec lossless for every input.
        out = bytearray(_U32.pack(len(values)))
        out.append(1)  # tag: float payload
        bitmap = bytearray((len(values) + 7) // 8)
        payload = bytearray()
        prev = 0.0
        for i, v in enumerate(values):
            v = float(v)
            diff = v - prev
            if i == 0 or prev + diff != v:
                bitmap[i // 8] |= 1 << (i % 8)  # raw value
                payload += _F64.pack(v)
            else:
                payload += _F64.pack(diff)
            prev = v
        return bytes(out + bitmap + payload)

    def _decode_floats(self, data: bytes) -> list[float]:
        count, offset = self._header(data, expected_tag=1)
        bitmap = data[offset : offset + (count + 7) // 8]
        offset += (count + 7) // 8
        values: list[float] = []
        acc = 0.0
        for i in range(count):
            (stored,) = _F64.unpack_from(data, offset)
            offset += 8
            if bitmap[i // 8] & (1 << (i % 8)):
                acc = stored
            else:
                acc = acc + stored
            values.append(acc)
        return values

    def _decode_floats_bulk(self, data: bytes) -> list[float]:
        count, offset = self._header(data, expected_tag=1)
        bitmap = data[offset : offset + (count + 7) // 8]
        offset += (count + 7) // 8
        stored = struct.unpack_from(f"<{count}d", data, offset)
        values: list[float] = []
        append = values.append
        acc = 0.0
        for i, v in enumerate(stored):
            if bitmap[i >> 3] & (1 << (i & 7)):
                acc = v
            else:
                acc = acc + v
            append(acc)
        return values

    @staticmethod
    def _header(data: bytes, expected_tag: int) -> tuple[int, int]:
        if len(data) < 5:
            raise CodecError("truncated delta vector")
        (count,) = _U32.unpack_from(data, 0)
        tag = data[4]
        if tag != expected_tag:
            raise CodecError(
                f"delta payload tag {tag} does not match value type"
            )
        return count, 5


register(DeltaCodec())
