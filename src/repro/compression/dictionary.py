"""Dictionary encoding for low-cardinality columns.

Distinct values are stored once; the column becomes a vector of small codes,
bit-packed to the minimal width.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from repro import vector
from repro.compression.base import Codec, register
from repro.compression.bitpack import (
    _unpack_uints_ndarray,
    pack_uints,
    unpack_uints,
    unpack_uints_bulk,
)
from repro.storage.serializer import VectorSerializer
from repro.types.types import DataType

_U32 = struct.Struct("<I")


class DictionaryCodec(Codec):
    """Codes into a first-occurrence-ordered dictionary, bit-packed."""

    name = "dict"

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        codes: list[int] = []
        mapping: dict[Any, int] = {}
        dictionary: list[Any] = []
        for v in values:
            code = mapping.get(v)
            if code is None:
                code = len(dictionary)
                mapping[v] = code
                dictionary.append(v)
            codes.append(code)
        dict_bytes = VectorSerializer(dtype).encode(dictionary)
        code_bytes = pack_uints(codes)
        return (
            _U32.pack(len(values))
            + _U32.pack(len(dict_bytes))
            + dict_bytes
            + code_bytes
        )

    def decode(self, data: bytes, dtype: DataType) -> list:
        (total,) = _U32.unpack_from(data, 0)
        (dict_len,) = _U32.unpack_from(data, 4)
        dictionary = VectorSerializer(dtype).decode(data[8 : 8 + dict_len])
        codes = unpack_uints(data[8 + dict_len :])
        return [dictionary[c] for c in codes[:total]]

    def decode_all(self, data: bytes, dtype: DataType) -> list:
        (total,) = _U32.unpack_from(data, 0)
        (dict_len,) = _U32.unpack_from(data, 4)
        dictionary = VectorSerializer(dtype).decode_bulk(
            data[8 : 8 + dict_len]
        )
        codes = unpack_uints_bulk(data[8 + dict_len :])
        del codes[total:]
        return list(map(dictionary.__getitem__, codes))

    def decode_buffer(self, data: bytes, dtype: DataType):
        code = vector.typecode_for(dtype)
        np = vector.numpy_module()
        if code is not None and np is not None and vector.numpy_enabled():
            (total,) = _U32.unpack_from(data, 0)
            (dict_len,) = _U32.unpack_from(data, 4)
            codes = _unpack_uints_ndarray(data[8 + dict_len :])
            if codes is not None:
                dictionary = VectorSerializer(dtype).decode_buffer(
                    data[8 : 8 + dict_len]
                )
                return np.asarray(dictionary)[codes[:total]]
        if code is not None:
            out = vector.from_values(self.decode_all(data, dtype), code)
            if out is not None:
                return out
        return self.decode_all(data, dtype)


register(DictionaryCodec())
