"""Lempel-Ziv codec (zlib-backed).

The paper (§5) cites Abadi et al.: "even heavyweight schemes like Lempel-Ziv
offer greater time savings as a result of reduced I/O than they cost in terms
of increased decompression time" — this codec lets the benchmarks test that
trade-off.
"""

from __future__ import annotations

import zlib
from typing import Any, Sequence

from repro.compression.base import Codec, register
from repro.storage.serializer import VectorSerializer
from repro.types.types import DataType


class LzCodec(Codec):
    """zlib over the plain vector serialization."""

    name = "lz"

    def __init__(self, level: int = 6):
        self.level = level

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        raw = VectorSerializer(dtype).encode(values)
        return zlib.compress(raw, self.level)

    def decode(self, data: bytes, dtype: DataType) -> list:
        raw = zlib.decompress(data)
        return VectorSerializer(dtype).decode(raw)

    def decode_all(self, data: bytes, dtype: DataType) -> list:
        raw = zlib.decompress(data)
        return VectorSerializer(dtype).decode_bulk(raw)


register(LzCodec())
