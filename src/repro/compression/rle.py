"""Run-length encoding.

Best for sorted or low-cardinality columns — e.g. the area-code column after
the paper's ``fold`` example, or the year column after ``grid[y, z]``.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from repro import vector
from repro.compression.base import Codec, register
from repro.storage.serializer import VectorSerializer
from repro.types.types import DataType

_U32 = struct.Struct("<I")


class RleCodec(Codec):
    """(run length, value) pairs; values serialized via VectorSerializer."""

    name = "rle"

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        runs: list[int] = []
        distinct: list[Any] = []
        for v in values:
            if distinct and distinct[-1] == v and type(distinct[-1]) is type(v):
                runs[-1] += 1
            else:
                distinct.append(v)
                runs.append(1)
        header = _U32.pack(len(values)) + _U32.pack(len(runs))
        run_bytes = b"".join(_U32.pack(r) for r in runs)
        value_bytes = VectorSerializer(dtype).encode(distinct)
        return header + run_bytes + value_bytes

    def decode(self, data: bytes, dtype: DataType) -> list:
        (total,) = _U32.unpack_from(data, 0)
        (n_runs,) = _U32.unpack_from(data, 4)
        offset = 8
        runs = [
            _U32.unpack_from(data, offset + 4 * i)[0] for i in range(n_runs)
        ]
        offset += 4 * n_runs
        distinct = VectorSerializer(dtype).decode(data[offset:])
        values: list[Any] = []
        for run, value in zip(runs, distinct):
            values.extend([value] * run)
        return values

    def decode_all(self, data: bytes, dtype: DataType) -> list:
        (n_runs,) = _U32.unpack_from(data, 4)
        runs = struct.unpack_from(f"<{n_runs}I", data, 8)
        distinct = VectorSerializer(dtype).decode_bulk(data[8 + 4 * n_runs :])
        values: list[Any] = []
        extend = values.extend
        for run, value in zip(runs, distinct):
            extend((value,) * run)
        return values

    def decode_buffer(self, data: bytes, dtype: DataType):
        np = vector.numpy_module()
        code = vector.typecode_for(dtype)
        if np is not None and vector.numpy_enabled() and code is not None:
            (n_runs,) = _U32.unpack_from(data, 4)
            runs = np.frombuffer(data, dtype="<u4", count=n_runs, offset=8)
            distinct = VectorSerializer(dtype).decode_buffer(
                data[8 + 4 * n_runs :]
            )
            return np.repeat(np.asarray(distinct), runs)
        if code is not None:
            out = vector.from_values(self.decode_all(data, dtype), code)
            if out is not None:
                return out
        return self.decode_all(data, dtype)


register(RleCodec())
