"""Zigzag + varint integer coding (a.k.a. null suppression).

Small magnitudes — such as the deltas produced by the paper's ∆ transform
over GPS microdegrees — encode to one or two bytes instead of eight, which is
what makes the "zcurve + delta" layout (Figure 2, N4) smaller than the plain
grid layout.
"""

from __future__ import annotations

from typing import Any, Sequence

import struct

from repro.compression.base import Codec, CodecError, register
from repro.types.types import DataType, FloatType, IntType

_U32 = struct.Struct("<I")


def zigzag_encode(value: int) -> int:
    """Map signed to unsigned so small magnitudes stay small: 0,-1,1,-2,..."""
    return (value << 1) ^ (value >> 63) if value >= -(2**63) else 0


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def varint_encode(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise CodecError("varint encodes non-negative integers")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def varint_decode(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one varint at ``offset``; returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def zigzag_varint_decode_all(
    data: bytes, offset: int, count: int
) -> list[int]:
    """Decode ``count`` zigzag varints starting at ``offset`` in one pass.

    Bulk counterpart of ``zigzag_decode(varint_decode(...))``: the LEB128 and
    zigzag steps are inlined into a single loop over local variables, which
    is what makes the batch scan pipeline's chunk decode cheap.
    """
    values: list[int] = []
    append = values.append
    size = len(data)
    for _ in range(count):
        result = 0
        shift = 0
        while True:
            if offset >= size:
                raise CodecError("truncated varint")
            byte = data[offset]
            offset += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")
        append((result >> 1) ^ -(result & 1))
    return values


class VarintCodec(Codec):
    """Zigzag-varint coding of signed integer vectors."""

    name = "varint"

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        base = getattr(dtype, "base", dtype)
        if not isinstance(base, IntType):
            raise CodecError(
                f"varint codec requires an integer type, got {dtype.name}"
            )
        out = bytearray(_U32.pack(len(values)))
        for v in values:
            if not isinstance(v, int):
                raise CodecError(f"varint codec got non-integer {v!r}")
            varint_encode(zigzag_encode(v), out)
        return bytes(out)

    def decode(self, data: bytes, dtype: DataType) -> list:
        if len(data) < 4:
            raise CodecError("truncated varint vector")
        (count,) = _U32.unpack_from(data, 0)
        offset = 4
        values: list[int] = []
        for _ in range(count):
            raw, offset = varint_decode(data, offset)
            values.append(zigzag_decode(raw))
        return values

    def decode_all(self, data: bytes, dtype: DataType) -> list:
        if len(data) < 4:
            raise CodecError("truncated varint vector")
        (count,) = _U32.unpack_from(data, 0)
        return zigzag_varint_decode_all(data, 4, count)


register(VarintCodec())
