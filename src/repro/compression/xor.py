"""Byte-aligned XOR float compression (Gorilla-style, simplified).

Successive floats in smooth series (sensor readings, GPS coordinates) share
sign, exponent, and high mantissa bits; XOR-ing each value with its
predecessor yields mostly-zero bitstrings. This codec stores, per value, one
length byte plus only the significant low-order bytes of the XOR — lossless,
and typically 3-5 bytes per value instead of 8 on trajectory data.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from repro import vector
from repro.compression.base import Codec, CodecError, register
from repro.types.types import DataType, FloatType

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")


class XorFloatCodec(Codec):
    """XOR with the previous value, drop leading zero bytes."""

    name = "xor"

    def encode(self, values: Sequence[Any], dtype: DataType) -> bytes:
        base = getattr(dtype, "base", dtype)
        if not isinstance(base, FloatType):
            raise CodecError(
                f"xor codec requires a float type, got {dtype.name}"
            )
        out = bytearray(_U32.pack(len(values)))
        prev_bits = 0
        for v in values:
            (bits,) = _U64.unpack(_F64.pack(float(v)))
            xored = bits ^ prev_bits
            payload = xored.to_bytes(8, "little").rstrip(b"\x00")
            out.append(len(payload))
            out += payload
            prev_bits = bits
        return bytes(out)

    def decode(self, data: bytes, dtype: DataType) -> list:
        if len(data) < 4:
            raise CodecError("truncated xor vector")
        (count,) = _U32.unpack_from(data, 0)
        offset = 4
        values: list[float] = []
        prev_bits = 0
        for _ in range(count):
            if offset >= len(data):
                raise CodecError("truncated xor payload")
            length = data[offset]
            offset += 1
            if length > 8 or offset + length > len(data):
                raise CodecError("corrupt xor payload")
            xored = int.from_bytes(data[offset : offset + length], "little")
            offset += length
            bits = xored ^ prev_bits
            (value,) = _F64.unpack(_U64.pack(bits))
            values.append(value)
            prev_bits = bits
        return values

    def decode_all(self, data: bytes, dtype: DataType) -> list:
        """Bulk decode: one tight loop with locals, ``struct`` calls hoisted."""
        if len(data) < 4:
            raise CodecError("truncated xor vector")
        (count,) = _U32.unpack_from(data, 0)
        offset = 4
        size = len(data)
        from_bytes = int.from_bytes
        unpack_f64 = _F64.unpack
        pack_u64 = _U64.pack
        values: list[float] = []
        append = values.append
        prev_bits = 0
        for _ in range(count):
            if offset >= size:
                raise CodecError("truncated xor payload")
            length = data[offset]
            offset += 1
            if length > 8 or offset + length > size:
                raise CodecError("corrupt xor payload")
            prev_bits ^= from_bytes(data[offset : offset + length], "little")
            offset += length
            append(unpack_f64(pack_u64(prev_bits))[0])
        return values

    def decode_buffer(self, data: bytes, dtype: DataType):
        # Variable-length records force the sequential decode; wrap the
        # result so downstream reductions still see a typed vector.
        values = self.decode_all(data, dtype)
        if vector.typecode_for(dtype) == "d":
            out = vector.from_values(values, "d")
            if out is not None:
                return out
        return values


register(XorFloatCodec())
