"""Space-filling curves: Z-order (Morton) and Hilbert."""

from repro.curves.hilbert import hilbert_d2xy, hilbert_sort_key, hilbert_xy2d
from repro.curves.zorder import (
    deinterleave_bits,
    interleave_bits,
    morton_decode,
    morton_encode,
    zorder_matrix,
    zorder_positions,
    zorder_range_covers,
    zorder_sort_key,
)

__all__ = [
    "deinterleave_bits",
    "hilbert_d2xy",
    "hilbert_sort_key",
    "hilbert_xy2d",
    "interleave_bits",
    "morton_decode",
    "morton_encode",
    "zorder_matrix",
    "zorder_positions",
    "zorder_range_covers",
    "zorder_sort_key",
]
