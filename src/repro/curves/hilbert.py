"""Hilbert-curve ordering (extension beyond the paper's ``zorder``).

The paper lists "expressing unusual orderings (like z-order)" as a goal; the
Hilbert curve is the natural next ordering to support because it improves on
Z-order's locality (no long diagonal jumps). Implemented for two dimensions
with the classic rotate-and-reflect iteration (Hilbert 1891 / Warren, Hacker's
Delight §16).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AlgebraError


def hilbert_d2xy(order: int, d: int) -> tuple[int, int]:
    """Map a distance ``d`` along the curve to (x, y) on a 2^order grid."""
    if order < 1:
        raise AlgebraError("Hilbert order must be >= 1")
    n = 1 << order
    if not 0 <= d < n * n:
        raise AlgebraError(f"distance {d} outside curve of order {order}")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_xy2d(order: int, x: int, y: int) -> int:
    """Map grid coordinates (x, y) to distance along the Hilbert curve."""
    if order < 1:
        raise AlgebraError("Hilbert order must be >= 1")
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise AlgebraError(f"({x}, {y}) outside 2^{order} grid")
    d = 0
    s = n // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s //= 2
    return d


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def hilbert_sort_key(coords: Sequence[int], order: int | None = None) -> int:
    """Sort key placing 2-D cells along the Hilbert curve.

    Args:
        coords: (x, y) cell coordinates.
        order: curve order; derived from the largest coordinate when omitted.
    """
    if len(coords) != 2:
        raise AlgebraError(
            f"Hilbert ordering supports 2 dimensions, got {len(coords)}"
        )
    x, y = coords
    if order is None:
        order = max(max(x, y).bit_length(), 1)
    return hilbert_xy2d(order, x, y)
