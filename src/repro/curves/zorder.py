"""Z-order (Morton) encoding and traversal.

The paper (§3.5.3) defines ``zorder(N)`` by reordering elements according to
``interleave(bin(pos(r)), bin(pos(r')))`` — interleaving the bits of the
binary representations of element positions. This module provides the bit
machinery for arbitrary dimensionality plus helpers to traverse matrices and
cell grids in Z-order.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import AlgebraError


def interleave_bits(coords: Sequence[int], bits: int | None = None) -> int:
    """Interleave the bits of non-negative ``coords`` into one Morton code.

    With ``coords = (x, y)``, bit i of x lands at position ``i * ndims`` and
    bit i of y at ``i * ndims + 1`` — the first coordinate owns the least
    significant interleaved bit, matching the paper's
    ``interleave(A, B) = [a, b | [a, b] <- [A, B]]``.

    Args:
        coords: one non-negative integer per dimension.
        bits: bits per coordinate; derived from the largest coordinate when
            omitted.
    """
    if not coords:
        raise AlgebraError("interleave requires at least one coordinate")
    for c in coords:
        if c < 0:
            raise AlgebraError(f"coordinates must be non-negative, got {c}")
    if bits is None:
        bits = max(max(c.bit_length() for c in coords), 1)
    ndims = len(coords)
    code = 0
    for i in range(bits):
        for d, c in enumerate(coords):
            if (c >> i) & 1:
                code |= 1 << (i * ndims + d)
    return code


def deinterleave_bits(code: int, ndims: int) -> tuple[int, ...]:
    """Invert :func:`interleave_bits` for ``ndims`` dimensions."""
    if ndims < 1:
        raise AlgebraError("ndims must be at least 1")
    if code < 0:
        raise AlgebraError("Morton codes are non-negative")
    coords = [0] * ndims
    bit = 0
    while code >> (bit * ndims):
        for d in range(ndims):
            if (code >> (bit * ndims + d)) & 1:
                coords[d] |= 1 << bit
        bit += 1
    return tuple(coords)


morton_encode = interleave_bits
morton_decode = deinterleave_bits


def zorder_sort_key(coords: Sequence[int]) -> int:
    """Sort key placing cells along the Z-curve.

    Follows the paper's ``interleave(bin(pos(r)), bin(pos(r')))``: the
    *first* coordinate contributes the more significant bit of each
    interleaved pair, so a matrix is traversed (0,0), (0,1), (1,0), (1,1).
    """
    return interleave_bits(tuple(reversed(tuple(coords))))


def zorder_matrix(matrix: Sequence[Sequence[Any]]) -> list:
    """Flatten a (possibly ragged) matrix along the Z-curve.

    Implements the paper's ``zorder(N)`` for a two-level nesting: elements are
    ordered by the interleaved bits of their (row, column) positions.
    """
    indexed: list[tuple[int, Any]] = []
    for i, row in enumerate(matrix):
        if not isinstance(row, (list, tuple)):
            raise AlgebraError(
                "zorder expects a two-level nesting; "
                f"row {i} is a scalar: {row!r}"
            )
        for j, value in enumerate(row):
            indexed.append((zorder_sort_key((i, j)), value))
    indexed.sort(key=lambda pair: pair[0])
    return [value for _, value in indexed]


def zorder_positions(shape: Sequence[int]) -> list[tuple[int, ...]]:
    """All coordinates of a dense grid of ``shape``, in Z-order."""
    if not shape or any(s < 0 for s in shape):
        raise AlgebraError(f"invalid shape {shape!r}")
    coords: list[tuple[int, ...]] = [()]
    for extent in shape:
        coords = [c + (i,) for c in coords for i in range(extent)]
    coords.sort(key=zorder_sort_key)
    return coords


def zorder_range_covers(
    lo: Sequence[int], hi: Sequence[int]
) -> list[tuple[int, ...]]:
    """Coordinates inside the inclusive box [lo, hi], in Z-order.

    Used by the grid directory to fetch the cells overlapping a query
    rectangle in the same order they were laid out on disk, minimizing
    backward seeks.
    """
    if len(lo) != len(hi):
        raise AlgebraError("lo and hi must have equal dimensionality")
    coords: list[tuple[int, ...]] = [()]
    for a, b in zip(lo, hi):
        if a > b:
            return []
        coords = [c + (i,) for c in coords for i in range(a, b + 1)]
    coords.sort(key=zorder_sort_key)
    return coords
