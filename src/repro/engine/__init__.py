"""Engine: catalog, cost model, statistics, tables, and the RodentStore."""

from repro.engine.catalog import Catalog, CatalogEntry
from repro.engine.cost import CostEstimate, CostModel, estimate
from repro.engine.database import RodentStore
from repro.engine.adaptive import AdaptiveController
from repro.engine.indexes import (
    FieldIndex,
    SpatialIndex,
    build_field_index,
    build_spatial_index,
)
from repro.engine.persistence import load_catalog, save_catalog
from repro.engine.stats import FieldStats, TableStats
from repro.engine.table import Table, normalize_order, record_pipeline

__all__ = [
    "AdaptiveController",
    "Catalog",
    "CatalogEntry",
    "CostEstimate",
    "CostModel",
    "FieldIndex",
    "FieldStats",
    "RodentStore",
    "SpatialIndex",
    "Table",
    "TableStats",
    "build_field_index",
    "build_spatial_index",
    "estimate",
    "load_catalog",
    "normalize_order",
    "record_pipeline",
    "save_catalog",
]
