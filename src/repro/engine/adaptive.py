"""The closed adaptive loop: monitor → advise → reorganize (paper §5).

The paper's optimizer "takes as input a relational schema and a workload of
SQL queries and outputs a recommended storage representation"; offline, a
designer feeds it a hand-written :class:`~repro.optimizer.workload.Workload`.
This module closes the loop *online*: every access-method call is observed
by a per-table :class:`~repro.optimizer.monitor.WorkloadMonitor`, and the
:class:`AdaptiveController` periodically (every ``check_interval`` observed
scans, or on :meth:`RodentStore.adapt`) re-runs the advisor against fresh
statistics, compares the incumbent design's predicted cost with the
recommendation under a **hysteresis margin**, charges the one-time
reorganization cost against the amortized benefit, and — when the switch
clearly pays — drives the :class:`ReorganizationManager` under the table's
configured policy (eager / new-data-only / lazy).

Safety properties:

* a re-layout goes through :meth:`RodentStore.relayout` → ``load``, which
  re-renders zone-map synopses for the new layout and clears secondary /
  spatial indexes, so pruning and access-path choice can never consult
  metadata describing the old physical design;
* a re-layout is one transaction (``store.mutate``): it renders the new
  representation copy-on-write, swaps it in atomically at commit, and —
  on a durable store — WAL-logs it, so a crash mid-adaptation rolls back
  to the old design and in-flight scans keep their MVCC snapshot of it;
* **lossy designs are never auto-adopted**: a recommendation that projects
  logical fields away would make future re-layouts (and the next adaptation)
  unable to re-derive the base records, so the controller falls back to the
  best non-lossy alternative;
* internal scans (statistics refresh, record recovery during a rewrite,
  compaction) run with observation *paused* so the loop cannot feed on its
  own maintenance traffic or recurse.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.algebra import ast
from repro.algebra.interpreter import AlgebraInterpreter
from repro.algebra.physical import LAYOUT_LEVELLED, LAYOUT_PARTITIONED
from repro.algebra.rewriter import structurally_equal
from repro.engine.stats import TableStats
from repro.optimizer.monitor import DEFAULT_DECAY, WorkloadMonitor
from repro.optimizer.reorganize import Policy, ReorganizationManager
from repro.optimizer.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.catalog import CatalogEntry
    from repro.engine.database import RodentStore
    from repro.engine.table import Table
    from repro.query.expressions import Predicate


class AdaptiveController:
    """Per-store adaptivity: observe scans, periodically re-advise, reorganize.

    Args:
        store: the owning :class:`RodentStore`.
        enabled: when False (the default), scans are still monitored but
            reorganizations only happen through :meth:`RodentStore.adapt`.
        check_interval: observed scans per table between automatic checks.
        hysteresis: minimum *relative* predicted improvement
            (``benefit > hysteresis * incumbent_ms``) before a switch is
            considered — two designs within the margin never thrash.
        min_observations: observations required before the first check.
        amortization_queries: workload repetitions over which the one-time
            rewrite cost must be recovered by the per-execution benefit.
        strategy: advisor search strategy for online checks.
        decay: per-observation exponential decay of monitor weights.
    """

    def __init__(
        self,
        store: "RodentStore",
        enabled: bool = False,
        check_interval: int = 64,
        hysteresis: float = 0.15,
        min_observations: int = 8,
        amortization_queries: float = 200.0,
        strategy: str = "exhaustive",
        decay: float = DEFAULT_DECAY,
    ):
        self.store = store
        self.enabled = enabled
        self.check_interval = check_interval
        self.hysteresis = hysteresis
        self.min_observations = min_observations
        self.amortization_queries = amortization_queries
        self.strategy = strategy
        self.decay = decay
        self.reorganizer = ReorganizationManager(store)
        self.adaptations = 0
        self.checks = 0
        #: Optional hand-written workloads per table; each check merges the
        #: monitor's observed workload into them with decay (see
        #: :meth:`seed_workload`).
        self.seed_workloads: dict[str, "Workload"] = {}
        #: Last decision per table (what ``adaptivity_report`` surfaces).
        self.decisions: dict[str, dict] = {}
        self._since_check: dict[str, int] = {}
        #: Decayed ingest load per levelled table (rows, bumped by every
        #: insert and decayed by every observed scan): while it is high
        #: the table is write-hot and the levelled check leaves run
        #: fragmentation to the background merge cadence; once reads
        #: dominate, a full compaction becomes eligible.
        self._write_load: dict[str, float] = {}
        self._suspended = 0
        #: Scans currently being iterated. Automatic reorganization frees
        #: the old layout's pages, so it must never fire while another
        #: iterator still reads them — periodic checks and lazy rewrites
        #: wait until no tracked scan is live. (A generator that was
        #: created but never started is not tracked; the window between
        #: creation and first ``next()`` remains the caller's to sequence,
        #: exactly as with an explicit ``relayout()``.)
        self._live_scans = 0

    # -- observation plumbing ----------------------------------------------

    @contextmanager
    def pause(self):
        """Suppress observation/adaptation for internal maintenance scans."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    @property
    def paused(self) -> bool:
        return self._suspended > 0

    def monitor(self, name: str) -> WorkloadMonitor:
        """The table's monitor, created on first access."""
        entry = self.store.catalog.entry(name)
        if entry.monitor is None:
            entry.monitor = WorkloadMonitor(name, decay=self.decay)
        return entry.monitor

    def observe_scan(
        self,
        table: "Table",
        fieldlist: Sequence[str] | None,
        predicate: "Predicate | None",
        order_keys: Sequence[tuple[str, bool]],
    ):
        """Record one access-method call; may trigger a pending/lazy or
        periodic adaptation *before* the scan binds its layout.

        Returns ``(monitor, pattern key)`` for result-cardinality feedback,
        or ``None`` while observation is paused.
        """
        if self._suspended:
            return None
        monitor = self.monitor(table.name)
        key = monitor.observe(fieldlist, predicate, order_keys)
        if table.name in self._write_load:
            self._write_load[table.name] *= self.decay
        # Reorganization swaps the layout and frees its pages: defer both
        # the lazy-policy rewrite and the periodic check while any other
        # scan is mid-iteration (the observing scan itself has not started).
        if self._live_scans == 0:
            if self.reorganizer.pending(table.name) is not None:
                with self.pause():
                    if self.reorganizer.on_access(table.name):
                        self.adaptations += 1  # deferred rewrite fired
            if self.enabled:
                count = self._since_check.get(table.name, 0) + 1
                if (
                    count >= self.check_interval
                    and monitor.ticks >= self.min_observations
                ):
                    self._since_check[table.name] = 0
                    self.check(table.name)
                else:
                    self._since_check[table.name] = count
        return monitor, key

    def track_scan(self, stream):
        """Mark a scan live from first ``next()`` to exhaustion/close.

        Works for batch and row iterators alike; while any tracked scan is
        live, automatic reorganization is deferred (see ``_live_scans``).
        """

        def generate():
            self._live_scans += 1
            try:
                yield from stream
            finally:
                self._live_scans -= 1

        return generate()

    def count_batches(
        self, observation, batches: Iterator[list[tuple]]
    ) -> Iterator[list[tuple]]:
        """Pass batches through, recording the result cardinality.

        Only *fully consumed* scans record: an abandoned iterator's partial
        count would poison the pattern's ``avg_rows`` (which the planner
        falls back to when a table has no statistics). Limited scans are
        excluded upstream for the same reason — ``limit`` is not part of
        the access signature.
        """
        monitor, key = observation

        def generate() -> Iterator[list[tuple]]:
            n = 0
            for batch in batches:
                n += len(batch)
                yield batch
            monitor.record_result(key, n)

        return generate()

    def note_write(self, name: str, rows: int) -> None:
        """Ingest signal from levelled inserts: bump the table's decayed
        write load (scans decay it back down; see ``_write_load``)."""
        if self._suspended:
            return
        self._write_load[name] = (
            self._write_load.get(name, 0.0) * self.decay + float(rows)
        )

    def record_estimate(
        self, name: str, estimated: float, actual: float
    ) -> None:
        """Planner feedback: a scan's estimated vs actual cardinality."""
        if self._suspended:
            return
        self.monitor(name).record_estimate(estimated, actual)

    def observe_partitions(self, name: str, pids: Sequence[int]) -> None:
        """Record which partitions a scan actually read (its survivors
        after partition pruning) — the skew signal behind hot/cold
        per-partition layout decisions."""
        if self._suspended:
            return
        self.monitor(name).observe_partitions(pids)

    # -- policy ------------------------------------------------------------

    def set_policy(self, name: str, policy: Policy | str) -> None:
        """Reorganization policy for ``name`` (eager/new-data-only/lazy)."""
        self.reorganizer.set_policy(name, policy)

    def seed_workload(self, workload: "Workload") -> None:
        """Install a hand-written workload the advisor should respect
        before (and alongside) observed traffic: each check folds the live
        observations into it via :meth:`Workload.merge_decayed`, so the
        seed shapes early decisions and fades as real traffic accumulates.
        """
        self.seed_workloads[workload.table] = workload

    # -- the check: advise, compare, maybe reorganize ----------------------

    def check(self, name: str, force: bool = False) -> dict:
        """Run one adaptation cycle for ``name``; returns the decision.

        ``force`` (what :meth:`RodentStore.adapt` passes) waives the
        minimum-observation gate and the amortization charge — the operator
        asked, so the rewrite cost is accepted — but never the hysteresis
        margin: a design that is not clearly better is not installed.
        """
        from repro.optimizer.advisor import recommend

        self.checks += 1
        entry = self.store.catalog.entry(name)
        decision: dict = {"table": name, "adapted": False}
        self.decisions[name] = decision
        monitor = entry.monitor
        seed = self.seed_workloads.get(name)
        if (monitor is None or not monitor.patterns) and seed is None:
            decision["reason"] = "no observed workload"
            return decision
        loaded = entry.layout is not None or (
            entry.plan is not None
            and entry.plan.kind == LAYOUT_PARTITIONED
            and entry.partitions_loaded
        ) or (
            # A levelled table is born scannable: runs + pending ARE the
            # representation, no bulk load required.
            entry.plan is not None
            and entry.plan.kind == LAYOUT_LEVELLED
        )
        if entry.plan is None or not loaded:
            decision["reason"] = "table not loaded"
            return decision
        if (
            not force
            and seed is None
            and monitor.ticks < self.min_observations
        ):
            decision["reason"] = "too few observations"
            return decision

        workload = (
            monitor.to_workload()
            if monitor is not None
            else Workload(name)
        )
        if seed is not None:
            # The hand-written seed fades as observed evidence accumulates:
            # at full strength before any traffic, halved for every 20
            # units of observed decayed weight.
            fade = 0.5 ** (workload.total_weight / 20.0)
            workload = seed.merge_decayed(workload, decay=fade)
        if not workload.queries:
            decision["reason"] = "no live patterns"
            return decision
        partitioned = entry.plan.kind == LAYOUT_PARTITIONED
        levelled = entry.plan.kind == LAYOUT_LEVELLED
        if partitioned:
            incumbent_expr = self._hottest_region_expr(entry)
        elif levelled:
            # The incumbent a levelled check argues against is the run
            # template — the design every future seal/merge renders.
            incumbent_expr = entry.plan.level_plans[0].expr
        else:
            incumbent_expr = entry.plan.expr
        with self.pause():
            stats = self._fresh_stats(entry)
            if stats is None:
                decision["reason"] = "no statistics"
                return decision
            recommendation = recommend(
                entry.logical_schema,
                stats,
                workload,
                self.store.cost_model,
                strategy=self.strategy,
                incumbent=incumbent_expr,
            )

        incumbent_text = incumbent_expr.to_text()
        decision["incumbent"] = incumbent_text
        decision["incumbent_ms"] = recommendation.incumbent_ms
        chosen = self._choose_non_lossy(
            entry, recommendation, region_design=partitioned or levelled
        )
        if chosen is None:
            decision["reason"] = "no non-lossy improvement"
            return decision
        if partitioned:
            return self._check_partitioned(
                entry, decision, chosen, recommendation, workload, force
            )
        if levelled:
            return self._check_levelled(
                entry, decision, chosen, recommendation, workload, force
            )
        expr, predicted_ms, storage_pages = chosen
        decision["recommended"] = expr.to_text()
        decision["predicted_ms"] = round(predicted_ms, 3)

        if decision["recommended"] == incumbent_text:
            decision["reason"] = "incumbent is optimal"
            return decision
        pending = self.reorganizer.pending(name)
        if pending is not None and pending.to_text() == decision["recommended"]:
            # A deferred policy already holds this exact design; re-applying
            # would reset the lazy access counter and fake an adaptation.
            decision["reason"] = "recommendation already pending under policy"
            return decision
        incumbent_ms = recommendation.incumbent_ms
        if incumbent_ms is None:
            decision["reason"] = "incumbent cost unknown"
            return decision
        benefit = incumbent_ms - predicted_ms
        margin = self.hysteresis * incumbent_ms
        if benefit <= margin:
            decision["reason"] = (
                f"within hysteresis margin "
                f"(benefit {benefit:.2f} ms <= {margin:.2f} ms)"
            )
            return decision
        rewrite_ms = self.reorganizer.estimated_rewrite_ms(
            name, storage_pages
        )
        per_execution = benefit / max(1.0, workload.total_weight)
        amortized = per_execution * self.amortization_queries
        decision["rewrite_ms"] = round(rewrite_ms, 3)
        decision["amortized_benefit_ms"] = round(amortized, 3)
        if not force and amortized < rewrite_ms:
            decision["reason"] = (
                f"rewrite cost not amortized "
                f"({amortized:.2f} ms benefit < {rewrite_ms:.2f} ms rewrite)"
            )
            return decision

        if pending is not None:
            # A different design was pending under a deferred policy; it is
            # replaced, and the decision log keeps the trace.
            decision["superseded_pending"] = pending.to_text()
        with self.pause():
            self.reorganizer.apply_design(name, expr)
        self._since_check[name] = 0
        applied = self.reorganizer.pending(name) is None
        if applied:
            # ``adaptations`` counts layouts actually switched; a design
            # merely *recorded* under lazy/new-data-only shows up as
            # ``pending_design`` in the report (and as a reorganization
            # once the deferred rewrite fires).
            self.adaptations += 1
        decision["adapted"] = True
        decision["reason"] = (
            f"predicted {benefit:.2f} ms/workload benefit over incumbent"
        )
        decision["policy"] = self.reorganizer._state(name).policy.value
        decision["applied_immediately"] = applied
        return decision

    # -- partitioned tables: hot/cold per-partition designs ----------------

    #: A partition is "hot" when its decayed access weight reaches this
    #: multiple of the mean partition weight.
    HOT_PARTITION_FACTOR = 1.0

    def _partition_weights(self, entry: "CatalogEntry") -> dict[int, float]:
        if entry.monitor is None:
            return {}
        return entry.monitor.partition_weights()

    def _worst_region_cost(
        self, entry: "CatalogEntry", regions, workload: "Workload"
    ) -> float | None:
        """Predicted workload cost of the costliest of ``regions``' current
        designs (None when statistics cannot price them)."""
        from repro.optimizer.advisor import _cost_of
        from repro.optimizer.cost_model import PlanCostEstimator

        stats = entry.stats
        if stats is None:
            return None
        estimator = PlanCostEstimator(
            stats, self.store.cost_model, self.store.cost_model.page_size
        )
        worst = None
        for region in regions:
            if region.plan is None:
                continue
            try:
                ms = _cost_of(
                    region.plan.expr,
                    entry.logical_schema,
                    estimator,
                    workload,
                )
            except Exception:
                continue
            if ms is not None and (worst is None or ms > worst):
                worst = ms
        return worst

    def _hottest_region_expr(self, entry: "CatalogEntry") -> ast.Node:
        """The incumbent design a partitioned check compares against: the
        most-accessed region's plan (falling back to the template)."""
        weights = self._partition_weights(entry)
        best = None
        for region in entry.partitions:
            if region.plan is None:
                continue
            weight = weights.get(region.pid, 0.0)
            if best is None or weight > best[0]:
                best = (weight, region.plan.expr)
        if best is not None:
            return best[1]
        assert entry.plan is not None
        return entry.plan.partition_plans[0].expr

    def _check_partitioned(
        self,
        entry: "CatalogEntry",
        decision: dict,
        chosen: tuple[ast.Node, float, int],
        recommendation,
        workload: "Workload",
        force: bool,
    ) -> dict:
        """Partition-granular adaptation: apply the recommended design to
        the *hot* partitions only, one region at a time.

        Cold partitions keep their current layout — that is the point of
        partition-scoped reorganization: a skewed workload re-optimizes the
        regions it actually touches without rewriting the whole table, and
        hot and cold partitions end up with different physical designs.
        """
        name = entry.name
        expr, predicted_ms, storage_pages = chosen
        decision["recommended"] = expr.to_text()
        decision["predicted_ms"] = round(predicted_ms, 3)
        incumbent_ms = recommendation.incumbent_ms
        if incumbent_ms is None:
            decision["reason"] = "incumbent cost unknown"
            return decision

        weights = self._partition_weights(entry)
        total_weight = sum(weights.values())
        mean = total_weight / max(1, len(entry.partitions))
        threshold = self.HOT_PARTITION_FACTOR * mean
        hot = [
            region
            for region in entry.partitions
            if total_weight == 0.0
            or weights.get(region.pid, 0.0) >= threshold
        ]
        decision["hot_partitions"] = [r.pid for r in hot]
        decision["partition_weights"] = {
            r.pid: round(weights.get(r.pid, 0.0), 3)
            for r in entry.partitions
        }

        stale = [
            region
            for region in hot
            if region.plan is not None
            and not structurally_equal(region.plan.expr, expr)
        ]
        if not stale:
            decision["reason"] = (
                "hot partitions already use the recommended design"
            )
            return decision

        benefit = incumbent_ms - predicted_ms
        margin = self.hysteresis * incumbent_ms
        if benefit <= margin:
            # The hottest region may already run the recommended design
            # while other newly-hot regions lag on an older one; measure
            # the gap from the *worst* stale region instead.
            lag_ms = self._worst_region_cost(entry, stale, workload)
            if lag_ms is not None:
                benefit = max(benefit, lag_ms - predicted_ms)
                margin = self.hysteresis * max(incumbent_ms, lag_ms)
        if benefit <= margin:
            decision["reason"] = (
                f"within hysteresis margin "
                f"(benefit {benefit:.2f} ms <= {margin:.2f} ms)"
            )
            return decision
        rewrite_ms = self.reorganizer.estimated_region_rewrite_ms(
            stale, storage_pages
        )
        per_execution = benefit / max(1.0, workload.total_weight)
        amortized = per_execution * self.amortization_queries
        decision["rewrite_ms"] = round(rewrite_ms, 3)
        decision["amortized_benefit_ms"] = round(amortized, 3)
        if not force and amortized < rewrite_ms:
            decision["reason"] = (
                f"rewrite cost not amortized "
                f"({amortized:.2f} ms benefit < {rewrite_ms:.2f} ms rewrite)"
            )
            return decision

        rewritten = []
        with self.pause():
            for region in stale:
                # One region at a time: each rewrite reads and writes only
                # that partition's pages.
                self.reorganizer.rewrite_partition(name, region.pid, expr)
                rewritten.append(region.pid)
        self._since_check[name] = 0
        self.adaptations += 1
        decision["adapted"] = True
        decision["relayout_partitions"] = rewritten
        decision["kept_partitions"] = [
            r.pid for r in entry.partitions if r.pid not in set(rewritten)
        ]
        decision["reason"] = (
            f"re-laid out {len(rewritten)} hot partition(s) to "
            f"{expr.to_text()} (predicted {benefit:.2f} ms/workload benefit)"
        )
        return decision

    # -- levelled tables: run-design re-choice + read-heavy merges ---------

    #: Below this decayed write load (rows) a levelled table counts as
    #: read-mostly: the check may full-compact its runs for scan locality.
    LEVELLED_WRITE_LOAD_FLOOR = 1.0

    def _check_levelled(
        self,
        entry: "CatalogEntry",
        decision: dict,
        chosen: tuple[ast.Node, float, int],
        recommendation,
        workload: "Workload",
        force: bool,
    ) -> dict:
        """Levelled adaptation, two triggers in priority order.

        1. **Run-design re-choice**: when the advisor's non-lossy pick
           beats the run template past hysteresis and the full-compaction
           rewrite amortizes, every run merges into one re-rendered under
           the new design (future seals render it too) — compaction is
           exactly when re-choosing a hot run's layout is free-ish.
        2. **Read-heavy merge**: a fragmented manifest costs one extra
           seek per run per scan. Once the decayed ingest load has
           drained (reads dominate) and the saved seeks amortize the
           merge, the runs fold into one. While ingest is hot the check
           leaves fan-out to the background merge cadence instead of
           fighting it.
        """
        from repro.engine.cost import estimate

        name = entry.name
        expr, predicted_ms, storage_pages = chosen
        decision["recommended"] = expr.to_text()
        decision["predicted_ms"] = round(predicted_ms, 3)
        decision["run_count"] = len(entry.runs)
        write_load = self._write_load.get(name, 0.0)
        decision["write_load"] = round(write_load, 3)
        assert entry.plan is not None and entry.plan.levels is not None
        incumbent_expr = entry.plan.level_plans[0].expr
        incumbent_ms = recommendation.incumbent_ms

        if (
            incumbent_ms is not None
            and not structurally_equal(expr, incumbent_expr)
        ):
            benefit = incumbent_ms - predicted_ms
            margin = self.hysteresis * incumbent_ms
            if benefit > margin:
                rewrite_ms = self.reorganizer.estimated_rewrite_ms(
                    name, storage_pages
                )
                per_execution = benefit / max(1.0, workload.total_weight)
                amortized = per_execution * self.amortization_queries
                decision["rewrite_ms"] = round(rewrite_ms, 3)
                decision["amortized_benefit_ms"] = round(amortized, 3)
                if force or amortized >= rewrite_ms:
                    with self.pause():
                        self.store.compact_levels(name, inner=expr)
                    self._since_check[name] = 0
                    self.adaptations += 1
                    decision["adapted"] = True
                    decision["relayout_runs"] = True
                    decision["reason"] = (
                        f"re-chose run design {expr.to_text()} via full "
                        f"compaction (predicted {benefit:.2f} ms/workload "
                        f"benefit)"
                    )
                    return decision
                decision["reason"] = (
                    f"rewrite cost not amortized ({amortized:.2f} ms "
                    f"benefit < {rewrite_ms:.2f} ms rewrite)"
                )
                return decision

        n_runs = len(entry.runs)
        if n_runs > 1:
            if not force and write_load > self.LEVELLED_WRITE_LOAD_FLOOR:
                decision["reason"] = (
                    f"ingest-hot (write load {write_load:.1f} rows): run "
                    f"merges stay with the background compaction cadence"
                )
                return decision
            model = self.store.cost_model
            pages = sum(r.total_pages() for r in entry.runs)
            per_scan = (
                estimate(model, pages, n_runs).ms
                - estimate(model, pages, 1).ms
            )
            rewrite_ms = self.reorganizer.estimated_rewrite_ms(name, pages)
            amortized = per_scan * self.amortization_queries
            decision["merge_benefit_ms_per_scan"] = round(per_scan, 3)
            decision["rewrite_ms"] = round(rewrite_ms, 3)
            if per_scan > 0 and (force or amortized >= rewrite_ms):
                with self.pause():
                    report = self.store.compact_levels(name, full=True)
                self._since_check[name] = 0
                self.adaptations += 1
                decision["adapted"] = True
                decision["merged_runs"] = report["runs_merged"]
                decision["reason"] = (
                    f"read-mostly: merged {report['runs_merged']} runs "
                    f"into one (saves {per_scan:.2f} ms/scan in seeks)"
                )
                return decision
            decision["reason"] = (
                f"run merge not amortized ({amortized:.2f} ms benefit "
                f"< {rewrite_ms:.2f} ms merge)"
            )
            return decision
        decision["reason"] = "levelled structure already optimal"
        return decision

    def check_all(self, force: bool = False) -> dict[str, dict]:
        return {
            name: self.check(name, force=force)
            for name in self.store.catalog.names()
        }

    # -- helpers -----------------------------------------------------------

    #: Recollect statistics only beyond this relative row-count drift —
    #: the rescan is O(table), too expensive to pay on every check under a
    #: steady insert trickle.
    STATS_DRIFT_FRACTION = 0.1

    def _fresh_stats(self, entry: "CatalogEntry") -> TableStats | None:
        """Current statistics; recollected when the row count drifted.

        Inserted (pending/overflow) rows are invisible to load-time stats,
        so a check after sustained inserts re-scans the logical records —
        but only once the drift exceeds :attr:`STATS_DRIFT_FRACTION` (the
        rescan is a full O(table) pass, run synchronously inside a check).
        Falls back to the stale stats when the incumbent layout cannot
        re-derive them (lossy design installed by hand).
        """
        from repro.engine.table import Table

        table = Table(self.store, entry)
        stats = entry.stats
        if stats is not None:
            drift = abs(table.row_count - stats.row_count)
            if drift <= self.STATS_DRIFT_FRACTION * max(1, stats.row_count):
                return stats
        logical = list(entry.logical_schema.names())
        try:
            records = list(table.scan(fieldlist=logical))
        except Exception:
            return stats
        entry.stats = TableStats.collect(entry.logical_schema, records)
        return entry.stats

    def _choose_non_lossy(
        self,
        entry: "CatalogEntry",
        recommendation,
        region_design: bool = False,
    ) -> tuple[ast.Node, float, int] | None:
        """Best recommended design that retains every logical field.

        A design that projects fields away cannot be auto-installed: the
        data it drops would be unrecoverable at the *next* adaptation. The
        advisor ranks alternatives; walk them best-first until a non-lossy
        one appears. Returns (expression, predicted ms, storage pages).

        With ``region_design`` (partitioned tables) the bar is stricter:
        the design becomes one *partition's* layout, so it must produce
        exactly the table's stored field set (regions must stay mutually
        projectable) and cannot itself be partitioned.
        """
        from repro.algebra.parser import parse

        interpreter = AlgebraInterpreter(
            {entry.name: entry.logical_schema}
        )
        candidates: list[tuple[ast.Node | str, float]] = [
            (recommendation.expression, recommendation.predicted_ms)
        ]
        candidates.extend(recommendation.alternatives)
        logical = set(entry.logical_schema.names())
        from repro.engine.table import _scan_schema

        required = logical
        if region_design and entry.plan is not None:
            required = set(_scan_schema(entry.plan).names())
        for expr, predicted_ms in candidates:
            try:
                node = parse(expr) if isinstance(expr, str) else expr
                plan = interpreter.compile(node)
                produced = set(_scan_schema(plan).names())
            except Exception:
                continue
            if region_design:
                # The design becomes one region's/run's layout: it cannot
                # itself split into regions or runs.
                if plan.kind in (LAYOUT_PARTITIONED, LAYOUT_LEVELLED):
                    continue
                if produced != required:
                    continue
            elif not (logical <= produced):
                continue
            pages = self._storage_pages(entry, plan)
            return node, predicted_ms, pages
        return None

    def _storage_pages(self, entry: "CatalogEntry", plan) -> int:
        from repro.optimizer.cost_model import PlanCostEstimator

        stats = entry.stats
        if stats is None:
            return 1
        estimator = PlanCostEstimator(
            stats, self.store.cost_model, self.store.cost_model.page_size
        )
        try:
            return estimator.storage_pages(plan)
        except Exception:
            return 1

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """The ``adaptivity`` section of :meth:`RodentStore.storage_stats`."""
        io = self.reorganizer.reorganization_io
        tables = {}
        for entry in self.store.catalog:
            if entry.monitor is None:
                continue
            table_report = entry.monitor.report()
            decision = self.decisions.get(entry.name)
            if decision is not None:
                table_report["last_decision"] = decision
            pending = self.reorganizer.pending(entry.name)
            if pending is not None:
                table_report["pending_design"] = pending.to_text()
            tables[entry.name] = table_report
        return {
            "enabled": self.enabled,
            "check_interval": self.check_interval,
            "hysteresis": self.hysteresis,
            "min_observations": self.min_observations,
            "amortization_queries": self.amortization_queries,
            "checks": self.checks,
            "adaptations": self.adaptations,
            "reorganizations": self.reorganizer.reorganizations,
            "reorganization_io": {
                "page_reads": io.page_reads,
                "page_writes": io.page_writes,
            },
            "tables": tables,
        }
