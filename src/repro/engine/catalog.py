"""Catalog: logical schemas, physical plans, and stored layouts per table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.algebra.physical import PhysicalPlan
from repro.errors import CatalogError
from repro.types.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.stats import TableStats
    from repro.engine.synopsis import ZoneSynopsis
    from repro.layout.renderer import StoredLayout
    from repro.optimizer.monitor import WorkloadMonitor


@dataclass
class CatalogEntry:
    """Everything the engine knows about one table."""

    name: str
    logical_schema: Schema
    plan: PhysicalPlan | None = None
    layout: "StoredLayout | None" = None
    stats: "TableStats | None" = None
    # Row-major overflow regions holding data inserted after the last
    # (re)organization — the paper's "reorganize only new data" state.
    overflow: list = field(default_factory=list)
    # Secondary access paths: field name -> FieldIndex, and
    # (x_field, y_field) -> SpatialIndex.
    indexes: dict = field(default_factory=dict)
    spatial_indexes: dict = field(default_factory=dict)
    # Not-yet-flushed inserted records (stored-record shape) with an
    # incrementally maintained zone map. Kept on the catalog entry — not on
    # Table handles — so every handle sees the same pending rows and a
    # re-layout can fold them into the new representation.
    pending: list = field(default_factory=list)
    pending_zone: "ZoneSynopsis | None" = None
    # Live workload observations feeding the adaptive loop (lazily created
    # by the AdaptiveController the first time the table is scanned).
    monitor: "WorkloadMonitor | None" = None


class Catalog:
    """Name -> :class:`CatalogEntry` mapping with schema lookups."""

    def __init__(self):
        self._entries: dict[str, CatalogEntry] = {}

    def create(self, name: str, schema: Schema) -> CatalogEntry:
        if name in self._entries:
            raise CatalogError(f"table {name!r} already exists")
        entry = CatalogEntry(name=name, logical_schema=schema)
        self._entries[name] = entry
        return entry

    def drop(self, name: str) -> None:
        if name not in self._entries:
            raise CatalogError(f"unknown table {name!r}")
        del self._entries[name]

    def entry(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._entries

    def schemas(self) -> dict[str, Schema]:
        """Logical schemas keyed by table name (the interpreter's input)."""
        return {name: e.logical_schema for name, e in self._entries.items()}

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
