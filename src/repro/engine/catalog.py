"""Catalog: logical schemas, physical plans, and stored layouts per table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.algebra.physical import PhysicalPlan
from repro.engine.mvcc import EntryMVCC
from repro.errors import CatalogError
from repro.types.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.stats import TableStats
    from repro.engine.synopsis import ZoneSynopsis
    from repro.layout.renderer import StoredLayout
    from repro.optimizer.monitor import WorkloadMonitor


@dataclass
class PartitionRegion:
    """One horizontal partition: an independently rendered region.

    A partitioned table is a sequence of these — each with its own physical
    plan (initially the table's per-partition template, free to diverge
    through single-partition re-layouts), stored layout with zone synopses,
    overflow regions, and pending insert buffer. ``key`` identifies the
    partition (distinct value, range bucket index, or hash bucket);
    ``lower``/``upper`` are the range bounds partition pruning intersects
    with predicate ranges (``None`` = unbounded).
    """

    pid: int
    key: object = None
    lower: float | None = None
    upper: float | None = None
    plan: PhysicalPlan | None = None
    layout: "StoredLayout | None" = None
    overflow: list = field(default_factory=list)
    pending: list = field(default_factory=list)
    pending_zone: "ZoneSynopsis | None" = None

    @property
    def row_count(self) -> int:
        count = self.layout.row_count if self.layout is not None else 0
        count += sum(o.row_count for o in self.overflow)
        count += len(self.pending)
        return count

    def total_pages(self) -> int:
        pages = self.layout.total_pages() if self.layout is not None else 0
        pages += sum(o.total_pages() for o in self.overflow)
        return pages

    def describe_key(self) -> str:
        if self.lower is not None or self.upper is not None:
            lo = "-inf" if self.lower is None else f"{self.lower:g}"
            hi = "+inf" if self.upper is None else f"{self.upper:g}"
            return f"[{lo}, {hi})"
        return repr(self.key)


@dataclass
class LevelRun:
    """One immutable sorted-run of a levelled (LSM) table.

    A run is an independently rendered region of the table's ``inner``
    design: rendered once when the pending buffer seals (level 0) or when
    a level merges (level > 0), never modified afterwards. ``min_seq`` /
    ``max_seq`` are the creation-sequence range the run covers — scans
    resolve runs newest-first by ``max_seq``, and a tombstone with
    sequence ``s`` suppresses matching rows in runs with ``max_seq < s``.
    """

    rid: int
    level: int
    min_seq: int
    max_seq: int
    plan: PhysicalPlan | None = None
    layout: "StoredLayout | None" = None

    @property
    def row_count(self) -> int:
        return self.layout.row_count if self.layout is not None else 0

    def total_pages(self) -> int:
        return self.layout.total_pages() if self.layout is not None else 0


@dataclass
class CatalogEntry:
    """Everything the engine knows about one table."""

    name: str
    logical_schema: Schema
    plan: PhysicalPlan | None = None
    layout: "StoredLayout | None" = None
    stats: "TableStats | None" = None
    # Row-major overflow regions holding data inserted after the last
    # (re)organization — the paper's "reorganize only new data" state.
    overflow: list = field(default_factory=list)
    # Secondary access paths: field name -> FieldIndex, and
    # (x_field, y_field) -> SpatialIndex.
    indexes: dict = field(default_factory=dict)
    spatial_indexes: dict = field(default_factory=dict)
    # Not-yet-flushed inserted records (stored-record shape) with an
    # incrementally maintained zone map. Kept on the catalog entry — not on
    # Table handles — so every handle sees the same pending rows and a
    # re-layout can fold them into the new representation.
    pending: list = field(default_factory=list)
    pending_zone: "ZoneSynopsis | None" = None
    # Live workload observations feeding the adaptive loop (lazily created
    # by the AdaptiveController the first time the table is scanned).
    monitor: "WorkloadMonitor | None" = None
    # Horizontal partitions of a partitioned table (plan.kind ==
    # LAYOUT_PARTITIONED); each region owns its own plan/layout/overflow/
    # pending. Range-partitioned regions are kept sorted by bucket so the
    # table scans in ascending key order.
    partitions: "list[PartitionRegion]" = field(default_factory=list)
    # True once a partitioned table has been bulk-loaded (an empty load
    # may legitimately create zero value-partitions).
    partitions_loaded: bool = False
    # Monotonic partition-id allocator for this table.
    next_partition_id: int = 0
    # Cumulative partition-pruning counters (exposed by storage_stats).
    partition_scans: int = 0
    partitions_pruned_total: int = 0
    # Immutable runs of a levelled table (plan.kind == LAYOUT_LEVELLED),
    # kept sorted by max_seq ascending (oldest first); scans walk them in
    # reverse. ``level_tombstones`` are (seq, value) pairs — value is the
    # merge key for keyed tables, the full stored row otherwise — each
    # suppressing matching rows in runs older than its seq.
    runs: "list[LevelRun]" = field(default_factory=list)
    level_tombstones: list = field(default_factory=list)
    # Monotonic run-id / sequence allocators for this table.
    next_run_id: int = 0
    next_run_seq: int = 0
    # Write-amplification accounting (exposed by storage_stats): logical
    # bytes first rendered for inserted rows vs total bytes rendered
    # including compaction/rewrite passes.
    wa_bytes_ingested: int = 0
    wa_bytes_written: int = 0
    wa_pages_compacted: int = 0
    wa_compactions: int = 0
    # Transient key -> PartitionRegion index for O(1) insert routing;
    # rebuilt lazily whenever it disagrees with ``partitions`` (never
    # persisted).
    region_index: dict = field(default_factory=dict, repr=False)
    # Corrupt units the most recent degraded-read scan skipped (event
    # dicts); surfaced as ``corruption_skipped`` in explain(). Never
    # persisted.
    last_corruption_skipped: list = field(default_factory=list, repr=False)
    # Snapshot machinery: version counter, scan pins, deferred page frees.
    # ``mvcc.lock`` guards every mutation of the layout-bearing fields
    # above (plan/layout/overflow/pending/indexes/partitions).
    mvcc: EntryMVCC = field(default_factory=EntryMVCC, repr=False)


class Catalog:
    """Name -> :class:`CatalogEntry` mapping with schema lookups."""

    def __init__(self):
        self._entries: dict[str, CatalogEntry] = {}

    def create(self, name: str, schema: Schema) -> CatalogEntry:
        if name in self._entries:
            raise CatalogError(f"table {name!r} already exists")
        entry = CatalogEntry(name=name, logical_schema=schema)
        self._entries[name] = entry
        return entry

    def drop(self, name: str) -> None:
        if name not in self._entries:
            raise CatalogError(f"unknown table {name!r}")
        del self._entries[name]

    def entry(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._entries

    def schemas(self) -> dict[str, Schema]:
        """Logical schemas keyed by table name (the interpreter's input)."""
        return {name: e.logical_schema for name, e in self._entries.items()}

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
