"""I/O cost model.

The paper (§5) plans a deliberately simple model: "count bytes of I/O as well
as disk seeks ... We will ignore CPU costs". :class:`CostModel` converts
(pages, seeks) pairs into estimated milliseconds using a classical
seek-plus-bandwidth disk model, and exposes the conversion used by both the
access-method costing (``scan_cost`` / ``get_element_cost``) and the storage
design optimizer — the same numbers on both sides, per the paper ("using the
cost functions exposed by the RodentStore storage layer").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.disk import IOStats


@dataclass(frozen=True)
class CostModel:
    """Milliseconds = seeks * seek_ms + bytes / bandwidth.

    Defaults approximate the 2009-era commodity disk the paper's case study
    ran on: ~4 ms average seek (plus rotational delay folded in) and
    ~50 MB/s sequential bandwidth.
    """

    page_size: int
    seek_ms: float = 4.0
    bandwidth_mb_per_s: float = 50.0

    def transfer_ms(self, pages: float) -> float:
        bytes_read = pages * self.page_size
        return bytes_read / (self.bandwidth_mb_per_s * 1e6) * 1e3

    def cost_ms(self, pages: float, seeks: float) -> float:
        """Estimated latency for reading ``pages`` with ``seeks`` head moves."""
        return seeks * self.seek_ms + self.transfer_ms(pages)

    def cost_of(self, stats: IOStats) -> float:
        """Latency of a measured I/O trace (reads only, the scan-path cost)."""
        return self.cost_ms(stats.page_reads, stats.read_seeks)


@dataclass(frozen=True)
class CostEstimate:
    """A (pages, seeks, milliseconds) triple returned by the cost API."""

    pages: float
    seeks: float
    ms: float

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            self.pages + other.pages,
            self.seeks + other.seeks,
            self.ms + other.ms,
        )

    @staticmethod
    def zero() -> "CostEstimate":
        return CostEstimate(0.0, 0.0, 0.0)


def estimate(model: CostModel, pages: float, seeks: float) -> CostEstimate:
    return CostEstimate(pages, seeks, model.cost_ms(pages, seeks))
