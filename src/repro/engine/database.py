"""The RodentStore engine: wiring of Figure 1.

``RodentStore`` owns the storage stack (disk manager, buffer pool, WAL,
transactions), the catalog, the algebra interpreter, and the layout renderer.
A front end (SQL engine, array system, ORM, or — here — the mini relational
API in :mod:`repro.query.frontend`) creates tables, declares their physical
design with a storage-algebra expression, loads data, and queries through the
:class:`repro.engine.table.Table` access methods.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.algebra import ast
from repro.algebra.interpreter import AlgebraInterpreter
from repro.algebra.parser import parse
from repro.algebra.physical import (
    LAYOUT_LEVELLED,
    LAYOUT_PARTITIONED,
    LAYOUT_ROWS,
    PhysicalPlan,
)
from repro.algebra.transforms import Evaluated, Evaluator
from repro.engine.catalog import Catalog, CatalogEntry, LevelRun, PartitionRegion
from repro.engine.cost import CostModel
from repro.engine.stats import TableStats
from repro.engine.table import (
    Table,
    _LevelResolver,
    _scan_schema,
    structural_residual,
)
from repro.errors import (
    CatalogError,
    CorruptPageError,
    RodentStoreError,
    StorageError,
    WALError,
)
from repro.layout.partitioning import Locator, PartitionRouter
from repro.layout.renderer import (
    DEFAULT_BATCH_ROWS,
    LayoutRenderer,
    StoredLayout,
)
from repro.storage.buffer import BufferPool
from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskManager, IOStats
from repro.storage.locks import LockManager
from repro.storage.transactions import TransactionManager
from repro.storage.wal import (
    KIND_CATALOG,
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_ROWS,
    KIND_UPDATE,
    WriteAheadLog,
)
from repro.types.schema import Schema


class _Mutation:
    """One transaction's accumulated logical effects.

    Engine mutations run inside ``store.mutate(name)``; while the body
    executes, the effects (rendered pages, inserted rows, catalog images)
    are only *recorded* here. They are appended to the WAL in one shot at
    commit, under the store's commit lock — so a concurrent checkpoint can
    never truncate half of a transaction's effect records, and recovery
    sees a transaction's effects all-or-nothing.
    """

    def __init__(self, store: "RodentStore", txn):
        self.store = store
        self.txn = txn
        self._touched: list[str] = []
        self._dropped: list[str] = []
        self._rows: list[tuple[str, list[list]]] = []
        self._pages: list[int] = []

    def lock(self, name: str) -> None:
        """Take the table's exclusive lock (strict 2PL; held to commit)."""
        self.txn.lock_exclusive(f"table:{name}")

    def touch(self, name: str) -> None:
        """Log the table's full catalog image at commit (structural txns)."""
        if name not in self._touched:
            self._touched.append(name)

    def mark_dropped(self, name: str) -> None:
        self._dropped.append(name)
        if name in self._touched:
            self._touched.remove(name)

    def log_rows(self, name: str, rows: Sequence[tuple]) -> None:
        """Log inserted rows (stored-record shape) at commit."""
        if rows:
            self._rows.append((name, [list(r) for r in rows]))

    def log_pages(self, page_ids: Sequence[int]) -> None:
        """Log full after-images of freshly rendered pages at commit."""
        self._pages.extend(page_ids)

    def log_layout(self, layout: StoredLayout | None) -> None:
        if layout is not None:
            self._pages.extend(layout.page_ids())

    def _append_effects(self) -> None:
        """Append every recorded effect to the WAL (commit time).

        Runs under the store's commit lock. Page records carry the full
        after-image with an all-zero before-image — valid because the
        renderer only ever writes *freshly allocated* (zero-filled) pages,
        so undoing a loser by writing zeros restores the true prior state.
        """
        store = self.store
        wal = store.wal
        txn_id = self.txn.txn_id
        zero = bytes(store.disk.page_size)
        with store._commit_lock:
            for page_id in self._pages:
                frame = store.pool.fetch(page_id)
                try:
                    after = bytes(frame.data)
                finally:
                    store.pool.unpin(page_id)
                wal.append(
                    KIND_UPDATE,
                    txn_id,
                    page_id=page_id,
                    offset=0,
                    before=zero,
                    after=after,
                )
            for name, rows in self._rows:
                payload = json.dumps({"table": name, "rows": rows})
                wal.append(KIND_ROWS, txn_id, payload=payload.encode())
            for name in self._touched:
                if not store.catalog.has(name):
                    continue
                from repro.engine.persistence import entry_to_dict

                payload = json.dumps(entry_to_dict(store.catalog.entry(name)))
                wal.append(KIND_CATALOG, txn_id, payload=payload.encode())
            for name in self._dropped:
                payload = json.dumps({"name": name, "dropped": True})
                wal.append(KIND_CATALOG, txn_id, payload=payload.encode())


class RodentStore:
    """An adaptive, declarative storage system (single node).

    Args:
        path: database file path, or ``None`` for an in-memory store.
        page_size: disk page size in bytes (the paper's case study uses
            1000 KB pages; benchmarks here default to smaller pages at
            smaller data scale).
        pool_capacity: buffer pool frames.
        eviction: buffer pool policy (``"lru"`` or ``"clock"``).

    Example::

        store = RodentStore(page_size=8192)
        store.create_table(
            "Traces",
            Schema.of("t:int", "lat:int", "lon:int", "id:int"),
            layout="zorder(grid[lat, lon],[1000, 1000](Traces))",
        )
        store.load("Traces", records)
        for r in store.table("Traces").scan(predicate=Rect(...)):
            ...
    """

    def __init__(
        self,
        path: str | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        pool_capacity: int = 256,
        eviction: str = "lru",
        wal_path: str | None = None,
        cost_model: CostModel | None = None,
        adaptive: bool = False,
        adapt_interval: int = 64,
        adapt_hysteresis: float = 0.15,
        scan_workers: int = 0,
        read_latency_s: float = 0.0,
        durable: bool = False,
        catalog_path: str | None = None,
        group_commit_window: float = 0.0,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        vectorized: bool = True,
        checksums: bool = True,
        degraded_reads: bool = False,
        level_seal_rows: int = 2048,
    ):
        from repro.engine.adaptive import AdaptiveController

        self.durable = bool(durable)
        if self.durable:
            if path is None:
                raise StorageError(
                    "durable=True needs a file-backed store (path=...)"
                )
            if wal_path is None:
                wal_path = path + ".wal"
            if catalog_path is None:
                catalog_path = path + ".catalog.json"
        self.catalog_path = catalog_path
        self.disk = DiskManager(
            path,
            page_size=page_size,
            read_latency_s=read_latency_s,
            verify_checksums=checksums,
        )
        self.pool = BufferPool(self.disk, capacity=pool_capacity, policy=eviction)
        self.wal = WriteAheadLog(wal_path)
        #: Shared corruption ledger (verifications, failures, repairs,
        #: quarantined pages) — surfaced via storage_stats()["integrity"].
        self.integrity = self.disk.integrity
        self.wal.integrity = self.integrity
        #: A checksum mismatch on a pool miss tries the WAL repair ladder
        #: before surfacing as CorruptPageError.
        self.pool.repair_handler = self._repair_page
        #: Degraded reads: scans skip corrupt, unrepairable units and
        #: report them (per-scan ``corruption_skipped`` in explain() and
        #: the integrity registry) instead of failing the query. Off by
        #: default — corruption fails loudly.
        self.degraded_reads = bool(degraded_reads)
        self._io_faults = None
        self.locks = LockManager()
        # Non-durable stores run in locking-only mode (log=False): an
        # in-memory WAL would grow without bound under a write workload.
        self.transactions = TransactionManager(
            self.wal,
            self.pool,
            self.locks,
            log=self.durable,
            group_window_s=group_commit_window,
        )
        #: Serializes commit-time WAL effect appends against checkpoints,
        #: so a checkpoint never truncates half of a transaction's records.
        self._commit_lock = threading.Lock()
        # Re-entrancy guard: a maintenance op nested inside another (e.g.
        # a relayout's bulk load) joins the outer transaction instead of
        # deadlocking on its own table lock.
        self._mutation_local = threading.local()
        self.recoveries_run = 0
        self.checkpoints = 0
        self.recovery_summary: dict | None = None
        self.catalog = Catalog()
        self.renderer = LayoutRenderer(self.pool)
        self.cost_model = cost_model or CostModel(page_size=page_size)
        #: Zone-map scan pruning (per-page/chunk/cell min-max synopses).
        #: Settable at runtime; benchmarks flip it for before/after runs.
        self.zone_pruning = True
        #: Whole-partition pruning: intersect predicate ranges with the
        #: partition map before any region's zone maps even load.
        #: Settable at runtime (benchmarks flip it for before/after runs).
        self.partition_pruning = True
        #: Worker threads for partition-parallel scans; 0/1 = serial.
        #: Settable at runtime — the shared executor is (re)built lazily.
        self.scan_workers = scan_workers
        #: Target rows per scan batch (plumbed to every batch reader).
        #: Settable at runtime; the default won the BENCH_vector sweep.
        self.batch_rows = int(batch_rows)
        if self.batch_rows < 1:
            raise StorageError("batch_rows must be >= 1")
        #: Vectorized execution: typed column buffers + selection bitmaps
        #: + whole-column predicates. Settable at runtime (the fuzz suite
        #: flips it per iteration); off = the per-row closure pipeline.
        #: Answers are identical either way.
        self.vectorized = bool(vectorized)
        #: Rows a levelled table's pending buffer accumulates before it
        #: seals into an immutable level-0 run. Settable at runtime (the
        #: ingest benchmark sweeps it).
        self.level_seal_rows = int(level_seal_rows)
        if self.level_seal_rows < 1:
            raise StorageError("level_seal_rows must be >= 1")
        #: Tables with a background level-merge in flight, guarded by
        #: ``_level_lock`` — at most one merge per table is scheduled.
        self._level_lock = threading.Lock()
        self._compacting: set[str] = set()
        self._scan_executor = None
        self._closed = False
        #: The adaptive loop (monitor → advise → reorganize). Scans are
        #: always monitored; automatic periodic reorganization only runs
        #: while :attr:`adaptive` is True (or on explicit :meth:`adapt`
        #: calls).
        self.adaptivity = AdaptiveController(
            self,
            enabled=adaptive,
            check_interval=adapt_interval,
            hysteresis=adapt_hysteresis,
        )
        if self.durable:
            # A non-empty WAL means the last session did not close cleanly:
            # replay committed work, roll back losers, checkpoint.
            from repro.engine.recovery import recover_store

            self.recovery_summary = recover_store(self)

    @property
    def adaptive(self) -> bool:
        """Whether automatic periodic reorganization is on.

        A plain settable flag, symmetric with :attr:`zone_pruning`:
        ``store.adaptive = False`` pauses the automatic loop (monitoring
        continues; :meth:`adapt` still works). The controller itself —
        knobs, report, policies — lives at :attr:`adaptivity`.
        """
        return self.adaptivity.enabled

    @adaptive.setter
    def adaptive(self, value: bool) -> None:
        self.adaptivity.enabled = bool(value)

    # -- transactions ------------------------------------------------------

    @contextmanager
    def mutate(self, name: str | None = None) -> Iterator[_Mutation]:
        """Run an engine mutation as one transaction.

        Takes the table's exclusive lock (strict two-phase locking — writers
        on the same table serialize; readers never block, they pin MVCC
        snapshots instead), accumulates the mutation's effects, and at exit
        appends them to the WAL and commits (group commit), or aborts on
        error. Nested ``mutate`` calls on the same thread join the outer
        transaction, so a re-layout that bulk-loads internally is one atomic
        unit.
        """
        outer = getattr(self._mutation_local, "ctx", None)
        if outer is not None:
            if name is not None:
                outer.lock(name)
            yield outer
            return
        txn = self.transactions.begin()
        m = _Mutation(self, txn)
        self._mutation_local.ctx = m
        try:
            if name is not None:
                m.lock(name)
            yield m
        except BaseException:
            self._mutation_local.ctx = None
            try:
                txn.abort()
            except StorageError:
                pass  # crashed/poisoned store: abandon without a clean abort
            raise
        else:
            self._mutation_local.ctx = None
            if self.transactions.log:
                m._append_effects()
            txn.commit()

    def checkpoint(self) -> None:
        """Fold all durable state into the page file + catalog, then
        truncate the WAL.

        Protocol (crash-safe at every step): flush dirty frames, fsync the
        page file, write the catalog to ``<catalog_path>.tmp``, append a
        CHECKPOINT record and sync it, atomically promote the tmp catalog,
        truncate the log. Recovery promotes a leftover tmp catalog only
        when the CHECKPOINT record made it to the log. Callers must have
        quiesced writers (close, recovery, explicit maintenance windows) —
        the commit lock keeps effect records whole but does not wait out
        transactions that are still mid-body.
        """
        if not self.durable:
            self.pool.flush_all()
            return
        from repro.engine.persistence import save_catalog

        assert self.catalog_path is not None
        tmp_path = self.catalog_path + ".tmp"
        with self._commit_lock:
            self.pool.flush_all()
            self.disk.fsync()
            save_catalog(self, tmp_path)
            self.wal.append(KIND_CHECKPOINT, 0)
            self.wal.sync()
            os.replace(tmp_path, self.catalog_path)
            self.wal.truncate()
            self.checkpoints += 1

    def inject_faults(self, injector) -> None:
        """Arm a :class:`~repro.storage.faults.FaultInjector` on the WAL
        and page-file write paths (pass ``None`` to disarm)."""
        self.disk.faults = injector
        self.wal.faults = injector

    def inject_io_faults(self, injector) -> None:
        """Arm an :class:`~repro.storage.faults.IoFaultInjector` on the
        page, WAL, and catalog read/write paths (pass ``None`` to disarm)."""
        self.disk.io_faults = injector
        self.wal.io_faults = injector
        self._io_faults = injector

    @property
    def checksums(self) -> bool:
        """Whether ``read_page`` verifies frame checksums (settable)."""
        return self.disk.verify_checksums

    @checksums.setter
    def checksums(self, value: bool) -> None:
        self.disk.verify_checksums = bool(value)

    # -- integrity ---------------------------------------------------------

    def _repair_page(self, page_id: int) -> bytearray | None:
        """Repair a corrupt page from its latest committed WAL after-image.

        The renderer logs *full-page* after-images at commit, so any page
        whose transaction is still in the (un-truncated) WAL can be
        rewritten bit-for-bit. Pages folded into the page file by an
        earlier checkpoint have no WAL copy left — the checkpoint protocol
        fsynced them as the authoritative replica — so those stay
        quarantined and ``None`` is returned.
        """
        try:
            records = list(self.wal.records())
        except WALError:
            return None  # the log itself is damaged: no trusted source
        committed = {
            r.txn_id for r in records if r.kind == KIND_COMMIT
        }
        image = None
        for r in records:
            if (
                r.kind == KIND_UPDATE
                and r.page_id == page_id
                and r.offset == 0
                and len(r.after) == self.disk.page_size
                and r.txn_id in committed
            ):
                image = r.after  # keep the *latest* committed image
        if image is None:
            return None
        self.disk.write_page(page_id, image)
        self.integrity.record_page_repair(page_id)
        return bytearray(image)

    def scrub(self, repair: bool = True) -> dict:
        """Verify every referenced page, WAL record, and the catalog file.

        Walks the store end to end: checksum-verifies each page referenced
        by a catalog layout (attempting WAL repair for failures when
        ``repair=True``), iterates the WAL (record CRCs + LSN continuity),
        re-verifies the catalog file checksum, and checks cross-structure
        invariants — zone synopses against actual page contents and the
        partition map against each region's rows. Returns a report dict
        (also kept as ``storage_stats()["integrity"]["last_scrub"]``);
        ``report["clean"]`` is True when nothing failed.
        """
        start = time.perf_counter()
        report: dict[str, Any] = {
            "pages_checked": 0,
            "pages_failed": 0,
            "pages_repaired": 0,
            "unrepairable": [],
            "wal_records_checked": 0,
            "wal_ok": True,
            "wal_error": None,
            "catalog_ok": True,
            "catalog_error": None,
            "synopsis_mismatches": [],
            "partition_mismatches": [],
            "row_count_mismatches": [],
        }
        self.pool.flush_all()
        referenced: set[int] = set()
        for entry in self.catalog:
            for layout in self._entry_layouts(entry):
                referenced.update(layout.page_ids())
        report["pages_referenced"] = len(referenced)
        report["pages_allocated"] = self.disk.num_pages
        report["pages_free"] = len(self.disk.free_page_ids())
        for page_id in sorted(referenced):
            report["pages_checked"] += 1
            try:
                self.disk.read_page(page_id)
            except (CorruptPageError, StorageError) as exc:
                report["pages_failed"] += 1
                repaired = (
                    self._repair_page(page_id)
                    if repair and isinstance(exc, CorruptPageError)
                    else None
                )
                if repaired is not None:
                    report["pages_repaired"] += 1
                else:
                    report["unrepairable"].append(
                        {"page_id": page_id, "error": str(exc)}
                    )
        try:
            for _ in self.wal.records():
                report["wal_records_checked"] += 1
        except WALError as exc:
            report["wal_ok"] = False
            report["wal_error"] = str(exc)
        if self.catalog_path is not None and os.path.exists(self.catalog_path):
            from repro.engine.persistence import read_catalog_payload

            try:
                read_catalog_payload(self, self.catalog_path)
            except CatalogError as exc:
                report["catalog_ok"] = False
                report["catalog_error"] = str(exc)
        with self.adaptivity.pause():
            for entry in self.catalog:
                self._scrub_entry(entry, report)
        report["elapsed_s"] = time.perf_counter() - start
        report["clean"] = (
            report["pages_failed"] == report["pages_repaired"]
            and not report["unrepairable"]
            and report["wal_ok"]
            and report["catalog_ok"]
            and not report["synopsis_mismatches"]
            and not report["partition_mismatches"]
            and not report["row_count_mismatches"]
        )
        self.integrity.record_scrub(report)
        return report

    def _entry_layouts(self, entry: CatalogEntry) -> list[StoredLayout]:
        layouts = []
        if entry.layout is not None:
            layouts.append(entry.layout)
        layouts.extend(entry.overflow)
        for run in entry.runs:
            if run.layout is not None:
                layouts.append(run.layout)
        for region in entry.partitions:
            if region.layout is not None:
                layouts.append(region.layout)
            layouts.extend(region.overflow)
        return layouts

    def _scrub_entry(self, entry: CatalogEntry, report: dict) -> None:
        """Cross-structure invariants for one table (best effort).

        Skips tables whose pages are already reported corrupt — the scan
        would just re-raise what the page walk recorded.
        """
        if entry.plan is None:
            return
        table = Table(self, entry)
        try:
            rows = list(table.scan_reference())
        except RodentStoreError:
            return  # unreadable data: the page/WAL walk already said why
        if len(rows) != table.row_count:
            report["row_count_mismatches"].append(
                {
                    "table": entry.name,
                    "stored": table.row_count,
                    "scanned": len(rows),
                }
            )
        self._scrub_synopses(entry, rows, report)
        self._scrub_partitions(entry, table, report)

    def _scrub_synopses(
        self, entry: CatalogEntry, rows: list[tuple], report: dict
    ) -> None:
        """Zone synopses must *contain* the actual data: a zone claiming
        tighter bounds than reality would let pruning skip live rows."""
        zones = []
        for layout in self._entry_layouts(entry):
            s = layout.synopsis
            if s is None:
                continue
            zones.extend(s.page_zones)
            for group in s.group_zones:
                zones.extend(group)
            zones.extend(s.cell_zones)
            zones.extend(s.folded_zones)
        for region in entry.partitions:
            if region.pending_zone is not None:
                zones.append(region.pending_zone)
        if entry.pending_zone is not None:
            zones.append(entry.pending_zone)
        if not zones or not rows:
            return
        names = _scan_schema(entry.plan).names()
        for i, name in enumerate(names):
            union_min = union_max = None
            covered = False
            for zone in zones:
                fz = zone.fields.get(name)
                if fz is None or fz.min_value is None:
                    continue
                covered = True
                try:
                    if union_min is None or fz.min_value < union_min:
                        union_min = fz.min_value
                    if union_max is None or fz.max_value > union_max:
                        union_max = fz.max_value
                except TypeError:
                    return  # mixed types: containment is undefined
            if not covered:
                continue
            values = [r[i] for r in rows if i < len(r) and r[i] is not None]
            if not values:
                continue
            try:
                actual_min, actual_max = min(values), max(values)
                out_of_bounds = (
                    actual_min < union_min or actual_max > union_max
                )
            except TypeError:
                continue
            if out_of_bounds:
                report["synopsis_mismatches"].append(
                    {
                        "table": entry.name,
                        "field": name,
                        "zone_bounds": [union_min, union_max],
                        "actual_bounds": [actual_min, actual_max],
                    }
                )

    def _scrub_partitions(
        self, entry: CatalogEntry, table: Table, report: dict
    ) -> None:
        """Every row stored in a region must route back to that region."""
        if not entry.partitions or entry.plan is None:
            return
        try:
            router = self.router_for(entry)
        except RodentStoreError:
            return
        for region in entry.partitions:
            try:
                region_rows = table._region_rows(region)
            except RodentStoreError:
                continue  # unreadable region: already reported
            for row in region_rows:
                try:
                    locator = router.locate(row)
                except RodentStoreError:
                    break
                if locator.key != region.key:
                    report["partition_mismatches"].append(
                        {
                            "table": entry.name,
                            "pid": region.pid,
                            "expected_key": region.key,
                            "routed_key": locator.key,
                        }
                    )
                    break

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down deterministically: stop the scan thread pool (joining
        its workers so pytest never sees leaked threads), checkpoint (or
        flush) every table's buffered state, and release the storage stack.
        A durable store that closes cleanly truncates its WAL — reopening
        finds an empty log and skips recovery; any other exit leaves the
        log in place and the next open replays it. Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self.shutdown_scan_executor()
        try:
            self.checkpoint()
        except StorageError:
            # A poisoned (fault-injected) store cannot checkpoint; leave
            # the WAL for recovery and release the stack.
            pass
        self.wal.close()
        self.disk.close()

    def shutdown_scan_executor(self) -> None:
        """Stop and join the shared scan workers (no-op when never used)."""
        executor = self._scan_executor
        self._scan_executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    def scan_executor(self):
        """The shared partition-scan thread pool, sized to
        :attr:`scan_workers` (rebuilt when the knob changes)."""
        from concurrent.futures import ThreadPoolExecutor

        workers = max(2, int(self.scan_workers))
        executor = self._scan_executor
        if executor is not None and executor._max_workers != workers:
            executor.shutdown(wait=True)
            executor = None
        if executor is None:
            executor = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="rodent-scan",
            )
            self._scan_executor = executor
        return executor

    def __enter__(self) -> "RodentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- DDL ---------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema,
        layout: str | ast.Node | None = None,
    ) -> Table:
        """Create a table with an optional declarative physical design.

        ``layout`` is a storage-algebra expression (text or AST); omitted, it
        defaults to the canonical row-major representation ``rows(name)``.
        """
        expr = self._resolve_expr(name, layout)
        with self.mutate() as m:
            entry = self.catalog.create(name, schema)
            entry.plan = self._interpreter().compile(expr)
            # Log the (empty) catalog entry so a table created after the
            # last checkpoint exists again at recovery — otherwise its
            # replayed row inserts would have nowhere to land.
            m.touch(name)
        return Table(self, entry)

    def _resolve_expr(
        self, name: str, layout: str | ast.Node | None
    ) -> ast.Node:
        if layout is None:
            return ast.TableRef(name)
        if isinstance(layout, str):
            return parse(layout)
        return layout

    def _interpreter(self) -> AlgebraInterpreter:
        return AlgebraInterpreter(self.catalog.schemas())

    def drop_table(self, name: str) -> None:
        entry = self.catalog.entry(name)
        with self.mutate(name) as m:
            with entry.mvcc.lock:
                layouts: list[StoredLayout | None] = [entry.layout]
                layouts.extend(entry.overflow)
                layouts.extend(r.layout for r in entry.runs)
                for region in entry.partitions:
                    layouts.append(region.layout)
                    layouts.extend(region.overflow)
                # Regions keep their fields — a pinned scan may still be
                # reading them; only the page frees are deferred.
                entry.mvcc.retire(self._layout_freer(*layouts))
            if entry.monitor is not None:
                entry.monitor.forget_partitions([])
            self.catalog.drop(name)
            m.mark_dropped(name)

    def _free_layout(self, layout: StoredLayout | None) -> None:
        """Immediately free a layout's pages (caller must know no snapshot
        can still reference them; writers use :meth:`_layout_freer` +
        ``EntryMVCC.retire`` instead)."""
        if layout is None:
            return
        for page_id in layout.page_ids():
            self.pool.discard(page_id)
            self.disk.free_page(page_id)

    def _layout_freer(self, *layouts: StoredLayout | None) -> Callable[[], None]:
        """A deferred free over the pages of ``layouts``.

        The page-id list is captured eagerly (the layouts may be mutated
        after retirement); the free itself — pool frame discard plus disk
        free-list return — runs when the entry's MVCC machinery decides the
        last pinned reader has drained.
        """
        pages: list[int] = []
        for layout in layouts:
            if layout is not None:
                pages.extend(layout.page_ids())

        def free() -> None:
            for page_id in pages:
                self.pool.discard(page_id)
                self.disk.free_page(page_id)

        return free

    # -- data loading ----------------------------------------------------------

    def load(self, name: str, records: Sequence[Sequence[Any]]) -> Table:
        """Bulk-load logical records, rendering the table's physical design."""
        entry = self.catalog.entry(name)
        if entry.plan is None:
            raise CatalogError(f"table {name!r} has no physical plan")
        return self._load_with_plan(entry, entry.plan, records)

    def _load_with_plan(
        self,
        entry: CatalogEntry,
        plan: PhysicalPlan,
        records: Sequence[Sequence[Any]],
        reset_overflow: bool = False,
    ) -> Table:
        """(Re)render ``entry`` under ``plan`` from logical ``records``.

        The shared core of :meth:`load` and :meth:`relayout`. Rendering
        happens *before* any entry state changes; the plan and the new
        layout then swap in together under the entry's MVCC lock (a pinned
        scan either sees the old plan+layout pair or the new one, never a
        mismatch), and the superseded pages are retired, not freed — the
        last draining reader frees them. The whole operation is one
        transaction: the rendered pages and the new catalog image are
        WAL-logged at commit.

        A plain (re)load keeps accumulated overflow regions, exactly like
        the historical bulk-load path; ``reset_overflow=True`` (re-layouts)
        folds them into ``records`` beforehand and retires them too.
        """
        name = entry.name
        schema = entry.logical_schema
        with self.mutate(name) as m:
            coerced = [schema.coerce_record(r) for r in records]
            stats = TableStats.collect(schema, coerced)
            if plan.kind == LAYOUT_PARTITIONED:
                table = self._load_partitioned(
                    entry, plan, coerced, stats, m, reset_overflow
                )
                return table
            if plan.kind == LAYOUT_LEVELLED:
                return self._load_levelled(
                    entry, plan, coerced, stats, m, reset_overflow
                )
            evaluated = self._evaluate(plan, {name: (coerced, schema)})
            new_layout = self.renderer.render(plan, evaluated)
            with entry.mvcc.lock:
                retire: list[StoredLayout | None] = [entry.layout]
                retire.extend(r.layout for r in entry.runs)
                for region in entry.partitions:
                    retire.append(region.layout)
                    retire.extend(region.overflow)
                if reset_overflow:
                    retire.extend(entry.overflow)
                    entry.overflow = []
                entry.plan = plan
                entry.layout = new_layout
                entry.stats = stats
                # A (re)load swaps the physical design wholesale: synopses
                # were re-rendered above, and every derived structure
                # describing the old layout — secondary/spatial indexes,
                # the pending buffer and its zone — goes with it
                # (re-layouts fold pending rows into ``records`` first).
                entry.indexes.clear()
                entry.spatial_indexes.clear()
                entry.pending.clear()
                entry.pending_zone = None
                entry.partitions = []
                entry.region_index.clear()
                entry.partitions_loaded = False
                entry.next_partition_id = 0
                entry.runs = []
                entry.level_tombstones = []
                entry.mvcc.retire(self._layout_freer(*retire))
                self._wa_note(entry, new_layout, ingest=True)
            if entry.monitor is not None:
                entry.monitor.forget_partitions([])
            m.log_layout(new_layout)
            m.touch(name)
            return Table(self, entry)

    # -- horizontal partitions ---------------------------------------------

    def router_for(self, entry: CatalogEntry) -> PartitionRouter:
        """The entry's partition router, bound to its stored-record shape."""
        assert entry.plan is not None and entry.plan.partition is not None
        return PartitionRouter(
            entry.plan.partition, _scan_schema(entry.plan).names()
        )

    def _load_partitioned(
        self,
        entry: CatalogEntry,
        plan: PhysicalPlan,
        coerced: list[tuple],
        stats: TableStats,
        m: _Mutation,
        reset_overflow: bool = False,
    ) -> Table:
        """Render one region per partition (the partitioned bulk load).

        The partition key is evaluated on the *stored-record shape* — the
        template's record-level pipeline output — so bulk load and inserts
        route identically. Fixed splits (range/hash) render every region
        eagerly (empty ones included: the partition map is part of the
        physical design); value partitions appear in first-seen key order,
        which keeps scan order identical to the pre-partitioned grouped
        rendering of ``partition_C(N)``.

        The new region list is built privately and swapped into the entry
        in one step under the MVCC lock, with the superseded regions'
        pages retired for the last pinned reader to free.
        """
        table = Table(self, entry)
        rows = table._apply_record_pipeline(coerced, plan=plan)
        router = PartitionRouter(
            plan.partition, _scan_schema(plan).names()
        )
        new_regions: list[PartitionRegion] = []
        lookup: dict = {}
        next_pid = 0
        for locator, part_rows in router.split(rows):
            region, next_pid = _find_or_create_region(
                plan, new_regions, lookup, next_pid, locator
            )
            assert region.plan is not None
            region.layout = self._render_region(
                plan, region.plan, part_rows
            )
        with entry.mvcc.lock:
            retire: list[StoredLayout | None] = [entry.layout]
            retire.extend(r.layout for r in entry.runs)
            for region in entry.partitions:
                retire.append(region.layout)
                retire.extend(region.overflow)
            if reset_overflow:
                retire.extend(entry.overflow)
                entry.overflow = []
            entry.plan = plan
            entry.layout = None
            entry.stats = stats
            entry.partitions = new_regions
            entry.region_index = lookup
            entry.next_partition_id = next_pid
            entry.partitions_loaded = True
            entry.indexes.clear()
            entry.spatial_indexes.clear()
            entry.pending.clear()
            entry.pending_zone = None
            entry.runs = []
            entry.level_tombstones = []
            entry.mvcc.retire(self._layout_freer(*retire))
            for region in new_regions:
                self._wa_note(entry, region.layout, ingest=True)
        if entry.monitor is not None:
            # A reload rebuilds the partition map from scratch and restarts
            # pid allocation at 0, so skew recorded against the old regions
            # must be dropped entirely — new regions reusing an old pid
            # must not inherit its weight.
            entry.monitor.forget_partitions([])
        for region in new_regions:
            m.log_layout(region.layout)
        m.touch(entry.name)
        return Table(self, entry)

    def _load_levelled(
        self,
        entry: CatalogEntry,
        plan: PhysicalPlan,
        coerced: list[tuple],
        stats: TableStats,
        m: _Mutation,
        reset_overflow: bool = False,
    ) -> Table:
        """Bulk-load a levelled table: render the records as ONE run.

        A bulk load is already "fully compacted" — the run lands at its
        size class directly and the pending buffer starts empty. Keyed
        tables dedup to last-writer-wins first, exactly like a seal. The
        sequence space restarts (no tombstones survive a reload).
        """
        assert plan.levels is not None
        spec = plan.levels
        table = Table(self, entry)
        rows = table._apply_record_pipeline(coerced, plan=plan)
        if spec.key is not None and rows:
            resolver = _LevelResolver(spec, _scan_schema(plan).names(), [])
            rows = resolver.resolve_pending([tuple(r) for r in rows])
        run_plan = plan.level_plans[0]
        new_layout = (
            self._render_region(plan, run_plan, rows) if rows else None
        )
        with entry.mvcc.lock:
            retire: list[StoredLayout | None] = [entry.layout]
            retire.extend(r.layout for r in entry.runs)
            for region in entry.partitions:
                retire.append(region.layout)
                retire.extend(region.overflow)
            if reset_overflow:
                retire.extend(entry.overflow)
                entry.overflow = []
            entry.plan = plan
            entry.layout = None
            entry.stats = stats
            entry.indexes.clear()
            entry.spatial_indexes.clear()
            entry.pending.clear()
            entry.pending_zone = None
            entry.partitions = []
            entry.region_index.clear()
            entry.partitions_loaded = False
            entry.next_partition_id = 0
            entry.level_tombstones = []
            entry.next_run_id = 0
            entry.next_run_seq = 1
            entry.runs = []
            if new_layout is not None:
                entry.runs.append(
                    LevelRun(
                        rid=entry.next_run_id,
                        level=spec.level_of(
                            len(rows), self.level_seal_rows
                        ),
                        min_seq=0,
                        max_seq=0,
                        plan=run_plan,
                        layout=new_layout,
                    )
                )
                entry.next_run_id += 1
            entry.mvcc.retire(self._layout_freer(*retire))
            self._wa_note(entry, new_layout, ingest=True)
        if entry.monitor is not None:
            entry.monitor.forget_partitions([])
        if new_layout is not None:
            m.log_layout(new_layout)
        m.touch(entry.name)
        return Table(self, entry)

    def _region_for(
        self, entry: CatalogEntry, locator: Locator
    ) -> PartitionRegion:
        """Find or create the region ``locator`` addresses.

        Lookups go through a per-entry ``key -> region`` index (rebuilt
        whenever the partition list changed shape) so bulk insert routing
        stays O(rows), not O(rows x partitions). Range regions insert in
        bucket order so the table's partition list stays sorted by key
        range (the property that lets a range-partitioned scan serve
        ``ORDER BY key`` without sorting).
        """
        assert entry.plan is not None and entry.plan.partition is not None
        lookup = entry.region_index
        if len(lookup) != len(entry.partitions):
            lookup.clear()
            lookup.update({r.key: r for r in entry.partitions})
        region, entry.next_partition_id = _find_or_create_region(
            entry.plan,
            entry.partitions,
            lookup,
            entry.next_partition_id,
            locator,
        )
        return region

    def _render_region(
        self,
        table_plan: PhysicalPlan,
        plan: PhysicalPlan,
        rows: Sequence[tuple],
    ) -> StoredLayout:
        """Render one region's rows (stored shape) under ``plan``.

        Takes the table plan and region plan explicitly — not the entry or
        a region — so callers can render *before* mutating any shared
        state: a failed render (e.g. a record exceeding page capacity
        under the new design) must leave the region exactly as it was, and
        a re-layout renders against the *new* table plan before swapping
        it in.
        """
        canonical = _scan_schema(table_plan).names()
        region_fields = _scan_schema(plan).names()
        if list(region_fields) != list(canonical):
            index = {f: i for i, f in enumerate(canonical)}
            order = [index[f] for f in region_fields]
            rows = [tuple(r[i] for i in order) for r in rows]
        residual = structural_residual(
            plan.expr, "__stored__", region_fields
        )
        return self.renderer.render_region(
            plan, residual, rows, region_fields
        )

    def relayout_partition(
        self, name: str, pid: int, layout: str | ast.Node
    ) -> Table:
        """Re-organize ONE partition under a new (non-partitioned) design.

        This is the adaptive loop's partition-granular rewrite: the region's
        rows (main layout + overflow + pending) are recovered, re-rendered
        under the new design, and swapped in — no other partition is read
        or written. The new design must retain every stored field (same
        non-lossy rule as whole-table re-layouts).
        """
        entry = self.catalog.entry(name)
        if entry.plan is None or entry.plan.kind != LAYOUT_PARTITIONED:
            raise StorageError(f"table {name!r} is not partitioned")
        region = next(
            (r for r in entry.partitions if r.pid == pid), None
        )
        if region is None:
            raise StorageError(f"table {name!r} has no partition {pid}")
        expr = self._resolve_expr(name, layout)
        new_plan = self._interpreter().compile(expr)
        if new_plan.kind == LAYOUT_PARTITIONED:
            raise StorageError(
                "a partition's design cannot itself be partitioned"
            )
        canonical = set(_scan_schema(entry.plan).names())
        produced = set(_scan_schema(new_plan).names())
        if canonical != produced:
            raise StorageError(
                f"partition design must keep the stored fields "
                f"{sorted(canonical)}; new design produces "
                f"{sorted(produced)}"
            )
        table = Table(self, entry)
        with self.mutate(name) as m:
            with self.adaptivity.pause():  # maintenance read, not workload
                rows = table._region_rows(region)
            # Render first: a failed render must leave the region untouched
            # (no plan/layout mismatch, no lost overflow/pending rows).
            new_layout = self._render_region(entry.plan, new_plan, rows)
            with entry.mvcc.lock:
                old_layout, old_overflow = region.layout, region.overflow
                region.plan = new_plan
                region.layout = new_layout
                region.overflow = []
                region.pending = []
                region.pending_zone = None
                entry.mvcc.retire(
                    self._layout_freer(old_layout, *old_overflow)
                )
                self._wa_note(entry, new_layout)
            m.log_layout(new_layout)
            m.touch(name)
        return table

    def _evaluate(
        self,
        plan: PhysicalPlan,
        tables: dict[str, tuple[list[tuple], Schema]],
    ) -> Evaluated:
        evaluator = Evaluator(
            {
                name: (records, tuple(schema.names()))
                for name, (records, schema) in tables.items()
            }
        )
        return evaluator.evaluate(plan.expr)

    # -- adaptivity: change a table's physical design ------------------------

    def relayout(
        self,
        name: str,
        layout: str | ast.Node,
        source_records: Sequence[Sequence[Any]] | None = None,
    ) -> Table:
        """Re-organize ``name`` under a new algebra expression.

        When ``source_records`` is omitted the current representation must
        retain every logical field (a design that projected fields away is
        lossy, so the caller has to re-supply the data — the paper's design
        tools would keep the base table for exactly this reason).
        """
        entry = self.catalog.entry(name)
        expr = self._resolve_expr(name, layout)
        new_plan = self._interpreter().compile(expr)
        with self.mutate(name):
            if source_records is None:
                source_records = self._recover_logical_records(entry)
            # One transaction: recover rows, render under the new plan,
            # swap plan+layout together (never a plan/layout mismatch),
            # retire the old pages and the folded-in overflow regions.
            return self._load_with_plan(
                entry, new_plan, source_records, reset_overflow=True
            )

    def _recover_logical_records(self, entry: CatalogEntry) -> list[tuple]:
        table = Table(self, entry)
        stored_fields = table.scan_schema().names()
        logical_fields = entry.logical_schema.names()
        missing = [f for f in logical_fields if f not in stored_fields]
        if missing:
            raise StorageError(
                f"cannot re-derive logical records: current layout dropped "
                f"field(s) {missing}; pass source_records"
            )
        # Recovery reads overflow + pending too — they are part of the
        # logical relation and must survive the re-layout. The scan is
        # maintenance traffic: keep it out of the workload monitor.
        with self.adaptivity.pause():
            return list(table.scan(fieldlist=logical_fields))

    def compact_table(self, name: str) -> None:
        """Fold overflow regions back into the main representation.

        Partitioned tables compact one region at a time: only partitions
        that actually accumulated overflow/pending rows are re-rendered,
        the rest are untouched.
        """
        entry = self.catalog.entry(name)
        if entry.plan is not None and entry.plan.kind == LAYOUT_LEVELLED:
            # Levelled tables compact by merging every run (+ pending)
            # into one — the LSM equivalent of folding overflow back in.
            self.compact_levels(name, full=True)
            return
        if entry.plan is not None and entry.plan.kind == LAYOUT_PARTITIONED:
            if not entry.partitions_loaded:
                raise StorageError(f"table {name!r} is not loaded")
            table = Table(self, entry)
            with self.mutate(name) as m:
                compacted = False
                for region in entry.partitions:
                    if not region.overflow and not region.pending:
                        continue
                    with self.adaptivity.pause():
                        rows = table._region_rows(region)
                    assert region.plan is not None
                    # Render before mutating: a failed render leaves the
                    # region (and its pending rows) exactly as they were.
                    new_layout = self._render_region(
                        entry.plan, region.plan, rows
                    )
                    with entry.mvcc.lock:
                        old_layout = region.layout
                        old_overflow = region.overflow
                        region.layout = new_layout
                        region.overflow = []
                        region.pending = []
                        region.pending_zone = None
                        entry.mvcc.retire(
                            self._layout_freer(old_layout, *old_overflow)
                        )
                        self._wa_note(entry, new_layout, compaction=True)
                    m.log_layout(new_layout)
                    compacted = True
                if compacted:
                    m.touch(name)
            return
        if entry.plan is None or entry.layout is None:
            raise StorageError(f"table {name!r} is not loaded")
        table = Table(self, entry)
        with self.mutate(name) as m:
            with self.adaptivity.pause():  # maintenance scan, not workload
                stored = list(table.scan())
            new_layout = self._rewrite_stored(entry, stored, m)
            with entry.mvcc.lock:
                entry.wa_pages_compacted += new_layout.total_pages()
                entry.wa_compactions += 1

    def _rewrite_stored(
        self,
        entry: CatalogEntry,
        stored: list[tuple],
        m: _Mutation,
    ) -> StoredLayout:
        """Re-render an unpartitioned table from stored-shape rows.

        The copy-on-write rewrite core shared by :meth:`compact_table` and
        ``Table.delete``/``Table.update``: render first, swap under the
        MVCC lock, retire the superseded layout + overflow, log the new
        pages and catalog image at commit. ``stored`` already folds the
        pending rows in (it comes from a full scan).
        """
        assert entry.plan is not None
        table = Table(self, entry)
        names = table.scan_schema().names()
        residual = structural_residual(
            entry.plan.expr, "__stored__", names
        )
        evaluator = Evaluator({"__stored__": (stored, tuple(names))})
        evaluated = evaluator.evaluate(residual)
        new_layout = self.renderer.render(entry.plan, evaluated)
        with entry.mvcc.lock:
            old_layout = entry.layout
            old_overflow = entry.overflow
            entry.layout = new_layout
            entry.overflow = []
            entry.indexes.clear()
            entry.spatial_indexes.clear()
            entry.pending.clear()
            entry.pending_zone = None
            entry.mvcc.retire(
                self._layout_freer(old_layout, *old_overflow)
            )
            self._wa_note(entry, new_layout)
        m.log_layout(new_layout)
        m.touch(entry.name)
        return new_layout

    # -- levelled (LSM) storage ---------------------------------------------

    def maintain_levels(self, name: str) -> None:
        """Post-insert maintenance for a levelled table.

        Seals the pending buffer into a level-0 run once it reaches
        :attr:`level_seal_rows`, then kicks a merge when any level's
        fan-out reached the design's ``k`` — in the background on the
        shared worker pool when ``scan_workers > 1``, synchronously
        otherwise (deterministic for tests and single-threaded stores).
        """
        entry = self.catalog.entry(name)
        plan = entry.plan
        if plan is None or plan.kind != LAYOUT_LEVELLED or self._closed:
            return
        if len(entry.pending) >= self.level_seal_rows:
            self.seal_level_run(name)
        assert plan.levels is not None
        counts: dict[int, int] = {}
        for run in entry.runs:
            counts[run.level] = counts.get(run.level, 0) + 1
        if any(c >= plan.levels.k for c in counts.values()):
            self._schedule_level_compaction(name)

    def _schedule_level_compaction(self, name: str) -> None:
        if self.scan_workers > 1 and not self._closed:
            with self._level_lock:
                if name in self._compacting:
                    return  # one in-flight merge per table
                self._compacting.add(name)

            def job() -> None:
                try:
                    self.compact_levels(name)
                except RodentStoreError:
                    # Lost a race (drop/close/fault); the next insert's
                    # maintain_levels retries if the fan-out still holds.
                    pass
                finally:
                    with self._level_lock:
                        self._compacting.discard(name)

            self.scan_executor().submit(job)
        else:
            self.compact_levels(name)

    def seal_level_run(self, name: str) -> StoredLayout | None:
        """Seal the pending buffer into an immutable level-0 run.

        Rendering happens before any shared state changes; the run then
        joins the manifest under the MVCC lock while the pending buffer
        clears — one transaction, so recovery sees the rows either as
        pending (the insert's WAL row records) or as the sealed run (the
        seal's catalog image), never both and never neither. Returns the
        new run's layout, or ``None`` when nothing was pending.
        """
        entry = self.catalog.entry(name)
        plan = entry.plan
        if plan is None or plan.kind != LAYOUT_LEVELLED:
            raise StorageError(f"table {name!r} is not levelled")
        assert plan.levels is not None
        with self.mutate(name) as m:
            rows = [tuple(r) for r in entry.pending]
            if not rows:
                return None
            if plan.levels.key is not None:
                resolver = _LevelResolver(
                    plan.levels, _scan_schema(plan).names(), []
                )
                rows = resolver.resolve_pending(rows)
            run_plan = plan.level_plans[0]
            layout = self._render_region(plan, run_plan, rows)
            with entry.mvcc.lock:
                seq = entry.next_run_seq
                entry.next_run_seq += 1
                entry.runs.append(
                    LevelRun(
                        rid=entry.next_run_id,
                        level=0,
                        min_seq=seq,
                        max_seq=seq,
                        plan=run_plan,
                        layout=layout,
                    )
                )
                entry.next_run_id += 1
                entry.pending.clear()
                entry.pending_zone = None
                self._wa_note(entry, layout, ingest=True)
            m.log_layout(layout)
            m.touch(name)
            return layout

    def compact_levels(
        self,
        name: str,
        inner: str | ast.Node | None = None,
        full: bool = False,
    ) -> dict:
        """Merge levelled runs (the LSM compaction).

        Partial mode (the default) repeatedly merges the shallowest level
        whose fan-out reached ``k`` into one run of the next level,
        cascading until no level is over fan-out. ``full=True`` folds
        *every* run plus the pending buffer into a single run — and with
        ``inner`` re-renders it under a new run design (the adaptive
        loop's levelled re-organization; the design must keep the stored
        fields). Returns ``{"merges", "runs_merged", "relayout"}``.
        """
        entry = self.catalog.entry(name)
        if entry.plan is None or entry.plan.kind != LAYOUT_LEVELLED:
            raise StorageError(f"table {name!r} is not levelled")
        report = {"merges": 0, "runs_merged": 0, "relayout": False}
        with self.mutate(name) as m:
            plan = entry.plan
            assert plan is not None and plan.levels is not None
            if inner is not None:
                plan = self._relevel_plan(entry, inner)
                full = True
                report["relayout"] = True
            if full:
                sources = list(entry.runs)
                if sources or entry.pending:
                    self._merge_runs_once(
                        entry, plan, sources, m,
                        target_level=None, include_pending=True,
                    )
                    report["merges"] = 1
                    report["runs_merged"] = len(sources)
                elif entry.plan is not plan:
                    # Nothing to merge: still swap in the new design so
                    # future seals render under it.
                    with entry.mvcc.lock:
                        entry.plan = plan
                m.touch(name)
                return report
            spec = plan.levels
            while True:
                counts: dict[int, int] = {}
                for run in entry.runs:
                    counts[run.level] = counts.get(run.level, 0) + 1
                over = sorted(
                    lvl for lvl, c in counts.items() if c >= spec.k
                )
                if not over:
                    break
                sources = [r for r in entry.runs if r.level == over[0]]
                # Merges target exactly level+1: size-based promotion
                # could interleave another level's sequence range inside
                # the merged run's, breaking newest-first resolution.
                self._merge_runs_once(
                    entry, plan, sources, m, target_level=over[0] + 1
                )
                report["merges"] += 1
                report["runs_merged"] += len(sources)
            if report["merges"]:
                m.touch(name)
        return report

    def _merge_runs_once(
        self,
        entry: CatalogEntry,
        plan: PhysicalPlan,
        sources: "list[LevelRun]",
        m: _Mutation,
        target_level: int | None,
        include_pending: bool = False,
    ) -> "LevelRun | None":
        """Merge ``sources`` (plus optionally the pending buffer) into one
        run, resolving tombstones and (keyed) duplicate keys exactly as a
        scan would — the same :class:`_LevelResolver` drives both.

        Resolution and row recovery happen under the *current* plan's
        canonical field order (tombstone values were recorded under it);
        the merged rows are then reordered for ``plan`` — the target
        design, which differs only during a levelled re-layout. The swap
        is atomic under the MVCC lock: sources out, merged run in, plan
        updated, applicable tombstones collected, superseded pages
        retired for the last pinned reader to free.
        """
        assert plan.levels is not None
        spec = plan.levels
        old_plan = entry.plan
        assert old_plan is not None
        old_names = list(_scan_schema(old_plan).names())
        table = Table(self, entry)
        resolver = _LevelResolver(spec, old_names, entry.level_tombstones)
        pending_rows: list[tuple] = []
        if include_pending:
            # Pending is the freshest segment: resolve it first so (keyed)
            # its keys shadow older copies in the sources. Tombstones never
            # apply to pending rows — they postdate every tombstone.
            pending_rows = resolver.resolve_pending(list(entry.pending))
        survivors: list[list[tuple]] = []
        for run in sorted(sources, key=lambda r: r.max_seq, reverse=True):
            resolver.enter_run(run)
            survivors.append(resolver.resolve(table._run_rows(run)))
        merged_rows: list[tuple] = []
        for rows in reversed(survivors):  # oldest source first
            merged_rows.extend(rows)
        merged_rows.extend(pending_rows)
        new_names = list(_scan_schema(plan).names())
        if new_names != old_names:
            idx = {f: i for i, f in enumerate(old_names)}
            order = [idx[f] for f in new_names]
            merged_rows = [tuple(r[i] for i in order) for r in merged_rows]
        run_plan = plan.level_plans[0]
        new_layout = (
            self._render_region(plan, run_plan, merged_rows)
            if merged_rows
            else None
        )
        if target_level is None:
            # Full compaction: one resulting run cannot interleave any
            # other run's range, so its size class is safe to use.
            target_level = max(
                [spec.level_of(len(merged_rows), self.level_seal_rows)]
                + [r.level for r in sources]
            )
        with entry.mvcc.lock:
            source_ids = {r.rid for r in sources}
            remaining = [r for r in entry.runs if r.rid not in source_ids]
            merged: LevelRun | None = None
            if new_layout is not None:
                if include_pending:
                    # A full merge's output is the complete post-
                    # resolution state: folded-in pending rows are newer
                    # than every tombstone (an inherited seq would let a
                    # surviving tombstone suppress them at scan), and
                    # every tombstone has been applied to every source —
                    # a fresh sequence lets the GC below drop them all.
                    max_seq = entry.next_run_seq
                    entry.next_run_seq += 1
                elif sources:
                    max_seq = max(r.max_seq for r in sources)
                else:
                    max_seq = entry.next_run_seq
                    entry.next_run_seq += 1
                min_seq = min(
                    (r.min_seq for r in sources), default=max_seq
                )
                merged = LevelRun(
                    rid=entry.next_run_id,
                    level=target_level,
                    min_seq=min_seq,
                    max_seq=max_seq,
                    plan=run_plan,
                    layout=new_layout,
                )
                entry.next_run_id += 1
                remaining.append(merged)
            remaining.sort(key=lambda r: r.max_seq)
            entry.runs = remaining
            # A tombstone still applies only to runs older than its seq;
            # with none left it is garbage (a full merge drops them all).
            entry.level_tombstones = [
                t for t in entry.level_tombstones
                if any(r.max_seq < t[0] for r in remaining)
            ]
            if include_pending:
                entry.pending.clear()
                entry.pending_zone = None
            entry.plan = plan
            entry.mvcc.retire(
                self._layout_freer(*(r.layout for r in sources))
            )
            self._wa_note(entry, new_layout, compaction=True)
        if new_layout is not None:
            m.log_layout(new_layout)
        return merged

    def _relevel_plan(
        self, entry: CatalogEntry, inner: str | ast.Node
    ) -> PhysicalPlan:
        """Compile a new run design for a levelled table.

        ``inner`` may be the run design alone (it is wrapped in the
        table's current ``levels[k; ratio; key]`` parameters) or a full
        ``levels(...)`` expression. The result must keep every stored
        field — the same non-lossy rule as partition re-layouts.
        """
        assert entry.plan is not None and entry.plan.levels is not None
        spec = entry.plan.levels
        expr = self._resolve_expr(entry.name, inner)
        if not isinstance(expr, ast.Levels):
            expr = ast.Levels(expr, spec.k, spec.ratio, spec.key)
        new_plan = self._interpreter().compile(expr)
        if new_plan.kind != LAYOUT_LEVELLED:
            raise StorageError(
                f"table {entry.name!r}: levelled re-layout must stay "
                f"levelled"
            )
        canonical = set(_scan_schema(entry.plan).names())
        produced = set(_scan_schema(new_plan).names())
        if canonical != produced:
            raise StorageError(
                f"run design must keep the stored fields "
                f"{sorted(canonical)}; new design produces "
                f"{sorted(produced)}"
            )
        return new_plan

    def _wa_note(
        self,
        entry: CatalogEntry,
        layout: StoredLayout | None,
        ingest: bool = False,
        compaction: bool = False,
    ) -> None:
        """Charge a rendered layout to the entry's write-amplification
        ledger: every render adds to ``wa_bytes_written``; first-time
        renders of freshly ingested rows also add to ``wa_bytes_ingested``;
        compaction renders count their rewritten pages. The ratio is
        surfaced by ``storage_stats()``."""
        if layout is None:
            return
        pages = layout.total_pages()
        nbytes = pages * self.disk.page_size
        entry.wa_bytes_written += nbytes
        if ingest:
            entry.wa_bytes_ingested += nbytes
        if compaction:
            entry.wa_pages_compacted += pages
            entry.wa_compactions += 1

    def render_overflow_region(
        self, schema: Schema, records: Sequence[tuple]
    ) -> StoredLayout:
        """Render a row-major overflow region (used by Table.flush_inserts)."""
        plan = PhysicalPlan(
            expr=ast.TableRef("__overflow__"),
            kind=LAYOUT_ROWS,
            schema=schema,
        )
        evaluated = Evaluated(list(records), tuple(schema.names()))
        return self.renderer.render(plan, evaluated)

    def adapt(self, name: str | None = None) -> dict:
        """Run the adaptive loop now: advise on the observed workload and
        reorganize when a clearly better design exists.

        Equivalent to the periodic check the controller runs every
        ``adapt_interval`` observed scans (when ``adaptive=True``), but
        operator-initiated: the minimum-observation gate and the rewrite
        amortization charge are waived, the hysteresis margin is not.
        Returns the decision for ``name``, or ``{table: decision}`` for
        every table when ``name`` is omitted.
        """
        if name is not None:
            return self.adaptivity.check(name, force=True)
        return self.adaptivity.check_all(force=True)

    # -- persistence ---------------------------------------------------------

    def save_catalog(self, path: str) -> None:
        """Persist schemas, physical designs, and layout metadata as JSON.

        Combined with a file-backed page store, this makes the database
        reopenable: ``RodentStore.open(db_path, catalog_path)``.
        """
        from repro.engine.persistence import save_catalog

        self.pool.flush_all()
        save_catalog(self, path)

    @classmethod
    def open(
        cls,
        path: str,
        catalog_path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        **kwargs: Any,
    ) -> "RodentStore":
        """Reopen a store from its page file and saved catalog."""
        from repro.engine.persistence import load_catalog

        store = cls(path=path, page_size=page_size, **kwargs)
        if not store.catalog.names():
            # A durable store already loaded its catalog during recovery;
            # everything else loads it here.
            load_catalog(store, catalog_path)
        return store

    # -- access ------------------------------------------------------------

    def table(self, name: str) -> Table:
        return Table(self, self.catalog.entry(name))

    def query(self, table: str):
        """A fluent :class:`~repro.query.frontend.Q` builder on ``table``."""
        from repro.query.frontend import Q

        return Q(self, table)

    def tables(self) -> list[str]:
        return self.catalog.names()

    # -- measurement ---------------------------------------------------------

    def storage_stats(self) -> dict:
        """Cumulative storage-layer counters: buffer pool and disk.

        Buffer-pool hit rate and eviction counts expose whether a workload
        fits in memory; the disk counters are the paper's pages/seeks
        metric since store creation (use :meth:`run_cold` for per-query
        deltas). Pruned scans show up as fewer pool fetches (hits+misses)
        and fewer disk ``page_reads``.
        """
        pool = self.pool.stats
        disk = self.disk.stats
        tables: dict[str, dict] = {}
        for entry in self.catalog:
            info: dict[str, Any] = {}
            if entry.plan is not None and (
                entry.plan.kind == LAYOUT_PARTITIONED
            ):
                info.update(
                    {
                        "partitioned": True,
                        "partition_count": len(entry.partitions),
                        "partition_scans": entry.partition_scans,
                        "partitions_pruned": entry.partitions_pruned_total,
                        "partitions": [
                            {
                                "pid": region.pid,
                                "key": region.describe_key(),
                                "rows": region.row_count,
                                "pages": region.total_pages(),
                                "layout": region.plan.describe()
                                if region.plan is not None
                                else None,
                                "overflow_regions": len(region.overflow),
                                "pending_rows": len(region.pending),
                            }
                            for region in entry.partitions
                        ],
                    }
                )
            if entry.plan is not None and (
                entry.plan.kind == LAYOUT_LEVELLED
            ):
                levels: dict[int, int] = {}
                for run in entry.runs:
                    levels[run.level] = levels.get(run.level, 0) + 1
                info.update(
                    {
                        "levelled": True,
                        "run_count": len(entry.runs),
                        "levels": {
                            str(lvl): levels[lvl] for lvl in sorted(levels)
                        },
                        "pending_rows": len(entry.pending),
                        "tombstones": len(entry.level_tombstones),
                        "runs": [
                            {
                                "rid": run.rid,
                                "level": run.level,
                                "rows": run.row_count,
                                "pages": run.total_pages(),
                                "seq": [run.min_seq, run.max_seq],
                            }
                            for run in entry.runs
                        ],
                    }
                )
            if entry.wa_bytes_written:
                ingested = entry.wa_bytes_ingested
                info["write_amplification"] = {
                    "bytes_ingested": ingested,
                    "bytes_written": entry.wa_bytes_written,
                    "pages_rewritten_by_compaction": (
                        entry.wa_pages_compacted
                    ),
                    "compactions": entry.wa_compactions,
                    "factor": (
                        entry.wa_bytes_written / ingested
                        if ingested
                        else None
                    ),
                }
            if info:
                tables[entry.name] = info
        return {
            "adaptivity": self.adaptivity.report(),
            "tables": tables,
            "buffer_pool": {
                "capacity": self.pool.capacity,
                "resident_pages": len(self.pool),
                "hits": pool.hits,
                "misses": pool.misses,
                "fetches": pool.hits + pool.misses,
                "evictions": pool.evictions,
                "flushes": pool.flushes,
                "hit_rate": pool.hit_rate,
            },
            "disk": {
                "page_reads": disk.page_reads,
                "page_writes": disk.page_writes,
                "read_seeks": disk.read_seeks,
                "write_seeks": disk.write_seeks,
                "allocated_pages": self.disk.num_pages,
            },
            "wal": {
                "wal_bytes": self.wal.size_bytes,
                "appends": self.wal.appends,
                "fsyncs": self.wal.fsyncs,
                "flushed_lsn": self.wal.flushed_lsn,
            },
            "transactions": {
                "txns_committed": self.transactions.committed,
                "txns_aborted": self.transactions.aborted,
                "active": self.transactions.active_count,
            },
            "recovery": {
                "durable": self.durable,
                "recoveries_run": self.recoveries_run,
                "checkpoints": self.checkpoints,
                "last_recovery": self.recovery_summary,
            },
            "integrity": {
                "checksums": self.disk.verify_checksums,
                "degraded_reads": self.degraded_reads,
                **self.integrity.snapshot(),
            },
        }

    def run_cold(self, query: Callable[[], Any]) -> tuple[Any, IOStats]:
        """Run ``query`` against a cold cache, returning (result, I/O delta).

        This is the measurement harness for the paper's "number of pages read
        per query" metric: the buffer pool is emptied, decoded-chunk caches
        are dropped, and the simulated disk head reset so each query pays
        its true I/O.
        """
        for entry in self.catalog:
            if entry.layout is not None:
                entry.layout.clear_caches()
            for run in entry.runs:
                if run.layout is not None:
                    run.layout.clear_caches()
            for region in entry.partitions:
                if region.layout is not None:
                    region.layout.clear_caches()
        self.pool.clear()
        self.disk.reset_head()
        with self.disk.measure() as io:
            result = query()
        return result, io


def _find_or_create_region(
    plan: PhysicalPlan,
    partitions: list[PartitionRegion],
    lookup: dict,
    next_pid: int,
    locator: Locator,
) -> tuple[PartitionRegion, int]:
    """Find ``locator``'s region in ``partitions`` or create it.

    Pure list/dict manipulation shared by live routing
    (:meth:`RodentStore._region_for`, against the entry's lists) and the
    partitioned bulk load (against private lists that swap in atomically).
    Range regions insert in bucket order so the partition list stays sorted
    by key range. Returns ``(region, next_pid)``.
    """
    assert plan.partition is not None
    found = lookup.get(locator.key)
    if found is not None:
        return found, next_pid
    template = plan.partition_plans[0]
    region = PartitionRegion(
        pid=next_pid,
        key=locator.key,
        lower=locator.lower,
        upper=locator.upper,
        plan=template,
    )
    next_pid += 1
    if plan.partition.method == "range":
        at = len(partitions)
        for i, existing in enumerate(partitions):
            if existing.key > region.key:
                at = i
                break
        partitions.insert(at, region)
    else:
        partitions.append(region)
    lookup[region.key] = region
    return region, next_pid
