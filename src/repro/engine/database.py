"""The RodentStore engine: wiring of Figure 1.

``RodentStore`` owns the storage stack (disk manager, buffer pool, WAL,
transactions), the catalog, the algebra interpreter, and the layout renderer.
A front end (SQL engine, array system, ORM, or — here — the mini relational
API in :mod:`repro.query.frontend`) creates tables, declares their physical
design with a storage-algebra expression, loads data, and queries through the
:class:`repro.engine.table.Table` access methods.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.algebra import ast
from repro.algebra.interpreter import AlgebraInterpreter
from repro.algebra.parser import parse
from repro.algebra.physical import (
    LAYOUT_PARTITIONED,
    LAYOUT_ROWS,
    PhysicalPlan,
)
from repro.algebra.transforms import Evaluated, Evaluator
from repro.engine.catalog import Catalog, CatalogEntry, PartitionRegion
from repro.engine.cost import CostModel
from repro.engine.stats import TableStats
from repro.engine.table import Table, _scan_schema, structural_residual
from repro.errors import CatalogError, StorageError
from repro.layout.partitioning import Locator, PartitionRouter
from repro.layout.renderer import LayoutRenderer, StoredLayout
from repro.storage.buffer import BufferPool
from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskManager, IOStats
from repro.storage.locks import LockManager
from repro.storage.transactions import TransactionManager
from repro.storage.wal import WriteAheadLog
from repro.types.schema import Schema


class RodentStore:
    """An adaptive, declarative storage system (single node).

    Args:
        path: database file path, or ``None`` for an in-memory store.
        page_size: disk page size in bytes (the paper's case study uses
            1000 KB pages; benchmarks here default to smaller pages at
            smaller data scale).
        pool_capacity: buffer pool frames.
        eviction: buffer pool policy (``"lru"`` or ``"clock"``).

    Example::

        store = RodentStore(page_size=8192)
        store.create_table(
            "Traces",
            Schema.of("t:int", "lat:int", "lon:int", "id:int"),
            layout="zorder(grid[lat, lon],[1000, 1000](Traces))",
        )
        store.load("Traces", records)
        for r in store.table("Traces").scan(predicate=Rect(...)):
            ...
    """

    def __init__(
        self,
        path: str | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        pool_capacity: int = 256,
        eviction: str = "lru",
        wal_path: str | None = None,
        cost_model: CostModel | None = None,
        adaptive: bool = False,
        adapt_interval: int = 64,
        adapt_hysteresis: float = 0.15,
        scan_workers: int = 0,
        read_latency_s: float = 0.0,
    ):
        from repro.engine.adaptive import AdaptiveController

        self.disk = DiskManager(
            path, page_size=page_size, read_latency_s=read_latency_s
        )
        self.pool = BufferPool(self.disk, capacity=pool_capacity, policy=eviction)
        self.wal = WriteAheadLog(wal_path)
        self.locks = LockManager()
        self.transactions = TransactionManager(self.wal, self.pool, self.locks)
        self.catalog = Catalog()
        self.renderer = LayoutRenderer(self.pool)
        self.cost_model = cost_model or CostModel(page_size=page_size)
        #: Zone-map scan pruning (per-page/chunk/cell min-max synopses).
        #: Settable at runtime; benchmarks flip it for before/after runs.
        self.zone_pruning = True
        #: Whole-partition pruning: intersect predicate ranges with the
        #: partition map before any region's zone maps even load.
        #: Settable at runtime (benchmarks flip it for before/after runs).
        self.partition_pruning = True
        #: Worker threads for partition-parallel scans; 0/1 = serial.
        #: Settable at runtime — the shared executor is (re)built lazily.
        self.scan_workers = scan_workers
        self._scan_executor = None
        self._closed = False
        #: The adaptive loop (monitor → advise → reorganize). Scans are
        #: always monitored; automatic periodic reorganization only runs
        #: while :attr:`adaptive` is True (or on explicit :meth:`adapt`
        #: calls).
        self.adaptivity = AdaptiveController(
            self,
            enabled=adaptive,
            check_interval=adapt_interval,
            hysteresis=adapt_hysteresis,
        )

    @property
    def adaptive(self) -> bool:
        """Whether automatic periodic reorganization is on.

        A plain settable flag, symmetric with :attr:`zone_pruning`:
        ``store.adaptive = False`` pauses the automatic loop (monitoring
        continues; :meth:`adapt` still works). The controller itself —
        knobs, report, policies — lives at :attr:`adaptivity`.
        """
        return self.adaptivity.enabled

    @adaptive.setter
    def adaptive(self, value: bool) -> None:
        self.adaptivity.enabled = bool(value)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down deterministically: stop the scan thread pool (joining
        its workers so pytest never sees leaked threads), flush every
        table's buffered state, and release the storage stack. Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self.shutdown_scan_executor()
        self.pool.flush_all()
        self.wal.close()
        self.disk.close()

    def shutdown_scan_executor(self) -> None:
        """Stop and join the shared scan workers (no-op when never used)."""
        executor = self._scan_executor
        self._scan_executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    def scan_executor(self):
        """The shared partition-scan thread pool, sized to
        :attr:`scan_workers` (rebuilt when the knob changes)."""
        from concurrent.futures import ThreadPoolExecutor

        workers = max(2, int(self.scan_workers))
        executor = self._scan_executor
        if executor is not None and executor._max_workers != workers:
            executor.shutdown(wait=True)
            executor = None
        if executor is None:
            executor = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="rodent-scan",
            )
            self._scan_executor = executor
        return executor

    def __enter__(self) -> "RodentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- DDL ---------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema,
        layout: str | ast.Node | None = None,
    ) -> Table:
        """Create a table with an optional declarative physical design.

        ``layout`` is a storage-algebra expression (text or AST); omitted, it
        defaults to the canonical row-major representation ``rows(name)``.
        """
        entry = self.catalog.create(name, schema)
        expr = self._resolve_expr(name, layout)
        entry.plan = self._interpreter().compile(expr)
        return Table(self, entry)

    def _resolve_expr(
        self, name: str, layout: str | ast.Node | None
    ) -> ast.Node:
        if layout is None:
            return ast.TableRef(name)
        if isinstance(layout, str):
            return parse(layout)
        return layout

    def _interpreter(self) -> AlgebraInterpreter:
        return AlgebraInterpreter(self.catalog.schemas())

    def drop_table(self, name: str) -> None:
        entry = self.catalog.entry(name)
        self._free_layout(entry.layout)
        for overflow in entry.overflow:
            self._free_layout(overflow)
        self._drop_partitions(entry)
        self.catalog.drop(name)

    def _free_layout(self, layout: StoredLayout | None) -> None:
        if layout is None:
            return
        if layout.extent is not None:
            for page_id in layout.extent.page_ids:
                self.disk.free_page(page_id)
        for group in layout.column_groups:
            for page_id in group.extent.page_ids:
                self.disk.free_page(page_id)
        for mirror in layout.mirrors:
            self._free_layout(mirror)

    # -- data loading ----------------------------------------------------------

    def load(self, name: str, records: Sequence[Sequence[Any]]) -> Table:
        """Bulk-load logical records, rendering the table's physical design."""
        entry = self.catalog.entry(name)
        if entry.plan is None:
            raise CatalogError(f"table {name!r} has no physical plan")
        schema = entry.logical_schema
        coerced = [schema.coerce_record(r) for r in records]
        entry.stats = TableStats.collect(schema, coerced)
        if entry.plan.kind == LAYOUT_PARTITIONED:
            return self._load_partitioned(entry, coerced)
        evaluated = self._evaluate(entry.plan, {name: (coerced, schema)})
        old_layout = entry.layout
        entry.layout = self.renderer.render(entry.plan, evaluated)
        # A (re)load swaps the physical design wholesale: synopses were
        # re-rendered above, and every derived structure describing the old
        # layout — secondary/spatial indexes, the pending buffer and its
        # zone — must go with it (re-layouts fold pending rows into
        # ``records`` before calling here).
        entry.indexes.clear()
        entry.spatial_indexes.clear()
        entry.pending.clear()
        entry.pending_zone = None
        self._free_layout(old_layout)
        self._drop_partitions(entry)
        return Table(self, entry)

    # -- horizontal partitions ---------------------------------------------

    def router_for(self, entry: CatalogEntry) -> PartitionRouter:
        """The entry's partition router, bound to its stored-record shape."""
        assert entry.plan is not None and entry.plan.partition is not None
        return PartitionRouter(
            entry.plan.partition, _scan_schema(entry.plan).names()
        )

    def _load_partitioned(
        self, entry: CatalogEntry, coerced: list[tuple]
    ) -> Table:
        """Render one region per partition (the partitioned bulk load).

        The partition key is evaluated on the *stored-record shape* — the
        template's record-level pipeline output — so bulk load and inserts
        route identically. Fixed splits (range/hash) render every region
        eagerly (empty ones included: the partition map is part of the
        physical design); value partitions appear in first-seen key order,
        which keeps scan order identical to the pre-partitioned grouped
        rendering of ``partition_C(N)``.
        """
        table = Table(self, entry)
        rows = table._apply_record_pipeline(coerced)
        router = self.router_for(entry)
        old_regions = entry.partitions
        old_layout = entry.layout
        entry.partitions = []
        entry.region_index.clear()
        entry.next_partition_id = 0
        entry.partitions_loaded = True
        entry.layout = None
        for locator, part_rows in router.split(rows):
            region = self._region_for(entry, locator)
            assert region.plan is not None
            region.layout = self._render_region(
                entry, region.plan, part_rows
            )
        entry.indexes.clear()
        entry.spatial_indexes.clear()
        entry.pending.clear()
        entry.pending_zone = None
        for region in old_regions:
            self._free_region(region)
        self._free_layout(old_layout)
        if entry.monitor is not None:
            # A reload rebuilds the partition map from scratch and restarts
            # pid allocation at 0, so skew recorded against the old regions
            # must be dropped entirely — new regions reusing an old pid
            # must not inherit its weight.
            entry.monitor.forget_partitions([])
        return Table(self, entry)

    def _region_for(
        self, entry: CatalogEntry, locator: Locator
    ) -> PartitionRegion:
        """Find or create the region ``locator`` addresses.

        Lookups go through a per-entry ``key -> region`` index (rebuilt
        whenever the partition list changed shape) so bulk insert routing
        stays O(rows), not O(rows x partitions). Range regions insert in
        bucket order so the table's partition list stays sorted by key
        range (the property that lets a range-partitioned scan serve
        ``ORDER BY key`` without sorting).
        """
        assert entry.plan is not None and entry.plan.partition is not None
        lookup = entry.region_index
        if len(lookup) != len(entry.partitions):
            lookup.clear()
            lookup.update({r.key: r for r in entry.partitions})
        found = lookup.get(locator.key)
        if found is not None:
            return found
        template = entry.plan.partition_plans[0]
        region = PartitionRegion(
            pid=entry.next_partition_id,
            key=locator.key,
            lower=locator.lower,
            upper=locator.upper,
            plan=template,
        )
        entry.next_partition_id += 1
        if entry.plan.partition.method == "range":
            at = len(entry.partitions)
            for i, existing in enumerate(entry.partitions):
                if existing.key > region.key:
                    at = i
                    break
            entry.partitions.insert(at, region)
        else:
            entry.partitions.append(region)
        lookup[region.key] = region
        return region

    def _render_region(
        self,
        entry: CatalogEntry,
        plan: PhysicalPlan,
        rows: Sequence[tuple],
    ) -> StoredLayout:
        """Render one region's rows (stored shape) under ``plan``.

        Takes the plan explicitly — not a region — so callers can render
        *before* mutating any region state: a failed render (e.g. a record
        exceeding page capacity under the new design) must leave the
        region exactly as it was.
        """
        assert entry.plan is not None
        canonical = _scan_schema(entry.plan).names()
        region_fields = _scan_schema(plan).names()
        if list(region_fields) != list(canonical):
            index = {f: i for i, f in enumerate(canonical)}
            order = [index[f] for f in region_fields]
            rows = [tuple(r[i] for i in order) for r in rows]
        residual = structural_residual(
            plan.expr, "__stored__", region_fields
        )
        return self.renderer.render_region(
            plan, residual, rows, region_fields
        )

    def _free_region(self, region: PartitionRegion) -> None:
        self._free_layout(region.layout)
        for overflow in region.overflow:
            self._free_layout(overflow)
        region.layout = None
        region.overflow = []
        region.pending = []
        region.pending_zone = None

    def _drop_partitions(self, entry: CatalogEntry) -> None:
        for region in entry.partitions:
            self._free_region(region)
        entry.partitions = []
        entry.region_index.clear()
        entry.partitions_loaded = False
        entry.next_partition_id = 0
        if entry.monitor is not None:
            entry.monitor.forget_partitions([])

    def relayout_partition(
        self, name: str, pid: int, layout: str | ast.Node
    ) -> Table:
        """Re-organize ONE partition under a new (non-partitioned) design.

        This is the adaptive loop's partition-granular rewrite: the region's
        rows (main layout + overflow + pending) are recovered, re-rendered
        under the new design, and swapped in — no other partition is read
        or written. The new design must retain every stored field (same
        non-lossy rule as whole-table re-layouts).
        """
        entry = self.catalog.entry(name)
        if entry.plan is None or entry.plan.kind != LAYOUT_PARTITIONED:
            raise StorageError(f"table {name!r} is not partitioned")
        region = next(
            (r for r in entry.partitions if r.pid == pid), None
        )
        if region is None:
            raise StorageError(f"table {name!r} has no partition {pid}")
        expr = self._resolve_expr(name, layout)
        new_plan = self._interpreter().compile(expr)
        if new_plan.kind == LAYOUT_PARTITIONED:
            raise StorageError(
                "a partition's design cannot itself be partitioned"
            )
        canonical = set(_scan_schema(entry.plan).names())
        produced = set(_scan_schema(new_plan).names())
        if canonical != produced:
            raise StorageError(
                f"partition design must keep the stored fields "
                f"{sorted(canonical)}; new design produces "
                f"{sorted(produced)}"
            )
        table = Table(self, entry)
        with self.adaptivity.pause():  # maintenance read, not workload
            rows = table._region_rows(region)
        # Render first: a failed render must leave the region untouched
        # (no plan/layout mismatch, no lost overflow/pending rows).
        new_layout = self._render_region(entry, new_plan, rows)
        old_layout, old_overflow = region.layout, region.overflow
        region.plan = new_plan
        region.layout = new_layout
        region.overflow = []
        region.pending = []
        region.pending_zone = None
        self._free_layout(old_layout)
        for overflow in old_overflow:
            self._free_layout(overflow)
        return table

    def _evaluate(
        self,
        plan: PhysicalPlan,
        tables: dict[str, tuple[list[tuple], Schema]],
    ) -> Evaluated:
        evaluator = Evaluator(
            {
                name: (records, tuple(schema.names()))
                for name, (records, schema) in tables.items()
            }
        )
        return evaluator.evaluate(plan.expr)

    # -- adaptivity: change a table's physical design ------------------------

    def relayout(
        self,
        name: str,
        layout: str | ast.Node,
        source_records: Sequence[Sequence[Any]] | None = None,
    ) -> Table:
        """Re-organize ``name`` under a new algebra expression.

        When ``source_records`` is omitted the current representation must
        retain every logical field (a design that projected fields away is
        lossy, so the caller has to re-supply the data — the paper's design
        tools would keep the base table for exactly this reason).
        """
        entry = self.catalog.entry(name)
        expr = self._resolve_expr(name, layout)
        new_plan = self._interpreter().compile(expr)
        if source_records is None:
            source_records = self._recover_logical_records(entry)
        old_overflow = entry.overflow
        # Swap the plan, then reuse the bulk-load path (which re-renders
        # synopses and invalidates indexes + pending for the new design).
        entry.plan = new_plan
        entry.overflow = []
        table = self.load(name, source_records)
        for overflow in old_overflow:
            self._free_layout(overflow)
        return table

    def _recover_logical_records(self, entry: CatalogEntry) -> list[tuple]:
        table = Table(self, entry)
        stored_fields = table.scan_schema().names()
        logical_fields = entry.logical_schema.names()
        missing = [f for f in logical_fields if f not in stored_fields]
        if missing:
            raise StorageError(
                f"cannot re-derive logical records: current layout dropped "
                f"field(s) {missing}; pass source_records"
            )
        # Recovery reads overflow + pending too — they are part of the
        # logical relation and must survive the re-layout. The scan is
        # maintenance traffic: keep it out of the workload monitor.
        with self.adaptivity.pause():
            return list(table.scan(fieldlist=logical_fields))

    def compact_table(self, name: str) -> None:
        """Fold overflow regions back into the main representation.

        Partitioned tables compact one region at a time: only partitions
        that actually accumulated overflow/pending rows are re-rendered,
        the rest are untouched.
        """
        entry = self.catalog.entry(name)
        if entry.plan is not None and entry.plan.kind == LAYOUT_PARTITIONED:
            if not entry.partitions_loaded:
                raise StorageError(f"table {name!r} is not loaded")
            table = Table(self, entry)
            for region in entry.partitions:
                if not region.overflow and not region.pending:
                    continue
                with self.adaptivity.pause():
                    rows = table._region_rows(region)
                assert region.plan is not None
                # Render before mutating: a failed render leaves the
                # region (and its pending rows) exactly as they were.
                new_layout = self._render_region(entry, region.plan, rows)
                old_layout, old_overflow = region.layout, region.overflow
                region.layout = new_layout
                region.overflow = []
                region.pending = []
                region.pending_zone = None
                self._free_layout(old_layout)
                for overflow in old_overflow:
                    self._free_layout(overflow)
            return
        if entry.plan is None or entry.layout is None:
            raise StorageError(f"table {name!r} is not loaded")
        table = Table(self, entry)
        with self.adaptivity.pause():  # maintenance scan, not workload
            stored = list(table.scan())
        residual = structural_residual(
            entry.plan.expr, "__stored__", table.scan_schema().names()
        )
        evaluator = Evaluator(
            {"__stored__": (stored, tuple(table.scan_schema().names()))}
        )
        evaluated = evaluator.evaluate(residual)
        old_layout = entry.layout
        old_overflow = entry.overflow
        entry.layout = self.renderer.render(entry.plan, evaluated)
        entry.overflow = []
        entry.indexes.clear()
        entry.spatial_indexes.clear()
        # ``stored`` already folded the pending rows into the new render.
        entry.pending.clear()
        entry.pending_zone = None
        self._free_layout(old_layout)
        for overflow in old_overflow:
            self._free_layout(overflow)

    def render_overflow_region(
        self, schema: Schema, records: Sequence[tuple]
    ) -> StoredLayout:
        """Render a row-major overflow region (used by Table.flush_inserts)."""
        plan = PhysicalPlan(
            expr=ast.TableRef("__overflow__"),
            kind=LAYOUT_ROWS,
            schema=schema,
        )
        evaluated = Evaluated(list(records), tuple(schema.names()))
        return self.renderer.render(plan, evaluated)

    def adapt(self, name: str | None = None) -> dict:
        """Run the adaptive loop now: advise on the observed workload and
        reorganize when a clearly better design exists.

        Equivalent to the periodic check the controller runs every
        ``adapt_interval`` observed scans (when ``adaptive=True``), but
        operator-initiated: the minimum-observation gate and the rewrite
        amortization charge are waived, the hysteresis margin is not.
        Returns the decision for ``name``, or ``{table: decision}`` for
        every table when ``name`` is omitted.
        """
        if name is not None:
            return self.adaptivity.check(name, force=True)
        return self.adaptivity.check_all(force=True)

    # -- persistence ---------------------------------------------------------

    def save_catalog(self, path: str) -> None:
        """Persist schemas, physical designs, and layout metadata as JSON.

        Combined with a file-backed page store, this makes the database
        reopenable: ``RodentStore.open(db_path, catalog_path)``.
        """
        from repro.engine.persistence import save_catalog

        self.pool.flush_all()
        save_catalog(self, path)

    @classmethod
    def open(
        cls,
        path: str,
        catalog_path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        **kwargs: Any,
    ) -> "RodentStore":
        """Reopen a store from its page file and saved catalog."""
        from repro.engine.persistence import load_catalog

        store = cls(path=path, page_size=page_size, **kwargs)
        load_catalog(store, catalog_path)
        return store

    # -- access ------------------------------------------------------------

    def table(self, name: str) -> Table:
        return Table(self, self.catalog.entry(name))

    def query(self, table: str):
        """A fluent :class:`~repro.query.frontend.Q` builder on ``table``."""
        from repro.query.frontend import Q

        return Q(self, table)

    def tables(self) -> list[str]:
        return self.catalog.names()

    # -- measurement ---------------------------------------------------------

    def storage_stats(self) -> dict:
        """Cumulative storage-layer counters: buffer pool and disk.

        Buffer-pool hit rate and eviction counts expose whether a workload
        fits in memory; the disk counters are the paper's pages/seeks
        metric since store creation (use :meth:`run_cold` for per-query
        deltas). Pruned scans show up as fewer pool fetches (hits+misses)
        and fewer disk ``page_reads``.
        """
        pool = self.pool.stats
        disk = self.disk.stats
        tables: dict[str, dict] = {}
        for entry in self.catalog:
            if entry.plan is None or entry.plan.kind != LAYOUT_PARTITIONED:
                continue
            tables[entry.name] = {
                "partitioned": True,
                "partition_count": len(entry.partitions),
                "partition_scans": entry.partition_scans,
                "partitions_pruned": entry.partitions_pruned_total,
                "partitions": [
                    {
                        "pid": region.pid,
                        "key": region.describe_key(),
                        "rows": region.row_count,
                        "pages": region.total_pages(),
                        "layout": region.plan.describe()
                        if region.plan is not None
                        else None,
                        "overflow_regions": len(region.overflow),
                        "pending_rows": len(region.pending),
                    }
                    for region in entry.partitions
                ],
            }
        return {
            "adaptivity": self.adaptivity.report(),
            "tables": tables,
            "buffer_pool": {
                "capacity": self.pool.capacity,
                "resident_pages": len(self.pool),
                "hits": pool.hits,
                "misses": pool.misses,
                "fetches": pool.hits + pool.misses,
                "evictions": pool.evictions,
                "flushes": pool.flushes,
                "hit_rate": pool.hit_rate,
            },
            "disk": {
                "page_reads": disk.page_reads,
                "page_writes": disk.page_writes,
                "read_seeks": disk.read_seeks,
                "write_seeks": disk.write_seeks,
                "allocated_pages": self.disk.num_pages,
            },
        }

    def run_cold(self, query: Callable[[], Any]) -> tuple[Any, IOStats]:
        """Run ``query`` against a cold cache, returning (result, I/O delta).

        This is the measurement harness for the paper's "number of pages read
        per query" metric: the buffer pool is emptied and the simulated disk
        head reset so each query pays its true I/O.
        """
        self.pool.clear()
        self.disk.reset_head()
        with self.disk.measure() as io:
            result = query()
        return result, io
