"""Secondary indexes over stored tables.

The paper: "RodentStore will include both B+Trees as well as a variety of
geo-spatial indices, but we don't anticipate innovating in this regard"
(§1). This module wires the page-backed :mod:`repro.index` structures into
the engine as *secondary* access paths over row layouts:

* :class:`FieldIndex` — a B+Tree mapping one field's values to row positions;
* :class:`SpatialIndex` — an R-Tree mapping (x, y) point fields to row
  positions.

Index probes return row positions; the scan path groups positions by page so
each data page is fetched once, in storage order. Indexes are built against
the current main layout and become *stale* when rows are inserted afterwards
— a stale index is never used silently (scans fall back to the base path)
until it is rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.algebra.physical import LAYOUT_ROWS
from repro.errors import IndexError_, QueryError
from repro.index.btree import BPlusTree
from repro.index.rtree import MBR, RTree
from repro.storage.page import SlottedPage
from repro.storage.serializer import RecordSerializer

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.table import Table


@dataclass
class FieldIndex:
    """A B+Tree secondary index over one field of a rows-layout table."""

    field_name: str
    tree: BPlusTree
    row_count: int  # rows in the layout when the index was built
    stale: bool = False

    def positions_in_range(self, lo, hi) -> list[int]:
        if self.stale:
            raise IndexError_(
                f"index on {self.field_name!r} is stale; rebuild it"
            )
        return sorted(pos for _, pos in self.tree.range(lo, hi))


@dataclass
class SpatialIndex:
    """An R-Tree secondary index over two point fields (x, y)."""

    x_field: str
    y_field: str
    tree: RTree
    row_count: int
    stale: bool = False

    def positions_in_box(
        self, x_lo: float, x_hi: float, y_lo: float, y_hi: float
    ) -> list[int]:
        if self.stale:
            raise IndexError_(
                f"spatial index on ({self.x_field}, {self.y_field}) is "
                "stale; rebuild it"
            )
        query = MBR(x_lo, y_lo, x_hi, y_hi)
        return sorted(pos for _, pos in self.tree.iter_search(query))


def build_field_index(table: "Table", field_name: str) -> FieldIndex:
    """Build a B+Tree over ``field_name`` of a rows-layout table."""
    _require_rows_layout(table, "field index")
    schema = table.plan.schema
    if not schema.has_field(field_name):
        raise QueryError(f"unknown index field {field_name!r}")
    key_type = schema.field(field_name).dtype
    tree = BPlusTree(table._db.pool, key_type=key_type)
    position_of = schema.index_of(field_name)
    pairs = [
        (record[position_of], row)
        for row, record in enumerate(table._db.renderer.iter_rows(table.layout))
    ]
    tree.bulk_load(pairs)
    return FieldIndex(field_name, tree, row_count=len(pairs))


def build_spatial_index(
    table: "Table", x_field: str, y_field: str
) -> SpatialIndex:
    """Build an R-Tree over two numeric point fields of a rows layout."""
    _require_rows_layout(table, "spatial index")
    schema = table.plan.schema
    xi = schema.index_of(x_field)
    yi = schema.index_of(y_field)
    tree = RTree(table._db.pool)
    entries = [
        (MBR(record[xi], record[yi], record[xi], record[yi]), row)
        for row, record in enumerate(table._db.renderer.iter_rows(table.layout))
    ]
    tree.bulk_load(entries)
    return SpatialIndex(x_field, y_field, tree, row_count=len(entries))


def _require_rows_layout(table: "Table", what: str) -> None:
    if table.plan.kind != LAYOUT_ROWS:
        raise IndexError_(
            f"{what} requires a rows layout (table {table.name!r} is "
            f"{table.plan.kind}); secondary indexes address rows by position"
        )
    if not table.layout.page_row_counts:
        raise IndexError_("rows layout lacks per-page row counts")


def fetch_rows_by_position(
    table: "Table", positions: Sequence[int]
) -> Iterator[tuple]:
    """Fetch records at sorted ``positions``, one page fetch per data page.

    Positions are translated to (page, slot) through the layout's per-page
    row counts; consecutive positions on the same page share one pool fetch.
    """
    layout = table.layout
    renderer = table._db.renderer
    serializer = RecordSerializer(table.plan.schema)
    page_starts: list[int] = []
    acc = 0
    for count in layout.page_row_counts:
        page_starts.append(acc)
        acc += count

    current_page = -1
    page = None
    page_id = None
    try:
        for position in positions:
            if position < 0 or position >= acc:
                raise QueryError(f"row position {position} out of range")
            page_index = _page_of(page_starts, position)
            if page_index != current_page:
                if page_id is not None:
                    renderer.pool.unpin(page_id)
                    page_id = None
                page_id = layout.extent.page_ids[page_index]
                frame = renderer.pool.fetch(page_id)
                page = SlottedPage(renderer.page_size, frame.data)
                current_page = page_index
            slot = position - page_starts[page_index]
            yield serializer.decode(page.get(slot))
    finally:
        # Also runs on GeneratorExit: a limit-pushdown scan may abandon
        # the probe mid-page, and the frame must not stay pinned.
        if page_id is not None:
            renderer.pool.unpin(page_id)


def _page_of(page_starts: list[int], position: int) -> int:
    lo, hi = 0, len(page_starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if page_starts[mid] <= position:
            lo = mid
        else:
            hi = mid - 1
    return lo


def pages_for_positions(table: "Table", positions: Sequence[int]) -> int:
    """Distinct data pages covering ``positions`` (for cost estimation)."""
    layout = table.layout
    page_starts: list[int] = []
    acc = 0
    for count in layout.page_row_counts:
        page_starts.append(acc)
        acc += count
    return len({_page_of(page_starts, p) for p in positions})
