"""Snapshot isolation for catalog entries (MVCC, copy-on-write flavor).

RodentStore writers never mutate a rendered layout in place: a structural
change (flush, re-layout, compaction, partition rewrite) builds new pages
copy-on-write and atomically swaps the new plan/layout into the catalog entry
at commit. That makes snapshots nearly free — a scan *pins* the entry, which
shallow-copies the handful of references it needs (plan, layout, overflow
list, pending buffer, indexes, partition regions); unchanged pages are shared
between versions, as in RStore's page-shared snapshots.

The one thing pinning must also solve is reclamation: the pages of a
superseded layout may still be read by in-flight scans that pinned the old
version. Writers therefore hand the free operation to
:meth:`EntryMVCC.retire` instead of freeing directly; the deferred free runs
when the last pin at or below the retired version drains.

Locking discipline: ``EntryMVCC.lock`` (an RLock) guards all mutation of the
entry's layout-bearing fields *and* all snapshot captures. Writers hold it
only for the pointer swap, never during rendering — scans stay wait-free in
practice.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.catalog import CatalogEntry, PartitionRegion


class RegionView:
    """Immutable view of one :class:`PartitionRegion` at pin time.

    Duck-types the region for the scan paths: same attribute names, with
    ``overflow``/``pending`` frozen to tuples so a concurrent insert into
    the live region cannot bleed into a pinned snapshot.
    """

    __slots__ = (
        "pid", "key", "lower", "upper", "plan", "layout", "overflow",
        "pending", "pending_zone",
    )

    def __init__(self, region: "PartitionRegion"):
        self.pid = region.pid
        self.key = region.key
        self.lower = region.lower
        self.upper = region.upper
        self.plan = region.plan
        self.layout = region.layout
        self.overflow = tuple(region.overflow)
        self.pending = tuple(region.pending)
        self.pending_zone = region.pending_zone

    @property
    def row_count(self) -> int:
        count = self.layout.row_count if self.layout is not None else 0
        count += sum(o.row_count for o in self.overflow)
        count += len(self.pending)
        return count

    def total_pages(self) -> int:
        pages = self.layout.total_pages() if self.layout is not None else 0
        pages += sum(o.total_pages() for o in self.overflow)
        return pages

    def describe_key(self) -> str:
        if self.lower is not None or self.upper is not None:
            lo = "-inf" if self.lower is None else f"{self.lower:g}"
            hi = "+inf" if self.upper is None else f"{self.upper:g}"
            return f"[{lo}, {hi})"
        return repr(self.key)


class TableSnapshot:
    """What one scan sees: the entry's layout-bearing state at pin time."""

    __slots__ = (
        "version", "plan", "layout", "overflow", "pending", "pending_zone",
        "indexes", "spatial_indexes", "partitions", "partitions_loaded",
        "runs", "level_tombstones", "released",
    )

    def __init__(self, entry: "CatalogEntry", version: int):
        self.version = version
        self.plan = entry.plan
        self.layout = entry.layout
        self.overflow = tuple(entry.overflow)
        self.pending = tuple(entry.pending)
        self.pending_zone = entry.pending_zone
        self.indexes = dict(entry.indexes)
        self.spatial_indexes = dict(entry.spatial_indexes)
        self.partitions = [RegionView(r) for r in entry.partitions]
        self.partitions_loaded = entry.partitions_loaded
        # The pinned run manifest: runs are immutable, so freezing the
        # list keeps a scan stable across concurrent seals/compactions.
        self.runs = tuple(entry.runs)
        self.level_tombstones = tuple(entry.level_tombstones)
        self.released = False


class EntryMVCC:
    """Version counter, pin registry, and deferred-free list for one entry."""

    def __init__(self):
        self.lock = threading.RLock()
        self.version = 0
        # version -> number of in-flight scans pinned at that version.
        self.pins: dict[int, int] = {}
        # (retired_at_version, free_fn): runs when no pin <= version remains.
        self.garbage: list[tuple[int, Callable[[], None]]] = []

    # -- snapshots --------------------------------------------------------

    def pin(self, entry: "CatalogEntry") -> TableSnapshot:
        """Capture a snapshot and register it as an active reader."""
        with self.lock:
            snap = TableSnapshot(entry, self.version)
            self.pins[self.version] = self.pins.get(self.version, 0) + 1
            return snap

    def release(self, snap: TableSnapshot) -> None:
        """Drop a pin (idempotent) and free any garbage it was holding."""
        with self.lock:
            if snap.released:
                return
            snap.released = True
            count = self.pins.get(snap.version, 0)
            if count <= 1:
                self.pins.pop(snap.version, None)
            else:
                self.pins[snap.version] = count - 1
            self._drain()

    # -- reclamation -------------------------------------------------------

    def retire(self, free_fn: Callable[[], None]) -> None:
        """Schedule ``free_fn`` once every reader of the old version drains.

        Called under :attr:`lock`, immediately after a writer swapped new
        state into the entry: readers pinned at or below the current version
        may still reference the superseded pages, readers arriving after the
        bump cannot.
        """
        self.garbage.append((self.version, free_fn))
        self.version += 1
        self._drain()

    def _drain(self) -> None:
        if not self.garbage:
            return
        oldest_pin = min(self.pins) if self.pins else None
        ready: list[Callable[[], None]] = []
        kept: list[tuple[int, Callable[[], None]]] = []
        for version, free_fn in self.garbage:
            if oldest_pin is not None and oldest_pin <= version:
                kept.append((version, free_fn))
            else:
                ready.append(free_fn)
        self.garbage = kept
        for free_fn in ready:
            free_fn()

    @property
    def active_pins(self) -> int:
        with self.lock:
            return sum(self.pins.values())
