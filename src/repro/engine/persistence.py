"""Catalog persistence: save/reopen a store across processes.

The page file already persists (``RodentStore(path=...)``); this module
persists the *catalog* — logical schemas, the algebra expression of each
table's physical design, and the layout metadata (extents, cell directories,
chunk maps) — as JSON. Reopening compiles each expression back into a
physical plan through the normal interpreter path, so the stored layout
metadata is always interpreted against a freshly type-checked plan.

Secondary indexes are rebuilt on demand rather than persisted (they are
derived data; `Table.create_index` reconstructs them from the base layout).
"""

from __future__ import annotations

import json
import zlib
from typing import TYPE_CHECKING, Any

from repro.algebra.physical import PhysicalPlan
from repro.engine.stats import FieldStats, TableStats
from repro.engine.synopsis import FieldZone, LayoutSynopsis, ZoneSynopsis
from repro.errors import CatalogError, CorruptCatalogError
from repro.layout.renderer import (
    CellEntry,
    ColumnGroupStore,
    Extent,
    StoredLayout,
)
from repro.types.schema import Schema
from repro.types.types import type_from_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import RodentStore

FORMAT_VERSION = 1

#: JSON key holding the catalog checksum (absent in pre-integrity files).
CATALOG_CRC_KEY = "crc32"


def _catalog_crc(payload: dict) -> int:
    """CRC32 over the canonical JSON serialization of ``payload``.

    The canonical form (sorted keys, no whitespace) survives the
    pretty-printed round trip through :func:`save_catalog` /
    :func:`load_catalog`, so the checksum verifies content, not formatting.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


# -- layout (de)serialization -------------------------------------------------


def _zone_to_dict(zone: ZoneSynopsis) -> dict:
    return {
        "rows": zone.row_count,
        "fields": {
            name: [fz.min_value, fz.max_value, fz.null_count, fz.distinct_hint]
            for name, fz in zone.fields.items()
        },
    }


def _zone_from_dict(data: dict) -> ZoneSynopsis:
    return ZoneSynopsis(
        row_count=data["rows"],
        fields={
            name: FieldZone(mn, mx, nulls, distinct)
            for name, (mn, mx, nulls, distinct) in data["fields"].items()
        },
    )


def synopsis_to_dict(synopsis: LayoutSynopsis | None) -> dict | None:
    if synopsis is None:
        return None
    return {
        "page_zones": [_zone_to_dict(z) for z in synopsis.page_zones],
        "group_zones": [
            [_zone_to_dict(z) for z in zones]
            for zones in synopsis.group_zones
        ],
        "cell_zones": [_zone_to_dict(z) for z in synopsis.cell_zones],
        "folded_zones": [_zone_to_dict(z) for z in synopsis.folded_zones],
    }


def synopsis_from_dict(data: dict | None) -> LayoutSynopsis | None:
    if data is None:
        return None
    return LayoutSynopsis(
        page_zones=[_zone_from_dict(z) for z in data.get("page_zones", [])],
        group_zones=[
            [_zone_from_dict(z) for z in zones]
            for zones in data.get("group_zones", [])
        ],
        cell_zones=[_zone_from_dict(z) for z in data.get("cell_zones", [])],
        folded_zones=[
            _zone_from_dict(z) for z in data.get("folded_zones", [])
        ],
    )


def layout_to_dict(layout: StoredLayout) -> dict:
    return {
        "row_count": layout.row_count,
        "extent": layout.extent.page_ids if layout.extent else None,
        "column_groups": [
            {
                "fields": list(g.fields),
                "extent": g.extent.page_ids,
                "chunks": g.chunks,
            }
            for g in layout.column_groups
        ],
        "cell_directory": [
            {
                "coord": list(e.coord),
                "bounds": [list(b) for b in e.bounds],
                "offset": e.offset,
                "length": e.length,
                "row_count": e.row_count,
            }
            for e in layout.cell_directory
        ],
        "array_shape": list(layout.array_shape)
        if layout.array_shape is not None
        else None,
        "array_values_per_page": layout.array_values_per_page,
        "array_dtype": layout.array_dtype.name if layout.array_dtype else None,
        "mirrors": [layout_to_dict(m) for m in layout.mirrors],
        "grid_origin": list(layout.grid_origin),
        "folded_directory": layout.folded_directory,
        "folded_keys": [list(k) for k in layout.folded_keys],
        "page_row_counts": layout.page_row_counts,
        "synopsis": synopsis_to_dict(layout.synopsis),
    }


def layout_from_dict(data: dict, plan: PhysicalPlan) -> StoredLayout:
    mirrors = []
    for sub_data, sub_plan in zip(data.get("mirrors", []), plan.mirror_plans):
        mirrors.append(layout_from_dict(sub_data, sub_plan))
    return StoredLayout(
        plan=plan,
        row_count=data["row_count"],
        extent=Extent(list(data["extent"])) if data["extent"] else None,
        column_groups=[
            ColumnGroupStore(
                fields=tuple(g["fields"]),
                extent=Extent(list(g["extent"])),
                chunks=[tuple(c) for c in g["chunks"]],
            )
            for g in data.get("column_groups", [])
        ],
        cell_directory=[
            CellEntry(
                coord=tuple(e["coord"]),
                bounds=tuple(tuple(b) for b in e["bounds"]),
                offset=e["offset"],
                length=e["length"],
                row_count=e["row_count"],
            )
            for e in data.get("cell_directory", [])
        ],
        array_shape=tuple(data["array_shape"])
        if data.get("array_shape") is not None
        else None,
        array_values_per_page=data.get("array_values_per_page", 0),
        array_dtype=type_from_name(data["array_dtype"])
        if data.get("array_dtype")
        else None,
        mirrors=mirrors,
        grid_origin=tuple(data.get("grid_origin", [])),
        folded_directory=[tuple(f) for f in data.get("folded_directory", [])],
        folded_keys=[tuple(k) for k in data.get("folded_keys", [])],
        page_row_counts=list(data.get("page_row_counts", [])),
        synopsis=synopsis_from_dict(data.get("synopsis")),
    )


# -- stats (de)serialization ------------------------------------------------


def stats_to_dict(stats: TableStats) -> dict:
    return {
        "row_count": stats.row_count,
        "avg_record_width": stats.avg_record_width,
        "fields": {
            name: {
                "count": f.count,
                "nulls": f.nulls,
                "min_value": f.min_value,
                "max_value": f.max_value,
                "distinct": f.distinct,
                "histogram": f.histogram,
                "avg_width": f.avg_width,
            }
            for name, f in stats.fields.items()
        },
    }


def stats_from_dict(data: dict) -> TableStats:
    fields = {}
    for name, f in data["fields"].items():
        fields[name] = FieldStats(
            name=name,
            count=f["count"],
            nulls=f["nulls"],
            min_value=f["min_value"],
            max_value=f["max_value"],
            distinct=f["distinct"],
            histogram=list(f["histogram"]),
            avg_width=f["avg_width"],
        )
    return TableStats(
        row_count=data["row_count"],
        fields=fields,
        avg_record_width=data["avg_record_width"],
    )


# -- catalog save/load --------------------------------------------------------


def _region_to_dict(region) -> dict:
    return {
        "pid": region.pid,
        "key": region.key,
        "lower": region.lower,
        "upper": region.upper,
        "expr": region.plan.expr.to_text() if region.plan else None,
        "layout": layout_to_dict(region.layout) if region.layout else None,
        "overflow": [layout_to_dict(o) for o in region.overflow],
        "pending": [list(r) for r in region.pending],
    }


def _run_to_dict(run) -> dict:
    return {
        "rid": run.rid,
        "level": run.level,
        "min_seq": run.min_seq,
        "max_seq": run.max_seq,
        "expr": run.plan.expr.to_text() if run.plan else None,
        "layout": layout_to_dict(run.layout) if run.layout else None,
    }


def entry_to_dict(entry) -> dict:
    """Serialize one catalog entry (schema, design, layout metadata)."""
    return {
        "name": entry.name,
        "schema": [
            f"{f.name}:{f.dtype.name}"
            for f in entry.logical_schema.fields
        ],
        "expr": entry.plan.expr.to_text() if entry.plan else None,
        "layout": layout_to_dict(entry.layout) if entry.layout else None,
        "overflow": [layout_to_dict(o) for o in entry.overflow],
        "stats": stats_to_dict(entry.stats) if entry.stats else None,
        "pending": [list(r) for r in entry.pending],
        "monitor": entry.monitor.to_dict()
        if entry.monitor is not None
        else None,
        "partitions": [_region_to_dict(r) for r in entry.partitions],
        "partitions_loaded": entry.partitions_loaded,
        "next_partition_id": entry.next_partition_id,
        "partition_scans": entry.partition_scans,
        "partitions_pruned": entry.partitions_pruned_total,
        "runs": [_run_to_dict(r) for r in entry.runs],
        "level_tombstones": [
            [seq, list(value) if isinstance(value, tuple) else value]
            for seq, value in entry.level_tombstones
        ],
        "next_run_id": entry.next_run_id,
        "next_run_seq": entry.next_run_seq,
        "wa_bytes_ingested": entry.wa_bytes_ingested,
        "wa_bytes_written": entry.wa_bytes_written,
        "wa_pages_compacted": entry.wa_pages_compacted,
        "wa_compactions": entry.wa_compactions,
    }


def save_catalog(store: "RodentStore", path: str) -> None:
    """Write the catalog (schemas, designs, layout metadata) to ``path``."""
    tables = [entry_to_dict(entry) for entry in store.catalog]
    payload = {
        "version": FORMAT_VERSION,
        "page_size": store.disk.page_size,
        "num_pages": store.disk.num_pages,
        "tables": tables,
    }
    payload[CATALOG_CRC_KEY] = _catalog_crc(payload)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1)


def read_catalog_payload(store: "RodentStore", path: str) -> dict:
    """Read and checksum-verify the catalog file, returning its payload.

    Raises :class:`~repro.errors.CorruptCatalogError` when the file cannot
    be parsed or its checksum does not match; files written before the
    integrity layer (no checksum key) are accepted as-is. Injected catalog
    read faults (``store.inject_io_faults``) are applied here, with bounded
    retries for transient errors.
    """
    with open(path, "rb") as f:
        raw = f.read()
    io_faults = getattr(store, "_io_faults", None)
    if io_faults is not None:
        attempts = 0
        while True:
            try:
                raw = io_faults.apply_read("catalog", raw)
                break
            except OSError as exc:
                attempts += 1
                if attempts <= 3:
                    continue
                raise CatalogError(
                    f"I/O error reading catalog {path}: {exc}"
                ) from exc
    registry = getattr(store, "integrity", None)
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        if registry is not None:
            registry.record_catalog_failure()
        raise CorruptCatalogError(
            f"catalog file {path} is unreadable: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        if registry is not None:
            registry.record_catalog_failure()
        raise CorruptCatalogError(
            f"catalog file {path} does not contain a JSON object"
        )
    stored = payload.pop(CATALOG_CRC_KEY, None)
    if stored is not None:
        actual = _catalog_crc(payload)
        if actual != stored:
            if registry is not None:
                registry.record_catalog_failure()
            raise CorruptCatalogError(
                f"catalog checksum mismatch for {path} "
                f"(stored {stored:#010x}, computed {actual:#010x})"
            )
        if registry is not None:
            registry.count_catalog_verification()
    return payload


def load_catalog(store: "RodentStore", path: str) -> None:
    """Restore a catalog previously written by :func:`save_catalog`.

    The store must be backed by the same page file the catalog was saved
    against (checked via page size; page contents are trusted).
    """
    from repro.algebra.interpreter import AlgebraInterpreter
    from repro.algebra.physical import LAYOUT_ROWS, PhysicalPlan
    from repro.algebra import ast

    payload = read_catalog_payload(store, path)
    if payload.get("version") != FORMAT_VERSION:
        raise CatalogError(
            f"unsupported catalog version {payload.get('version')!r}"
        )
    if payload["page_size"] != store.disk.page_size:
        raise CatalogError(
            f"catalog was saved with page size {payload['page_size']}, "
            f"store uses {store.disk.page_size}"
        )

    # First pass: register schemas so expressions can be compiled.
    for t in payload["tables"]:
        schema = Schema.of(*t["schema"])
        store.catalog.create(t["name"], schema)

    for t in payload["tables"]:
        apply_entry_dict(store, t)


def apply_entry_dict(store: "RodentStore", t: dict) -> None:
    """Restore one table's catalog state from :func:`entry_to_dict` output.

    Creates the entry when missing and fully overwrites the layout-bearing
    fields when present, so WAL recovery can replay a logged catalog record
    over whatever earlier state the checkpoint restored.
    """
    from repro.algebra.interpreter import AlgebraInterpreter
    from repro.algebra.physical import LAYOUT_ROWS, PhysicalPlan
    from repro.algebra import ast

    if not store.catalog.has(t["name"]):
        store.catalog.create(t["name"], Schema.of(*t["schema"]))
    interpreter = AlgebraInterpreter(store.catalog.schemas())
    entry = store.catalog.entry(t["name"])
    entry.plan = (
        interpreter.compile(t["expr"]) if t["expr"] is not None else None
    )
    entry.layout = (
        layout_from_dict(t["layout"], entry.plan)
        if t["layout"] is not None
        else None
    )
    overflow_plan = PhysicalPlan(
        expr=ast.TableRef("__overflow__"),
        kind=LAYOUT_ROWS,
        schema=_scan_schema_of(entry),
    )
    entry.overflow = [
        layout_from_dict(o, overflow_plan) for o in t.get("overflow", [])
    ]
    if t.get("stats"):
        entry.stats = stats_from_dict(t["stats"])
    pending = [tuple(r) for r in t.get("pending", [])]
    entry.pending = pending
    entry.pending_zone = None
    if pending:
        # The pending zone map is derived data: rebuild it from the
        # restored rows so pruned scans keep skipping the buffer.
        zone = ZoneSynopsis()
        zone.update(_scan_schema_of(entry).names(), pending)
        entry.pending_zone = zone
    if t.get("monitor"):
        from repro.optimizer.monitor import WorkloadMonitor

        entry.monitor = WorkloadMonitor.from_dict(t["monitor"])
    if t.get("partitions") or t.get("partitions_loaded"):
        from repro.engine.catalog import PartitionRegion

        scan_schema = _scan_schema_of(entry)
        regions = []
        for r in t.get("partitions", []):
            region_plan = (
                interpreter.compile(r["expr"])
                if r.get("expr")
                else None
            )
            region = PartitionRegion(
                pid=r["pid"],
                key=r.get("key"),
                lower=r.get("lower"),
                upper=r.get("upper"),
                plan=region_plan,
                layout=layout_from_dict(r["layout"], region_plan)
                if r.get("layout")
                else None,
                overflow=[
                    layout_from_dict(o, overflow_plan)
                    for o in r.get("overflow", [])
                ],
                pending=[tuple(row) for row in r.get("pending", [])],
            )
            if region.pending:
                zone = ZoneSynopsis()
                zone.update(scan_schema.names(), region.pending)
                region.pending_zone = zone
            regions.append(region)
        entry.partitions = regions
        entry.region_index = {}
        entry.partitions_loaded = bool(
            t.get("partitions_loaded", bool(regions))
        )
        entry.next_partition_id = t.get(
            "next_partition_id",
            max((r.pid for r in regions), default=-1) + 1,
        )
        entry.partition_scans = t.get("partition_scans", 0)
        entry.partitions_pruned_total = t.get("partitions_pruned", 0)
    else:
        entry.partitions = []
        entry.region_index = {}
        entry.partitions_loaded = False
    from repro.engine.catalog import LevelRun

    runs = []
    for r in t.get("runs", []):
        run_plan = (
            interpreter.compile(r["expr"]) if r.get("expr") else None
        )
        runs.append(
            LevelRun(
                rid=r["rid"],
                level=r["level"],
                min_seq=r["min_seq"],
                max_seq=r["max_seq"],
                plan=run_plan,
                layout=layout_from_dict(r["layout"], run_plan)
                if r.get("layout")
                else None,
            )
        )
    entry.runs = runs
    # Multiset tombstone values are full stored rows (JSON lists back to
    # the tuples scan resolution compares against); keyed values are the
    # merge-key scalar and pass through.
    keyed = (
        entry.plan is not None
        and entry.plan.levels is not None
        and entry.plan.levels.key is not None
    )
    entry.level_tombstones = [
        (
            seq,
            tuple(value)
            if not keyed and isinstance(value, list)
            else value,
        )
        for seq, value in t.get("level_tombstones", [])
    ]
    entry.next_run_id = t.get(
        "next_run_id", max((r.rid for r in runs), default=-1) + 1
    )
    entry.next_run_seq = t.get(
        "next_run_seq", max((r.max_seq for r in runs), default=-1) + 1
    )
    entry.wa_bytes_ingested = t.get("wa_bytes_ingested", 0)
    entry.wa_bytes_written = t.get("wa_bytes_written", 0)
    entry.wa_pages_compacted = t.get("wa_pages_compacted", 0)
    entry.wa_compactions = t.get("wa_compactions", 0)


def _scan_schema_of(entry) -> Schema:
    from repro.engine.table import _scan_schema

    if entry.plan is None:
        return entry.logical_schema
    return _scan_schema(entry.plan)
