"""Crash recovery: rebuild committed state from checkpoint + WAL.

A durable :class:`~repro.engine.database.RodentStore` runs this on open
whenever its WAL is non-empty (a clean shutdown checkpoints and truncates
the log, so any surviving bytes mean the last session died mid-flight).

The protocol is the classic two-pass physiological replay, adapted to
RodentStore's copy-on-write engine:

1. **Checkpoint resolution.** A crash between "catalog written to
   ``.tmp``" and "tmp promoted" is disambiguated by the CHECKPOINT record:
   if it reached the log, the tmp catalog is the real one (promote it);
   otherwise the tmp file is garbage (delete it). Records at or below the
   checkpoint LSN are already folded into the catalog and are ignored.
2. **Redo.** Page after-images of committed transactions are replayed in
   LSN order (full pages: the renderer writes freshly allocated pages, so
   effect records carry whole-page images).
3. **Undo.** Losers — transactions with effects but no COMMIT — are rolled
   back in reverse LSN order by writing the before-images (all zeros:
   fresh pages start zeroed, so this restores the true prior state).
4. **Logical replay.** The *last* committed catalog image per table is
   applied (it supersedes older images and any page-level state), then
   committed row inserts newer than that image land back in the pending
   buffer, routed per-partition for partitioned tables.
5. **Re-checkpoint.** The recovered state is checkpointed, truncating the
   log — recovery is idempotent and a crash during recovery just replays.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING

from repro.storage.wal import (
    KIND_CATALOG,
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_ROWS,
    KIND_UPDATE,
    _apply_image,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import RodentStore


def recover_store(store: "RodentStore") -> dict:
    """Recover ``store`` (durable, just-opened) to committed state.

    Returns a summary dict; ``{"clean": True}`` when the previous session
    shut down cleanly and there was nothing to do.
    """
    from repro.engine.persistence import apply_entry_dict, load_catalog

    wal = store.wal
    catalog_path = store.catalog_path
    assert catalog_path is not None
    tmp_path = catalog_path + ".tmp"

    records = list(wal.records())  # stops cleanly at a torn tail
    checkpoint_lsn = max(
        (r.lsn for r in records if r.kind == KIND_CHECKPOINT), default=0
    )

    # -- checkpoint resolution --------------------------------------------
    if os.path.exists(tmp_path):
        if checkpoint_lsn:
            os.replace(tmp_path, catalog_path)
        else:
            os.remove(tmp_path)
    if os.path.exists(catalog_path):
        load_catalog(store, catalog_path)

    unclean = wal.size_bytes > 0
    if not unclean:
        return {"clean": True}

    live = [r for r in records if r.lsn > checkpoint_lsn]
    committed = {r.txn_id for r in live if r.kind == KIND_COMMIT}

    # -- redo committed page images (LSN order) ---------------------------
    redo = 0
    for r in live:
        if r.kind == KIND_UPDATE and r.txn_id in committed:
            _apply_image(store.disk, r.page_id, r.offset, r.after)
            redo += 1

    # -- undo losers (reverse LSN order) ----------------------------------
    effect_kinds = (KIND_UPDATE, KIND_ROWS, KIND_CATALOG)
    losers = {
        r.txn_id
        for r in live
        if r.kind in effect_kinds and r.txn_id not in committed
    }
    undo = 0
    for r in reversed(live):
        if r.kind == KIND_UPDATE and r.txn_id in losers:
            _apply_image(store.disk, r.page_id, r.offset, r.before)
            undo += 1

    # -- logical replay: last committed catalog image per table -----------
    catalogs: dict[str, tuple[int, dict]] = {}
    for r in live:
        if r.kind == KIND_CATALOG and r.txn_id in committed:
            payload = json.loads(r.payload.decode("utf-8"))
            catalogs[payload["name"]] = (r.lsn, payload)
    dropped = 0
    applied = 0
    for name, (_, payload) in catalogs.items():
        if payload.get("dropped"):
            if store.catalog.has(name):
                store.catalog.drop(name)
                dropped += 1
        else:
            apply_entry_dict(store, payload)
            applied += 1

    # -- logical replay: committed row inserts ----------------------------
    from repro.algebra.physical import LAYOUT_PARTITIONED
    from repro.engine import synopsis as zonemaps
    from repro.engine.table import Table

    rows_replayed = 0
    for r in live:
        if r.kind != KIND_ROWS or r.txn_id not in committed:
            continue
        payload = json.loads(r.payload.decode("utf-8"))
        name = payload["table"]
        catalog_record_lsn = catalogs.get(name, (0, None))[0]
        if r.lsn <= catalog_record_lsn:
            # The newer catalog image already folds these rows in (they
            # were in the entry's pending/overflow when it was serialized).
            continue
        if not store.catalog.has(name):
            continue  # table dropped later in the log
        entry = store.catalog.entry(name)
        if entry.plan is None:
            continue
        rows = [tuple(v) for v in payload["rows"]]
        table = Table(store, entry)
        if entry.plan.kind == LAYOUT_PARTITIONED:
            table._route_pending(rows)
        else:
            entry.pending.extend(rows)
            if entry.pending_zone is None:
                entry.pending_zone = zonemaps.ZoneSynopsis()
            entry.pending_zone.update(table.scan_schema().names(), rows)
        rows_replayed += len(rows)

    summary = {
        "clean": False,
        "records_scanned": len(records),
        "committed_txns": len(committed),
        "loser_txns": len(losers),
        "pages_redone": redo,
        "pages_undone": undo,
        "catalog_images_applied": applied,
        "tables_dropped": dropped,
        "rows_replayed": rows_replayed,
    }
    # Fold the recovered state into the page file + catalog and truncate
    # the log; a crash *during* recovery simply replays from the same WAL.
    store.checkpoint()
    store.recoveries_run += 1
    return summary
