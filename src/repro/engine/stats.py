"""Table statistics for selectivity estimation.

The storage design optimizer costs candidate layouts without materializing
them; it needs per-field minima/maxima, distinct-value estimates, and a
small equi-width histogram to translate query predicates into expected
record/cell counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.types.schema import Schema

_HISTOGRAM_BUCKETS = 32


@dataclass
class FieldStats:
    """Statistics of one (numeric or string) field."""

    name: str
    count: int = 0
    nulls: int = 0
    min_value: Any = None
    max_value: Any = None
    distinct: int = 0
    histogram: list[int] = field(default_factory=list)  # numeric only
    avg_width: float = 0.0

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.min_value, (int, float)) and not isinstance(
            self.min_value, bool
        )

    def selectivity(self, lo: float, hi: float) -> float:
        """Estimated fraction of records with value in [lo, hi]."""
        if self.count == 0 or not self.is_numeric:
            return 1.0
        span_lo, span_hi = float(self.min_value), float(self.max_value)
        if span_hi <= span_lo:
            return 1.0 if lo <= span_lo <= hi else 0.0
        if not self.histogram:
            overlap = max(0.0, min(hi, span_hi) - max(lo, span_lo))
            return min(1.0, overlap / (span_hi - span_lo))
        width = (span_hi - span_lo) / len(self.histogram)
        total = sum(self.histogram)
        if total == 0 or width == 0:
            return 1.0
        covered = 0.0
        for i, bucket in enumerate(self.histogram):
            b_lo = span_lo + i * width
            b_hi = b_lo + width
            overlap = max(0.0, min(hi, b_hi) - max(lo, b_lo))
            if overlap > 0:
                covered += bucket * (overlap / width)
        return min(1.0, covered / total)


@dataclass
class TableStats:
    """Statistics over a whole table."""

    row_count: int
    fields: dict[str, FieldStats]
    avg_record_width: float

    @classmethod
    def collect(
        cls, schema: Schema, records: Sequence[Sequence[Any]]
    ) -> "TableStats":
        """Single pass over ``records`` computing all field statistics."""
        field_stats = {f.name: FieldStats(f.name) for f in schema.fields}
        distincts: dict[str, set] = {f.name: set() for f in schema.fields}
        numeric_values: dict[str, list[float]] = {
            f.name: [] for f in schema.fields
        }
        total_width = 0
        for record in records:
            total_width += schema.estimated_record_size(record)
            for f, value in zip(schema.fields, record):
                stats = field_stats[f.name]
                stats.count += 1
                if value is None:
                    stats.nulls += 1
                    continue
                if stats.min_value is None or value < stats.min_value:
                    stats.min_value = value
                if stats.max_value is None or value > stats.max_value:
                    stats.max_value = value
                if len(distincts[f.name]) < 100_000:
                    distincts[f.name].add(value)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    numeric_values[f.name].append(float(value))
                stats.avg_width += f.dtype.estimated_size(value)

        for name, stats in field_stats.items():
            stats.distinct = len(distincts[name])
            if stats.count:
                stats.avg_width /= stats.count
            values = numeric_values[name]
            if values and stats.min_value != stats.max_value:
                stats.histogram = _build_histogram(
                    values, float(stats.min_value), float(stats.max_value)
                )
        n = len(records)
        return cls(
            row_count=n,
            fields=field_stats,
            avg_record_width=(total_width / n) if n else 0.0,
        )

    def field(self, name: str) -> FieldStats:
        return self.fields[name]

    def predicate_selectivity(
        self, ranges: dict[str, tuple[float, float]]
    ) -> float:
        """Independence-assumption selectivity of conjunctive ranges."""
        selectivity = 1.0
        for name, (lo, hi) in ranges.items():
            stats = self.fields.get(name)
            if stats is not None:
                selectivity *= stats.selectivity(lo, hi)
        return selectivity


def zone_survival_fraction(selectivity: float, rows_per_zone: float) -> float:
    """Expected fraction of zones a pruned scan must still read.

    A zone (page, column chunk, grid cell) survives zone-map pruning when
    at least one of its rows matches; under the textbook
    random-placement assumption that is ``1 - (1 - s)^r`` for selectivity
    ``s`` and ``r`` rows per zone. Real layouts are usually *clustered* on
    the predicate field, which prunes far better — so this is an upper
    bound, which is the safe direction for a cost model. Loaded tables
    report exact counts from their synopses instead
    (:meth:`repro.engine.table.Table.pruned_pages`); this function serves
    the design-time estimator, which costs layouts that do not exist yet.
    """
    s = min(1.0, max(0.0, selectivity))
    if s <= 0.0:
        return 0.0
    if s >= 1.0:
        return 1.0
    r = max(1.0, rows_per_zone)
    return min(1.0, 1.0 - (1.0 - s) ** r)


def join_cardinality(
    left_rows: float,
    right_rows: float,
    key_stats: Sequence[tuple["FieldStats | None", "FieldStats | None"]],
) -> float:
    """Textbook equi-join cardinality estimate.

    ``|L ⋈ R| ≈ |L| · |R| / Π max(V(L, k_l), V(R, k_r))`` over the join-key
    pairs; ``key_stats`` carries each pair's :class:`FieldStats` (either
    side ``None`` when unknown — the left side of a multi-way join mixes
    several tables, so stats are resolved per key, not per table). A pair
    with no distinct-value information on either side contributes no
    reduction (a conservative upper bound). The query planner uses this to
    order joins and to pick hash-build sides.
    """
    cardinality = float(left_rows) * float(right_rows)
    for left_field, right_field in key_stats:
        distinct = 1
        if left_field is not None:
            distinct = max(distinct, left_field.distinct)
        if right_field is not None:
            distinct = max(distinct, right_field.distinct)
        cardinality /= max(1, distinct)
    return cardinality


def _build_histogram(
    values: Sequence[float], lo: float, hi: float
) -> list[int]:
    buckets = [0] * _HISTOGRAM_BUCKETS
    width = (hi - lo) / _HISTOGRAM_BUCKETS
    if width <= 0:
        return []
    for v in values:
        index = min(int((v - lo) / width), _HISTOGRAM_BUCKETS - 1)
        buckets[index] += 1
    return buckets
