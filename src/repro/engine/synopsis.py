"""Per-zone min/max synopses (zone maps) and the pruning decisions they drive.

A *zone* is the natural storage unit of a layout — a slotted row page, one
codec-encoded column chunk, a grid cell, a folded record's nested vectors, an
array page. At render time the :class:`~repro.layout.renderer.LayoutRenderer`
summarizes every zone into a :class:`ZoneSynopsis` (per-field min/max,
null count, and a distinct-value hint) and attaches the collection to the
:class:`~repro.layout.renderer.StoredLayout` as a :class:`LayoutSynopsis`.

At scan time, :mod:`repro.engine.table` extracts per-field intervals from the
query predicate (:func:`predicate_intervals`, built on
:meth:`repro.query.expressions.Predicate.ranges` — *necessary* conditions
only, so pruning can never drop a matching record) and intersects them
against the zone maps **before** any page is fetched or decoded:

* row / array layouts — a per-page *skip set* (:func:`rows_page_skip`);
* column layouts — surviving *row intervals* shared by every scanned group
  (:func:`column_keep_intervals`), so groups with different chunk geometries
  stay positionally aligned while pruned chunks are never read;
* grid / folded layouts — per-cell / per-record keep masks
  (:func:`grid_cell_keep`, :func:`folded_keep`) that refine the existing
  cell-directory and key-range pruning with min/max over *all* fields.

The same metadata answers the planner's question "how many pages will this
scan skip?" exactly and without I/O (:func:`column_pruned_pages`, the skip
sets' sizes), which is what ``Q.explain()`` reports as ``pages_pruned``.

Pruning is always conservative: zones whose min/max are unknown (all-null,
non-numeric against numeric bounds, or fields excluded because they are
stored delta-encoded) are kept.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.layout.renderer import StoredLayout
    from repro.query.expressions import Predicate

#: Per-zone distinct counting stops growing the sample set at this size.
_DISTINCT_CAP = 4096


class FieldZone:
    """Min/max + null count + distinct hint of one field within one zone."""

    __slots__ = ("min_value", "max_value", "null_count", "distinct_hint")

    def __init__(
        self,
        min_value: Any = None,
        max_value: Any = None,
        null_count: int = 0,
        distinct_hint: int = 0,
    ):
        self.min_value = min_value
        self.max_value = max_value
        self.null_count = null_count
        self.distinct_hint = distinct_hint

    def __repr__(self) -> str:
        return (
            f"FieldZone([{self.min_value!r}, {self.max_value!r}] "
            f"nulls={self.null_count} distinct≈{self.distinct_hint})"
        )


class ZoneSynopsis:
    """Synopsis of one zone: row count plus per-field :class:`FieldZone`."""

    __slots__ = ("row_count", "fields")

    def __init__(self, row_count: int = 0, fields: dict | None = None):
        self.row_count = row_count
        self.fields: dict[str, FieldZone] = fields if fields is not None else {}

    def update(self, names: Sequence[str], rows: Iterable[Sequence]) -> None:
        """Fold more records into this synopsis (incremental maintenance).

        Used for in-memory pending/overflow accumulation: inserts extend the
        zone instead of recomputing it from scratch.
        """
        n = 0
        zones = [self.fields.setdefault(name, FieldZone()) for name in names]
        for row in rows:
            n += 1
            for zone, value in zip(zones, row):
                if value is None:
                    zone.null_count += 1
                    continue
                if zone.min_value is None:
                    zone.min_value = zone.max_value = value
                    zone.distinct_hint = 1
                else:
                    if value < zone.min_value:
                        zone.min_value = value
                        zone.distinct_hint += 1
                    elif value > zone.max_value:
                        zone.max_value = value
                        zone.distinct_hint += 1
        self.row_count += n

    def __repr__(self) -> str:
        return f"<ZoneSynopsis rows={self.row_count} fields={self.fields}>"


@dataclass
class LayoutSynopsis:
    """All zone maps of one stored layout, keyed by the layout's geometry.

    Exactly one of the collections is populated per layout kind; the lists
    are parallel to the layout's own directories (``extent.page_ids``,
    ``ColumnGroupStore.chunks`` / group pages, ``cell_directory``,
    ``folded_directory``).
    """

    page_zones: list[ZoneSynopsis] = field(default_factory=list)
    group_zones: list[list[ZoneSynopsis]] = field(default_factory=list)
    cell_zones: list[ZoneSynopsis] = field(default_factory=list)
    folded_zones: list[ZoneSynopsis] = field(default_factory=list)


# ---------------------------------------------------------------------------
# synopsis construction (render-time)
# ---------------------------------------------------------------------------


def _field_zone(values: Sequence[Any]) -> FieldZone:
    zone = FieldZone()
    seen: set = set()
    for value in values:
        if value is None:
            zone.null_count += 1
            continue
        if zone.min_value is None:
            zone.min_value = zone.max_value = value
        elif value < zone.min_value:
            zone.min_value = value
        elif value > zone.max_value:
            zone.max_value = value
        if len(seen) < _DISTINCT_CAP:
            seen.add(value)
    zone.distinct_hint = len(seen)
    return zone


def zone_from_columns(
    names: Sequence[str],
    columns: Sequence[Sequence[Any]],
    skip_fields: Sequence[str] = (),
) -> ZoneSynopsis:
    """Summarize parallel value vectors (one per field) into a zone.

    ``skip_fields`` are recorded only in the row count — used for fields
    whose stored values differ from their logical values (delta encoding),
    where min/max over stored bytes would prune incorrectly.
    """
    row_count = len(columns[0]) if columns else 0
    fields: dict[str, FieldZone] = {}
    for name, column in zip(names, columns):
        if name in skip_fields:
            continue
        fields[name] = _field_zone(column)
    return ZoneSynopsis(row_count, fields)


def zone_from_rows(
    names: Sequence[str],
    rows: Sequence[Sequence[Any]],
    skip_fields: Sequence[str] = (),
) -> ZoneSynopsis:
    """Summarize record tuples into a zone (row-oriented counterpart)."""
    if not rows:
        return ZoneSynopsis(0, {})
    columns = list(zip(*rows))
    zone = zone_from_columns(names, columns, skip_fields)
    zone.row_count = len(rows)
    return zone


def zone_from_parts(
    row_count: int, parts: Mapping[str, Sequence[Any]]
) -> ZoneSynopsis:
    """Zone over heterogeneous per-field value collections.

    Folded records use this: group-key fields contribute a single value,
    nested fields contribute their whole vectors, and ``row_count`` is the
    number of un-nested rows the record expands to.
    """
    return ZoneSynopsis(
        row_count, {name: _field_zone(values) for name, values in parts.items()}
    )


# ---------------------------------------------------------------------------
# predicate intervals and the zone overlap test
# ---------------------------------------------------------------------------


def predicate_intervals(
    predicate: "Predicate | None",
) -> dict[str, tuple[float, float]]:
    """Bounded per-field intervals a predicate implies (prunable fields).

    Delegates to :meth:`Predicate.ranges` — whose contract already
    guarantees necessary conditions — and drops fully unbounded entries.
    """
    if predicate is None:
        return {}
    out: dict[str, tuple[float, float]] = {}
    for name, (lo, hi) in predicate.ranges().items():
        if lo == float("-inf") and hi == float("inf"):
            continue
        out[name] = (lo, hi)
    return out


def _comparable(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def zone_may_match(
    zone: ZoneSynopsis, intervals: Mapping[str, tuple[float, float]]
) -> bool:
    """False only when *no* row of the zone can satisfy the intervals."""
    if zone.row_count == 0:
        return False
    for name, (lo, hi) in intervals.items():
        fz = zone.fields.get(name)
        if fz is None:
            continue  # field not summarized here (e.g. delta-encoded)
        mn, mx = fz.min_value, fz.max_value
        if mn is None or mx is None:
            # No non-null values: a range predicate cannot match nulls.
            if fz.null_count >= zone.row_count:
                return False
            continue
        if not (_comparable(mn) and _comparable(mx)):
            continue  # non-numeric zone vs numeric bounds: keep
        if mx < lo or mn > hi:
            return False
    return True


# ---------------------------------------------------------------------------
# per-layout pruning decisions (metadata only, no I/O)
# ---------------------------------------------------------------------------


def rows_page_skip(
    layout: "StoredLayout", intervals: Mapping[str, tuple[float, float]]
) -> set[int] | None:
    """Page indexes (positions in the extent) a rows/array scan can skip."""
    synopsis = layout.synopsis
    if synopsis is None or not synopsis.page_zones or not intervals:
        return None
    skip = {
        i
        for i, zone in enumerate(synopsis.page_zones)
        if not zone_may_match(zone, intervals)
    }
    return skip or None


def _group_chunk_rows(layout: "StoredLayout", group_index: int) -> list[int]:
    """Row count per chunk (single-field) or per page (mini-record group)."""
    store = layout.column_groups[group_index]
    if len(store.fields) == 1:
        return [rows for _, rows in store.chunks]
    assert layout.synopsis is not None
    return [z.row_count for z in layout.synopsis.group_zones[group_index]]


def column_keep_intervals(
    layout: "StoredLayout",
    group_indexes: Sequence[int],
    intervals: Mapping[str, tuple[float, float]],
) -> list[tuple[int, int]] | None:
    """Surviving row intervals after chunk-zone pruning, or ``None``.

    A row survives only if no scanned group's covering chunk rules it out,
    so the pruned ranges of *all* groups union before complementing —
    pruning in one group skips the aligned rows (and often whole chunks)
    of every other group. ``None`` means pruning does not apply (no
    synopsis, or nothing pruned); an empty list means nothing survives.
    """
    synopsis = layout.synopsis
    if synopsis is None or not synopsis.group_zones or not intervals:
        return None
    pruned: list[tuple[int, int]] = []
    saw_zones = False
    for gi in group_indexes:
        zones = synopsis.group_zones[gi]
        if not zones:
            continue
        start = 0
        for zone in zones:
            end = start + zone.row_count
            saw_zones = True
            if zone.row_count and not zone_may_match(zone, intervals):
                pruned.append((start, end))
            start = end
    if not saw_zones or not pruned:
        return None
    return _complement(_merge_intervals(pruned), layout.row_count)


def _merge_intervals(
    intervals: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    intervals = sorted(intervals)
    merged: list[tuple[int, int]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


def _complement(
    merged: list[tuple[int, int]], total: int
) -> list[tuple[int, int]]:
    keep: list[tuple[int, int]] = []
    cursor = 0
    for lo, hi in merged:
        if lo > cursor:
            keep.append((cursor, lo))
        cursor = max(cursor, hi)
    if cursor < total:
        keep.append((cursor, total))
    return keep


def _overlaps_keep(
    keep: Sequence[tuple[int, int]], start: int, end: int
) -> bool:
    """Does chunk row range [start, end) intersect any kept interval?"""
    i = bisect_right(keep, (start, float("inf"))) - 1
    if i >= 0 and keep[i][1] > start:
        return True
    i += 1
    return i < len(keep) and keep[i][0] < end


def column_pruned_pages(
    layout: "StoredLayout",
    group_indexes: Sequence[int],
    keep: Sequence[tuple[int, int]],
) -> int:
    """Pages a pruned column scan will not fetch, given keep intervals."""
    skipped = 0
    for gi in group_indexes:
        start = 0
        for rows in _group_chunk_rows(layout, gi):
            end = start + rows
            if rows and not _overlaps_keep(keep, start, end):
                skipped += 1
            start = end
    return skipped


def grid_cell_keep(
    layout: "StoredLayout", intervals: Mapping[str, tuple[float, float]]
) -> list[bool] | None:
    """Keep flag per cell-directory entry, or ``None`` when not applicable."""
    synopsis = layout.synopsis
    if synopsis is None or not synopsis.cell_zones or not intervals:
        return None
    return [zone_may_match(z, intervals) for z in synopsis.cell_zones]


def folded_keep(
    layout: "StoredLayout", intervals: Mapping[str, tuple[float, float]]
) -> list[bool] | None:
    """Keep flag per folded-directory entry, or ``None`` when not applicable."""
    synopsis = layout.synopsis
    if synopsis is None or not synopsis.folded_zones or not intervals:
        return None
    return [zone_may_match(z, intervals) for z in synopsis.folded_zones]
