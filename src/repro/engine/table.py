"""The access-method API of the storage system (paper §4.1).

A :class:`Table` exposes exactly the paper's interface:

1. ``scan(fieldlist, predicate, order)`` — full-relation scan with optional
   projection, range predicate, and sort order;
2. ``get_element(index, fieldlist)`` — positional access; a multidimensional
   index addresses a grid cell / array element;
3. ``next(order)`` — the element after the last ``get_element``;
4. ``scan_cost`` / ``get_element_cost`` — estimated milliseconds, computed
   from layout geometry *without touching data pages*;
5. ``order_list`` — sort orders the current organization serves "for free".

Scans follow the paper's §4.1 implementation notes: constituent objects of a
table are stored and walked in the same order (column groups merge
positionally), nested attributes are un-nested by merging with the parent
tuple, and when the requested order differs from the stored order the data is
buffered and re-sorted on the fly.

Inserted records accumulate in row-major *overflow regions* (the "reorganize
only new data" state of §5); scans transparently merge the main layout with
the overflow, and :meth:`Table.compact` folds the overflow back into the main
representation.

Scans execute **batch-at-a-time** internally while keeping the paper's
per-tuple iterator API: the renderer yields page/chunk-sized
:class:`~repro.layout.renderer.ColumnBatch` objects (bulk codec decode, bulk
record deserialization), the predicate is compiled once into a closure /
per-column selection masks (:meth:`repro.query.expressions.Predicate.compile`),
projection is a precomputed ``operator.itemgetter``, and overflow/pending
records trail as extra batches. :meth:`Table.scan_reference` keeps the
original tuple-at-a-time pipeline for equivalence testing and benchmarking;
both paths produce byte-identical results in the same order.
"""

from __future__ import annotations

import operator
import weakref
from itertools import chain, islice
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.algebra import ast
from repro.algebra.physical import (
    LAYOUT_ARRAY,
    LAYOUT_COLUMNS,
    LAYOUT_FOLDED,
    LAYOUT_GRID,
    LAYOUT_LEVELLED,
    LAYOUT_MIRROR,
    LAYOUT_PARTITIONED,
    LAYOUT_ROWS,
    PhysicalPlan,
)
from repro.algebra.transforms import (
    append_records,
    eval_scalar,
    orderby_records,
    project_records,
    select_records,
    undelta_records,
)
from repro.engine import synopsis as zonemaps
from repro.engine.catalog import CatalogEntry
from repro.engine.cost import CostEstimate, CostModel, estimate
from repro.errors import CorruptPageError, QueryError, StorageError
from repro.layout.renderer import (
    DEFAULT_BATCH_ROWS,
    ColumnBatch,
    LayoutRenderer,
    StoredLayout,
    select_column_groups,
)
from repro.query.expressions import Predicate
from repro.types.schema import Schema
from repro.types.values import multisort

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import RodentStore

Order = Sequence[Any]  # field names or (field, ascending) pairs


def normalize_order(order: Order | None) -> tuple[tuple[str, bool], ...]:
    """Normalize an order spec to ((field, ascending), ...)."""
    if not order:
        return ()
    normalized: list[tuple[str, bool]] = []
    for key in order:
        if isinstance(key, str):
            normalized.append((key, True))
        else:
            name, ascending = key
            normalized.append((name, bool(ascending)))
    return tuple(normalized)


def record_pipeline(expr: ast.Node) -> list[ast.Node]:
    """Record-level operators of ``expr`` in application (inner-first) order.

    Used to transform freshly inserted logical records into the stored
    record shape without applying structural layout operators.
    """
    chain: list[ast.Node] = []
    node = expr
    while True:
        if isinstance(node, (ast.TableRef, ast.Literal)):
            return list(reversed(chain))
        if isinstance(node, (ast.Project, ast.Select, ast.Append, ast.OrderBy,
                             ast.Limit)):
            chain.append(node)
        if isinstance(node, ast.Mirror):
            node = node.left
            continue
        if isinstance(node, ast.Prejoin):
            raise StorageError(
                "cannot derive an insert pipeline for prejoined tables"
            )
        (node,) = node.children()


def structural_residual(
    expr: ast.Node,
    stored_ref: str,
    stored_fields: Sequence[str] | None = None,
) -> ast.Node:
    """Rewrite ``expr`` so that its record-level prefix is replaced by a
    reference to the stored records (used when compacting: stored records
    already have the record-level transforms applied).

    ``OrderBy`` is the one record-level operator that is *kept*: the stored
    rows being re-rendered may interleave sorted main-layout records with
    unsorted overflow/pending tails, and the new render claims the plan's
    sort order — so the residual must re-establish it (re-sorting already
    sorted data is a stable no-op). When ``stored_fields`` is given, an
    ``OrderBy`` whose keys are no longer stored (a lossy design projected
    them away) is dropped instead.
    """
    available = set(stored_fields) if stored_fields is not None else None

    def rebuild(node: ast.Node) -> ast.Node:
        if isinstance(node, (ast.TableRef, ast.Literal)):
            return ast.TableRef(stored_ref)
        if isinstance(node, (ast.Project, ast.Select, ast.Append, ast.Limit)):
            return rebuild(node.children()[0])
        if isinstance(node, ast.OrderBy):
            if available is not None and any(
                k.name not in available for k in node.keys
            ):
                return rebuild(node.child)
            return ast.OrderBy(rebuild(node.child), node.keys)
        if isinstance(node, ast.Mirror):
            return ast.Mirror(rebuild(node.left), rebuild(node.right))
        if isinstance(node, ast.Prejoin):
            return ast.TableRef(stored_ref)
        (child,) = node.children()
        return node.with_children([rebuild(child)])

    return rebuild(expr)


class Table:
    """One stored table; created through :class:`repro.engine.database.RodentStore`."""

    def __init__(self, db: "RodentStore", entry: CatalogEntry):
        self._db = db
        self._entry = entry
        # When set, this handle is a *pinned view*: every layout-bearing
        # property below reads the TableSnapshot instead of the live entry,
        # so an in-flight scan keeps seeing the version it opened even as
        # writers commit new layouts. Created by :meth:`_pinned_view`.
        self._snap = None
        self._cursor: Iterator[tuple] | None = None
        self._cursor_order: tuple[tuple[str, bool], ...] = ()
        self._cursor_pos = -1

    def _pinned_view(self, snap) -> "Table":
        """A clone of this handle bound to one MVCC snapshot."""
        view = Table(self._db, self._entry)
        view._snap = snap
        return view

    @property
    def _pending(self):
        """Not-yet-flushed inserts. Lives on the catalog entry — shared by
        every Table handle and preserved across re-layouts (a relayout
        recovers them through the scan path before rendering)."""
        if self._snap is not None:
            return self._snap.pending
        return self._entry.pending

    @property
    def _pending_zone(self) -> zonemaps.ZoneSynopsis | None:
        """Incrementally maintained zone map over the pending buffer, so
        pruned scans can skip the pending batch without touching it."""
        if self._snap is not None:
            return self._snap.pending_zone
        return self._entry.pending_zone

    @property
    def _overflow(self):
        """Overflow regions visible to this handle (snapshot or live)."""
        if self._snap is not None:
            return self._snap.overflow
        return self._entry.overflow

    @property
    def _indexes(self) -> dict:
        if self._snap is not None:
            return self._snap.indexes
        return self._entry.indexes

    @property
    def _spatial_indexes(self) -> dict:
        if self._snap is not None:
            return self._snap.spatial_indexes
        return self._entry.spatial_indexes

    # -- basic properties ---------------------------------------------------

    @property
    def name(self) -> str:
        return self._entry.name

    @property
    def store(self) -> "RodentStore":
        """The owning store (the query planner resolves join tables here)."""
        return self._db

    @property
    def logical_schema(self) -> Schema:
        return self._entry.logical_schema

    @property
    def plan(self) -> PhysicalPlan:
        plan = self._snap.plan if self._snap is not None else self._entry.plan
        if plan is None:
            raise StorageError(f"table {self.name!r} has no physical plan yet")
        return plan

    @property
    def layout(self) -> StoredLayout:
        layout = (
            self._snap.layout if self._snap is not None else self._entry.layout
        )
        if layout is None:
            raise StorageError(f"table {self.name!r} has not been loaded yet")
        return layout

    @property
    def is_loaded(self) -> bool:
        if self.is_partitioned:
            if self._snap is not None:
                return self._snap.partitions_loaded
            return self._entry.partitions_loaded
        if self.is_levelled:
            # A levelled table is born scannable — create, insert, scan —
            # with the first seal rendering run 0; there is no separate
            # bulk-load gate.
            return True
        if self._snap is not None:
            return self._snap.layout is not None
        return self._entry.layout is not None

    # -- horizontal partitions ---------------------------------------------

    @property
    def is_partitioned(self) -> bool:
        plan = self._snap.plan if self._snap is not None else self._entry.plan
        return plan is not None and plan.kind == LAYOUT_PARTITIONED

    @property
    def partitions(self):
        """The table's :class:`~repro.engine.catalog.PartitionRegion` list
        (empty for unpartitioned tables; region views for pinned scans)."""
        if self._snap is not None:
            return self._snap.partitions
        return self._entry.partitions

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    def _require_partitions(self) -> list:
        if self._snap is not None:
            if not self._snap.partitions_loaded:
                raise StorageError(
                    f"table {self.name!r} has not been loaded yet"
                )
            return self._snap.partitions
        if not self._entry.partitions_loaded:
            raise StorageError(
                f"table {self.name!r} has not been loaded yet"
            )
        return self._entry.partitions

    # -- levelled (LSM) runs -----------------------------------------------

    @property
    def is_levelled(self) -> bool:
        plan = self._snap.plan if self._snap is not None else self._entry.plan
        return plan is not None and plan.kind == LAYOUT_LEVELLED

    @property
    def _runs(self):
        """The run manifest, oldest first (snapshot-pinned for scans)."""
        if self._snap is not None:
            return self._snap.runs
        return self._entry.runs

    @property
    def _level_tombstones(self):
        if self._snap is not None:
            return self._snap.level_tombstones
        return self._entry.level_tombstones

    @property
    def run_count(self) -> int:
        return len(self._runs)

    @property
    def row_count(self) -> int:
        if self.is_partitioned:
            return sum(r.row_count for r in self.partitions)
        if self.is_levelled:
            return self._levelled_row_count()
        count = self.layout.row_count if self.is_loaded else 0
        count += sum(o.row_count for o in self._overflow)
        count += len(self._pending)
        return count

    def scan_schema(self) -> Schema:
        """Schema of the tuples a scan produces (folded layouts un-nest)."""
        return _scan_schema(self.plan)

    @property
    def stats(self):
        """Collected :class:`~repro.engine.stats.TableStats`, or ``None``."""
        return self._entry.stats

    def estimated_row_count(self, predicate: Predicate | None = None) -> float:
        """Expected rows a scan with ``predicate`` produces.

        The base count is the table's actual row count; the predicate's
        prunable ranges scale it by histogram selectivity (independence
        assumption). Residual conditions beyond the ranges are ignored, so
        this is an upper-bound style estimate — what the planner needs for
        join ordering and build-side choice.
        """
        base = float(self.row_count)
        if predicate is None or self._entry.stats is None:
            return base
        return base * self._entry.stats.predicate_selectivity(
            predicate.ranges()
        )

    def observed_row_estimate(
        self,
        fieldlist: Sequence[str] | None,
        predicate: Predicate | None,
        order: Order | None = None,
    ) -> float | None:
        """Decayed observed result cardinality of this access shape, if the
        workload monitor has seen it complete before. The planner consults
        this when table statistics cannot price the scan."""
        monitor = self._entry.monitor
        if monitor is None:
            return None
        from repro.optimizer.monitor import access_signature

        key, _, _ = access_signature(
            fieldlist, predicate, normalize_order(order)
        )
        pattern = monitor.patterns.get(key)
        if pattern is None:
            return None
        return pattern.avg_rows

    def record_scan_feedback(self, estimated: float, actual: float) -> None:
        """Planner feedback: a compiled scan's estimated vs actual rows.

        :class:`~repro.query.operators.TableScanOp` reports here after a
        completed execution; the workload monitor folds it into a decayed
        q-error that ``adaptivity_report`` exposes, so estimation drift is
        visible next to the adaptation decisions it influences.
        """
        self._db.adaptivity.record_estimate(self.name, estimated, actual)

    # ==================================================================
    # scan
    # ==================================================================

    def scan(
        self,
        fieldlist: Sequence[str] | None = None,
        predicate: Predicate | None = None,
        order: Order | None = None,
        limit: int | None = None,
    ) -> Iterator[tuple]:
        """Scan the relation (paper §4.1 method 1).

        Args:
            fieldlist: optional projection (output tuple order follows it).
            predicate: optional range predicate; grid layouts use its
                per-field ranges to skip cells via the cell directory, column
                layouts read only the groups the query touches, and row
                layouts with a fresh secondary index probe it instead of
                scanning when the predicate is selective.
            order: optional sort order; when the stored order does not
                satisfy it, the scan buffers and re-sorts.
            limit: optional maximum row count, pushed into the pipeline —
                scans whose order is already satisfied stop reading pages
                once ``limit`` rows survive the predicate.

        The iterator is produced batch-at-a-time internally (see
        :meth:`scan_batches`); results are identical — values and order —
        to the tuple-at-a-time :meth:`scan_reference`.
        """
        batches, mvcc, snap = self._open_scan(
            fieldlist, predicate, order, limit
        )
        # Release at batch granularity: each ColumnBatch lazily streams its
        # native-python rows, and the pin drops once the last batch's
        # iterator has been handed to the chain.
        wrapped = _release_when_done(
            map(ColumnBatch.iter_rows, batches), mvcc, snap
        )
        return _ScanStream(chain.from_iterable(wrapped), wrapped)

    def scan_batches(
        self,
        fieldlist: Sequence[str] | None = None,
        predicate: Predicate | None = None,
        order: Order | None = None,
        limit: int | None = None,
    ) -> Iterator[list[tuple]]:
        """Batch-at-a-time scan: yields lists of output tuples.

        The building blocks are assembled once per scan — vectorized
        selection bitmaps / compiled predicate closures, columnar or
        ``operator.itemgetter`` projection — then applied per batch, so
        per-row Python overhead is amortized across each page/chunk.
        Flattened, the batches equal :meth:`scan_reference` output exactly.
        """
        batches, mvcc, snap = self._open_scan(
            fieldlist, predicate, order, limit
        )
        return _release_when_done(map(ColumnBatch.rows, batches), mvcc, snap)

    def scan_column_batches(
        self,
        fieldlist: Sequence[str] | None = None,
        predicate: Predicate | None = None,
        order: Order | None = None,
        limit: int | None = None,
    ) -> Iterator[ColumnBatch]:
        """Vectorized scan: yields :class:`ColumnBatch` objects directly.

        The physical operators consume this form — columnar batches keep
        their typed vectors (and any pending selection bitmap) all the way
        into joins and aggregates. Row contents and order match
        :meth:`scan_batches` exactly.
        """
        batches, mvcc, snap = self._open_scan(
            fieldlist, predicate, order, limit
        )
        return _release_when_done(batches, mvcc, snap)

    def _open_scan(
        self,
        fieldlist: Sequence[str] | None,
        predicate: Predicate | None,
        order: Order | None,
        limit: int | None,
    ):
        """Shared scan setup: observation, MVCC pin, pinned batch pipeline.

        Returns ``(batches, mvcc, snap)`` — the caller wraps ``batches``
        (an iterator of :class:`ColumnBatch`) in ``_release_when_done``.
        """
        if limit is not None and limit < 0:
            limit = 0  # a negative limit selects nothing, like [:0]
        order_keys = normalize_order(order)
        # Feed the adaptive loop *before* pinning any layout state: a due
        # periodic adaptation may re-render the table here, and the
        # snapshot below then captures the new design.
        observation = self._db.adaptivity.observe_scan(
            self, fieldlist, predicate, order_keys
        )
        mvcc = self._entry.mvcc
        snap = mvcc.pin(self._entry)
        try:
            view = self._pinned_view(snap)
            batches = view._scan_batches_pinned(
                fieldlist, predicate, order_keys, limit, observation
            )
        except BaseException:
            mvcc.release(snap)
            raise
        return batches, mvcc, snap

    def _corruption_guard(
        self, source: Iterator[ColumnBatch], unit: str
    ) -> Iterator[ColumnBatch]:
        """Stream ``source``; contain an unrepairable corrupt page.

        Default behavior re-raises :class:`~repro.errors.CorruptPageError`
        (the query fails loudly). Under ``store.degraded_reads = True`` the
        remaining batches of the affected *unit* (main layout, one overflow
        region, or one partition) are skipped instead, and the skip is
        recorded both on the per-scan report (``corruption_skipped`` in
        explain()) and in the store's integrity registry — degraded results
        are never silently complete.
        """
        try:
            yield from source
        except CorruptPageError as exc:
            if not getattr(self._db, "degraded_reads", False):
                raise
            event = {
                "table": self.name,
                "unit": unit,
                "page_id": exc.page_id,
                "error": str(exc),
            }
            report = getattr(self, "_corruption_report", None)
            if report is not None:
                report.append(event)
            self._db.integrity.record_skip(dict(event))

    def _scan_batches_pinned(
        self,
        fieldlist: Sequence[str] | None,
        predicate: Predicate | None,
        order_keys: tuple[tuple[str, bool], ...],
        limit: int | None,
        observation,
    ) -> Iterator[ColumnBatch]:
        """Body of every scan entry point, running on a pinned view (MVCC
        snapshot): every layout-bearing read below resolves against the
        snapshot, so concurrent commits cannot change what this scan sees.
        Yields :class:`ColumnBatch` objects — filtered, projected, and
        limit-trimmed — that columnar sources keep as typed vectors plus a
        selection bitmap all the way out."""
        # Per-scan degraded-read ledger: corrupt units this scan skipped.
        # Published on the (shared) catalog entry so explain() can report
        # the most recent scan's skips.
        self._corruption_report = []
        self._entry.last_corruption_skipped = self._corruption_report
        needed = self._needed_fields(fieldlist, predicate, order_keys)
        batch_rows = getattr(self._db, "batch_rows", DEFAULT_BATCH_ROWS)
        index_rows = self._index_path(predicate)
        if index_rows is not None:
            avail = self.plan.schema.names()
            # Lazy chunking keeps the probe incremental: a pushed-down
            # limit stops fetching index-matched pages early, so size the
            # chunks to the limit when it is the smaller number.
            probe_chunk = batch_rows
            if limit is not None:
                probe_chunk = max(1, min(probe_chunk, limit))
            batches: Iterator[ColumnBatch] = _chunk_rows(
                index_rows, tuple(avail), probe_chunk
            )
        elif self.is_partitioned:
            batches, avail = self._partition_batches(needed, predicate)
        elif self.is_levelled:
            batches, avail = self._levelled_batches(needed, predicate)
        else:
            batches, avail = self._batches_with_overflow(needed, predicate)
        positions = {name: i for i, name in enumerate(avail)}

        row_filter = None
        use_mask = False
        vectorized = getattr(self._db, "vectorized", True)
        if predicate is not None:
            missing = predicate.fields_used() - set(avail)
            if missing:
                raise QueryError(
                    f"predicate references unavailable field(s) {sorted(missing)}"
                )
            row_filter = predicate.compile(positions)
            # Mask evaluation only helps predicates with a columnar
            # override; the generic fallback would re-zip columns anyway.
            use_mask = (
                type(predicate).filter_batch is not Predicate.filter_batch
            )

        sort_idx: list[int] = []
        sort_desc: list[bool] = []
        sort_needed = bool(order_keys) and not self._order_satisfied(order_keys)
        if sort_needed:
            for name, ascending in order_keys:
                if name not in positions:
                    raise QueryError(f"unknown order field {name!r}")
                sort_idx.append(positions[name])
                sort_desc.append(not ascending)

        scan_names = self.scan_schema().names()
        out_idx: list[int] | None = None
        if fieldlist is not None:
            try:
                out_idx = [positions[f] for f in fieldlist]
            except KeyError as exc:
                raise QueryError(
                    f"unknown projection field {exc.args[0]!r}"
                ) from None
        elif tuple(avail) != tuple(scan_names):
            out_idx = [positions[f] for f in scan_names if f in positions]
        if out_idx is not None and out_idx == list(range(len(avail))):
            out_idx = None  # the projection is already the stored order
        project = _batch_projector(out_idx)
        out_fields = (
            tuple(avail)
            if out_idx is None
            else tuple(avail[i] for i in out_idx)
        )

        def filtered(batch: ColumnBatch) -> ColumnBatch:
            if predicate is None:
                return batch
            if batch.is_columnar:
                if vectorized:
                    bitmap = predicate.filter_vector(
                        batch.column_map(), batch.n_rows
                    )
                    if bitmap is not None:
                        return batch.select(bitmap)
                if use_mask:
                    mask = predicate.filter_batch(
                        batch.column_map(), batch.n_rows
                    )
                    return batch.select(mask)
            return ColumnBatch.from_rows(
                batch.fields, list(filter(row_filter, batch.rows()))
            )

        def projected(batch: ColumnBatch) -> ColumnBatch:
            if project is None:
                return batch
            if batch.is_columnar:
                return batch.project_columns(out_idx, out_fields)
            return ColumnBatch.from_rows(out_fields, project(batch.rows()))

        def generate() -> Iterator[ColumnBatch]:
            if sort_needed:
                collected: list[tuple] = []
                for batch in batches:
                    collected.extend(filtered(batch).rows())
                rows = multisort(collected, sort_idx, sort_desc)
                if project is not None:
                    rows = project(rows)
                if limit is not None:
                    del rows[limit:]
                if rows:
                    yield ColumnBatch.from_rows(out_fields, rows)
                return
            remaining = limit
            if remaining is not None and remaining <= 0:
                return
            for batch in batches:
                batch = filtered(batch)
                if not batch.n_rows:
                    continue
                batch = projected(batch)
                if remaining is not None:
                    if batch.n_rows >= remaining:
                        yield batch.head(remaining)
                        return
                    remaining -= batch.n_rows
                yield batch

        if observation is None or limit is not None:
            # Limited scans skip cardinality feedback: limit is not part of
            # the access signature, so a truncated count would corrupt the
            # pattern's avg_rows for its unlimited siblings.
            batches_out = generate()
        else:
            batches_out = self._db.adaptivity.count_batches(
                observation, generate()
            )
        # Track liveness so an automatic re-layout (which frees this
        # layout's pages) can never fire under a mid-iteration reader.
        return self._db.adaptivity.track_scan(batches_out)

    def scan_reference(
        self,
        fieldlist: Sequence[str] | None = None,
        predicate: Predicate | None = None,
        order: Order | None = None,
    ) -> Iterator[tuple]:
        """Tuple-at-a-time scan — the original (pre-batch) pipeline.

        Kept as the executable specification of :meth:`scan`: equivalence
        tests assert both paths return identical tuples in identical order,
        and the scan benchmarks report before/after against it.
        """
        order_keys = normalize_order(order)
        # The reference path is workload too (same observation shape as the
        # batch path, so either pipeline feeds the same model).
        self._db.adaptivity.observe_scan(
            self, fieldlist, predicate, order_keys
        )
        mvcc = self._entry.mvcc
        snap = mvcc.pin(self._entry)
        try:
            view = self._pinned_view(snap)
            rows = view._scan_reference_pinned(fieldlist, predicate, order_keys)
        except BaseException:
            mvcc.release(snap)
            raise
        return _release_when_done(rows, mvcc, snap)

    def _scan_reference_pinned(
        self,
        fieldlist: Sequence[str] | None,
        predicate: Predicate | None,
        order_keys: tuple[tuple[str, bool], ...],
    ) -> Iterator[tuple]:
        needed = self._needed_fields(fieldlist, predicate, order_keys)
        index_rows = self._index_path(predicate)
        if index_rows is not None:
            rows, avail = index_rows, self.plan.schema.names()
        elif self.is_partitioned:
            rows, avail = self._partition_rows(needed, predicate)
        elif self.is_levelled:
            rows, avail = self._levelled_rows(needed, predicate)
        else:
            rows, avail = self._iter_with_overflow(needed, predicate)
        positions = {name: i for i, name in enumerate(avail)}

        if predicate is not None:
            missing = predicate.fields_used() - set(avail)
            if missing:
                raise QueryError(
                    f"predicate references unavailable field(s) {sorted(missing)}"
                )
            rows = (r for r in rows if predicate.matches(r, positions))

        if order_keys and not self._order_satisfied(order_keys):
            idx = []
            desc = []
            for name, ascending in order_keys:
                if name not in positions:
                    raise QueryError(f"unknown order field {name!r}")
                idx.append(positions[name])
                desc.append(not ascending)
            rows = iter(multisort(list(rows), idx, desc))

        if fieldlist is not None:
            try:
                out_idx = [positions[f] for f in fieldlist]
            except KeyError as exc:
                raise QueryError(
                    f"unknown projection field {exc.args[0]!r}"
                ) from None
            if out_idx != list(range(len(avail))):
                rows = map(_row_projector(out_idx), rows)
        elif tuple(avail) != tuple(self.scan_schema().names()):
            full = self.scan_schema().names()
            out_idx = [positions[f] for f in full if f in positions]
            rows = map(_row_projector(out_idx), rows)
        # Unlike the batch path, no per-row cardinality wrapper (it would
        # tax the reference pipeline, the benchmark baseline — avg_rows
        # comes from scan_batches executions of the same shape); liveness
        # tracking wraps the whole iterator, one hop per scan not per row.
        return self._db.adaptivity.track_scan(rows)

    def _needed_fields(
        self,
        fieldlist: Sequence[str] | None,
        predicate: Predicate | None,
        order_keys: tuple[tuple[str, bool], ...],
    ) -> list[str] | None:
        """Fields a scan must materialize, or None for 'all'."""
        if fieldlist is None:
            return None
        needed = list(fieldlist)
        seen = set(needed)
        if predicate is not None:
            for name in sorted(predicate.fields_used()):
                if name not in seen:
                    needed.append(name)
                    seen.add(name)
        for name, _ in order_keys:
            if name not in seen:
                needed.append(name)
                seen.add(name)
        return needed

    def _prune_intervals(
        self, predicate: Predicate | None
    ) -> dict[str, tuple[float, float]]:
        """Per-field pruning intervals, empty when zone pruning is off."""
        if predicate is None or not getattr(self._db, "zone_pruning", True):
            return {}
        return zonemaps.predicate_intervals(predicate)

    def _batches_with_overflow(
        self,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> tuple[Iterator[ColumnBatch], list[str]]:
        """Main-layout batches with overflow + pending as trailing batches.

        Overflow regions are row-major renders with their own page zone
        maps, and the pending buffer keeps an incrementally maintained
        zone — both prune against the same predicate intervals as the main
        layout.
        """
        main_batches, avail = self._batch_stored(
            self.layout, needed, predicate
        )
        fields = tuple(avail)
        renderer = self._db.renderer
        schema_names = self.scan_schema().names()
        projector = None
        if avail != schema_names:
            project_idx = [schema_names.index(f) for f in avail]
            projector = _batch_projector(project_idx)
        overflow_layouts = list(self._overflow)
        intervals = self._prune_intervals(predicate)
        pending = [tuple(r) for r in self._pending]
        if (
            pending
            and intervals
            and self._pending_zone is not None
            and not zonemaps.zone_may_match(self._pending_zone, intervals)
        ):
            pending = []

        def overflow_batches(overflow) -> Iterator[ColumnBatch]:
            skip = (
                zonemaps.rows_page_skip(overflow, intervals)
                if intervals
                else None
            )
            for batch in renderer.iter_row_batches(overflow, skip=skip):
                if projector is None:
                    yield batch
                else:
                    yield ColumnBatch.from_rows(
                        fields, projector(batch.rows())
                    )

        def chained() -> Iterator[ColumnBatch]:
            yield from self._corruption_guard(main_batches, "main")
            for i, overflow in enumerate(overflow_layouts):
                yield from self._corruption_guard(
                    overflow_batches(overflow), f"overflow[{i}]"
                )
            if pending:
                rows = pending if projector is None else projector(pending)
                yield ColumnBatch.from_rows(fields, rows)

        return chained(), avail

    # ==================================================================
    # partitioned scans (one independently rendered region per partition)
    # ==================================================================

    def _partition_target_fields(self, needed: Sequence[str] | None) -> list[str]:
        """The field order every region's batches project to.

        Regions may carry different designs (their ``avail`` orders differ),
        so partitioned scans normalize to the canonical scan-schema order
        restricted to the fields the scan touches.
        """
        scan_names = self.scan_schema().names()
        if needed is None:
            return list(scan_names)
        needed_set = set(needed)
        return [f for f in scan_names if f in needed_set]

    def partition_survivors(self, predicate: Predicate | None) -> list:
        """Regions a scan with ``predicate`` must read (pure metadata).

        Whole partitions are ruled out by intersecting the predicate's
        per-field ranges with the partition map — range bounds, value keys,
        or (for point predicates) the hash bucket — before any region's
        zone maps even load. Pruning is conservative: expression keys and
        non-numeric values keep every region.
        """
        regions = self._require_partitions()
        if predicate is None or not getattr(
            self._db, "partition_pruning", True
        ):
            return list(regions)
        spec = self.plan.partition
        key_field = spec.key_field if spec is not None else None
        if key_field is None:
            return list(regions)
        ranges = predicate.ranges()
        if key_field not in ranges:
            return list(regions)
        lo, hi = ranges[key_field]
        if lo == float("-inf") and hi == float("inf"):
            return list(regions)
        return [
            r for r in regions if _region_may_match(spec, r, lo, hi)
        ]

    def partitions_pruned(self, predicate: Predicate | None) -> int:
        """Partitions a scan with ``predicate`` skips outright — from the
        partition map alone, no I/O and no counter side effects (what
        ``Q.explain()`` reports per scan node)."""
        if not self.is_partitioned or not self.is_loaded:
            return 0
        regions = self.partitions
        return len(regions) - len(self.partition_survivors(predicate))

    def _partitions_for_scan(self, predicate: Predicate | None) -> list:
        """Survivors for an *executing* scan: updates the cumulative
        pruning counters and feeds per-partition access skew to the
        workload monitor."""
        regions = self._require_partitions()
        survivors = self.partition_survivors(predicate)
        entry = self._entry
        entry.partition_scans += 1
        entry.partitions_pruned_total += len(regions) - len(survivors)
        self._db.adaptivity.observe_partitions(
            self.name, [r.pid for r in survivors]
        )
        return survivors

    def _region_batch_iter(
        self,
        region,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
        target: Sequence[str],
    ):
        """Zero-arg source producing one region's batches (main layout +
        overflow + pending, all zone-pruned) projected to ``target``."""
        renderer = self._db.renderer
        fields = tuple(target)
        scan_names = self.scan_schema().names()

        def generate() -> Iterator[ColumnBatch]:
            intervals = self._prune_intervals(predicate)
            if region.layout is not None and region.layout.row_count:
                main, avail = self._batch_stored(
                    region.layout, needed, predicate
                )
                projector = _fields_projector(avail, target)
                if projector is None:
                    yield from main
                else:
                    for batch in main:
                        yield ColumnBatch.from_rows(
                            fields, projector(batch.rows())
                        )
            over_projector = _fields_projector(scan_names, target)
            for overflow in region.overflow:
                skip = (
                    zonemaps.rows_page_skip(overflow, intervals)
                    if intervals
                    else None
                )
                for batch in renderer.iter_row_batches(overflow, skip=skip):
                    if over_projector is None:
                        yield batch
                    else:
                        yield ColumnBatch.from_rows(
                            fields, over_projector(batch.rows())
                        )
            pending = [tuple(r) for r in region.pending]
            if (
                pending
                and intervals
                and region.pending_zone is not None
                and not zonemaps.zone_may_match(region.pending_zone, intervals)
            ):
                pending = []
            if pending:
                rows = (
                    pending
                    if over_projector is None
                    else over_projector(pending)
                )
                yield ColumnBatch.from_rows(fields, rows)

        unit = f"partition[{region.pid}]"
        return lambda: self._corruption_guard(generate(), unit)

    def _partition_batches(
        self,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> tuple[Iterator[ColumnBatch], list[str]]:
        """Batch source over all surviving partitions.

        With ``store.scan_workers > 1`` and more than one surviving region,
        regions fan out to the store's shared thread pool morsel-style and
        merge back **in partition order**, so parallel results are
        byte-identical to serial ones (the buffer pool is lock-guarded for
        exactly this path).
        """
        target = self._partition_target_fields(needed)
        survivors = self._partitions_for_scan(predicate)
        sources = [
            self._region_batch_iter(region, needed, predicate, target)
            for region in survivors
        ]
        workers = int(getattr(self._db, "scan_workers", 0) or 0)
        if workers > 1 and len(sources) > 1:
            from repro.query.operators import fan_out_partitions

            batches = fan_out_partitions(
                self._db.scan_executor(), sources, workers
            )
        else:

            def serial() -> Iterator[ColumnBatch]:
                for make in sources:
                    yield from make()

            batches = serial()
        return batches, target

    def _region_row_iter(
        self,
        region,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
        target: Sequence[str],
    ) -> Iterator[tuple]:
        """Tuple-at-a-time region scan (the reference-path counterpart of
        :meth:`_region_batch_iter`; overflow/pending stay un-pruned so the
        reference pipeline remains a zone-map-free oracle)."""
        if region.layout is not None and region.layout.row_count:
            main, avail = self._iter_stored(region.layout, needed, predicate)
            projector = _row_fields_projector(avail, target)
            yield from (main if projector is None else map(projector, main))
        scan_names = self.scan_schema().names()
        over = _row_fields_projector(scan_names, target)
        renderer = self._db.renderer
        for overflow in region.overflow:
            it = renderer.iter_rows(overflow)
            yield from (it if over is None else map(over, it))
        if region.pending:
            pending = iter([tuple(r) for r in region.pending])
            yield from (pending if over is None else map(over, pending))

    def _partition_rows(
        self,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> tuple[Iterator[tuple], list[str]]:
        target = self._partition_target_fields(needed)
        survivors = self._partitions_for_scan(predicate)

        def generate() -> Iterator[tuple]:
            for region in survivors:
                yield from self._region_row_iter(
                    region, needed, predicate, target
                )

        return generate(), target

    def _region_rows(self, region) -> list[tuple]:
        """Every stored-shape row of one region (main + overflow +
        pending) in canonical scan order — the source of a
        partition-granular rewrite."""
        target = list(self.scan_schema().names())
        return list(self._region_row_iter(region, None, None, target))

    # ==================================================================
    # levelled (LSM) scans: pending buffer, then runs newest-first
    # ==================================================================

    def _levelled_batches(
        self,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> tuple[Iterator[ColumnBatch], list[str]]:
        """Batch source over a levelled table.

        Segments stream newest-first — the pending buffer, then runs by
        descending ``max_seq`` — through one shared :class:`_LevelResolver`
        carrying last-writer-wins / tombstone state across segments.

        Multiset tables keep every pruning lever (per-run zone and page
        skips, the pending-zone skip): tombstone suppression is by row
        value, independent of what pruning drops. Keyed tables scan
        un-pruned and un-projected instead — a newer version must shadow
        older versions of its key even when the newer row itself fails the
        predicate — leaving selection entirely to the downstream filter.
        """
        spec = self.plan.levels
        keyed = spec.key is not None
        tombstones = self._level_tombstones
        plain = not keyed and not tombstones
        target = (
            self._partition_target_fields(needed)
            if plain
            else list(self.scan_schema().names())
        )
        fields = tuple(target)
        run_needed = needed if plain else None
        run_pred = predicate if not keyed else None
        resolver = _LevelResolver(spec, target, tombstones)
        runs = list(reversed(self._runs))
        pending = [tuple(r) for r in self._pending]
        intervals = self._prune_intervals(run_pred)
        if (
            pending
            and not keyed
            and intervals
            and self._pending_zone is not None
            and not zonemaps.zone_may_match(self._pending_zone, intervals)
        ):
            pending = []
        pending_projector = _fields_projector(
            self.scan_schema().names(), target
        )

        def run_batches(run) -> Iterator[ColumnBatch]:
            if run.layout is None or not run.layout.row_count:
                return
            active = resolver.enter_run(run)
            source, avail = self._batch_stored(
                run.layout, run_needed, run_pred
            )
            projector = _fields_projector(avail, target)
            if not active and not keyed:
                # Fast path (the ingest-heavy case): no suppression can
                # apply, batches pass through the vectorized pipeline.
                if projector is None:
                    yield from source
                    return
                for batch in source:
                    yield ColumnBatch.from_rows(
                        fields, projector(batch.rows())
                    )
                return
            for batch in source:
                rows = batch.rows()
                if projector is not None:
                    rows = projector(rows)
                kept = resolver.resolve(rows)
                if kept:
                    yield ColumnBatch.from_rows(fields, kept)

        def chained() -> Iterator[ColumnBatch]:
            rows = resolver.resolve_pending(pending)
            if rows:
                if pending_projector is not None:
                    rows = pending_projector(rows)
                yield ColumnBatch.from_rows(fields, rows)
            for run in runs:
                yield from self._corruption_guard(
                    run_batches(run), f"run[{run.rid}]"
                )

        return chained(), target

    def _levelled_rows(
        self,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> tuple[Iterator[tuple], list[str]]:
        """Tuple-at-a-time counterpart of :meth:`_levelled_batches` — the
        same newest-first resolution without zone maps (the reference
        oracle both paths must match exactly)."""
        spec = self.plan.levels
        keyed = spec.key is not None
        tombstones = self._level_tombstones
        plain = not keyed and not tombstones
        target = (
            self._partition_target_fields(needed)
            if plain
            else list(self.scan_schema().names())
        )
        run_needed = needed if plain else None
        run_pred = predicate if not keyed else None
        resolver = _LevelResolver(spec, target, tombstones)
        runs = list(reversed(self._runs))
        pending = [tuple(r) for r in self._pending]
        pending_projector = _row_fields_projector(
            self.scan_schema().names(), target
        )

        def generate() -> Iterator[tuple]:
            rows = resolver.resolve_pending(pending)
            if pending_projector is not None:
                rows = [pending_projector(r) for r in rows]
            yield from rows
            for run in runs:
                if run.layout is None or not run.layout.row_count:
                    continue
                active = resolver.enter_run(run)
                source, avail = self._iter_stored(
                    run.layout, run_needed, run_pred
                )
                projector = _row_fields_projector(avail, target)
                if projector is not None:
                    source = map(projector, source)
                if not active and not keyed:
                    yield from source
                    continue
                for row in source:
                    kept = resolver.resolve((row,))
                    if kept:
                        yield kept[0]

        return generate(), target

    def _run_rows(self, run) -> list[tuple]:
        """Every stored row of one run, un-resolved, in stored order and
        canonical scan-schema field order — the compaction merge input."""
        if run.layout is None or not run.layout.row_count:
            return []
        target = list(self.scan_schema().names())
        rows, avail = self._iter_stored(run.layout, None, None)
        projector = _row_fields_projector(avail, target)
        if projector is not None:
            rows = map(projector, rows)
        return [tuple(r) for r in rows]

    def _levelled_row_count(self) -> int:
        spec = self.plan.levels
        if spec.key is None and not self._level_tombstones:
            return len(self._pending) + sum(r.row_count for r in self._runs)
        rows, _ = self._levelled_rows(None, None)
        return sum(1 for _ in rows)

    def _batch_stored(
        self,
        layout: StoredLayout,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> tuple[Iterator[ColumnBatch], list[str]]:
        """Batch-iterate one stored layout: (batches, available fields).

        Mirrors :meth:`_iter_stored` — same pruning decisions (sorted-rows
        page pruning, grid cell pruning, folded key pruning, mirror replica
        choice) — but reads through the renderer's bulk batch path.
        """
        plan = layout.plan
        renderer = self._db.renderer
        batch_rows = getattr(self._db, "batch_rows", DEFAULT_BATCH_ROWS)
        if plan.kind == LAYOUT_ROWS:
            names = plan.schema.names()
            pruned = self._iter_sorted_rows_range(layout, predicate)
            if pruned is not None:
                return _chunk_rows(pruned, tuple(names), batch_rows), names
            if plan.delta_fields:
                # Delta reconstruction needs every preceding record, so
                # page skipping is disabled (zones exclude delta fields
                # anyway — stored values are not the logical values).
                batches = renderer.iter_row_batches(layout)
                positions = {n: i for i, n in enumerate(names)}
                idx = [positions[f] for f in plan.delta_fields]
                return _undelta_batches(batches, idx, tuple(names)), names
            intervals = self._prune_intervals(predicate)
            skip = (
                zonemaps.rows_page_skip(layout, intervals)
                if intervals
                else None
            )
            return renderer.iter_row_batches(layout, skip=skip), names
        if plan.kind == LAYOUT_COLUMNS:
            groups = select_column_groups(layout, needed)
            avail = [f for _, g in groups for f in g.fields]
            indexes = [i for i, _ in groups]
            delta_here = [f for f in plan.delta_fields if f in avail]
            keep = None
            if not delta_here:
                intervals = self._prune_intervals(predicate)
                if intervals:
                    keep = zonemaps.column_keep_intervals(
                        layout, indexes, intervals
                    )
            if keep is not None:
                return (
                    renderer.iter_pruned_column_batches(
                        layout, indexes, keep, batch_size=batch_rows
                    ),
                    avail,
                )
            batches = renderer.iter_column_batches(
                layout, indexes, batch_size=batch_rows
            )
            if delta_here:
                positions = {n: i for i, n in enumerate(avail)}
                idx = [positions[f] for f in delta_here]
                batches = _undelta_batches(batches, idx, tuple(avail))
            return batches, avail
        if plan.kind == LAYOUT_GRID:
            return (
                renderer.iter_batches(
                    layout,
                    batch_size=batch_rows,
                    grid_entries=self._grid_prune_entries(
                        layout, predicate, zones=True
                    ),
                ),
                plan.schema.names(),
            )
        if plan.kind == LAYOUT_FOLDED:
            indices = self._folded_indices(layout, predicate, zones=True)
            return (
                renderer.iter_batches(
                    layout, batch_size=batch_rows, folded_indices=indices
                ),
                _scan_schema(plan).names(),
            )
        if plan.kind == LAYOUT_MIRROR:
            chosen = self._cheaper_mirror(layout, needed, predicate)
            return self._batch_stored(chosen, needed, predicate)
        if plan.kind == LAYOUT_ARRAY:
            intervals = self._prune_intervals(predicate)
            skip = (
                zonemaps.rows_page_skip(layout, intervals)
                if intervals
                else None
            )
            return renderer.iter_array_batches(layout, skip=skip), ["value"]
        raise StorageError(f"cannot scan layout kind {plan.kind!r}")

    def _iter_with_overflow(
        self,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> tuple[Iterator[tuple], list[str]]:
        """Main-layout records chained with overflow + pending records."""
        main_iter, avail = self._iter_stored(
            self.layout, needed, predicate
        )
        extra_sources: list[Iterator[tuple]] = []
        renderer = self._db.renderer
        schema_names = self.scan_schema().names()
        needs_projection = avail != schema_names
        if needs_projection:
            project = _row_projector([schema_names.index(f) for f in avail])
        for overflow in self._overflow:
            it = renderer.iter_rows(overflow)
            if needs_projection:
                it = map(project, it)
            extra_sources.append(it)
        if self._pending:
            pending = iter([tuple(r) for r in self._pending])
            if needs_projection:
                pending = map(project, pending)
            extra_sources.append(pending)

        def chained() -> Iterator[tuple]:
            yield from main_iter
            for source in extra_sources:
                yield from source

        return chained(), avail

    def _iter_stored(
        self,
        layout: StoredLayout,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> tuple[Iterator[tuple], list[str]]:
        """Iterate one stored layout, returning (records, available fields)."""
        plan = layout.plan
        renderer = self._db.renderer
        if plan.kind == LAYOUT_ROWS:
            pruned = self._iter_sorted_rows_range(layout, predicate)
            if pruned is not None:
                return pruned, plan.schema.names()
            rows = renderer.iter_rows(layout)
            if plan.delta_fields:
                positions = {n: i for i, n in enumerate(plan.schema.names())}
                rows = iter(
                    undelta_records(list(rows), positions, plan.delta_fields)
                )
            return rows, plan.schema.names()
        if plan.kind == LAYOUT_COLUMNS:
            return self._iter_columns(layout, needed)
        if plan.kind == LAYOUT_GRID:
            return self._iter_grid(layout, predicate), plan.schema.names()
        if plan.kind == LAYOUT_FOLDED:
            indices = self._folded_indices(layout, predicate)
            return (
                self._iter_unnested(layout, indices),
                _scan_schema(plan).names(),
            )
        if plan.kind == LAYOUT_MIRROR:
            chosen = self._cheaper_mirror(layout, needed, predicate)
            return self._iter_stored(chosen, needed, predicate)
        if plan.kind == LAYOUT_ARRAY:
            leaves = renderer.iter_array_leaves(layout)
            return ((v,) for v in leaves), ["value"]
        raise StorageError(f"cannot scan layout kind {plan.kind!r}")

    def _iter_columns(
        self, layout: StoredLayout, needed: Sequence[str] | None
    ) -> tuple[Iterator[tuple], list[str]]:
        """Positional merge of the column groups a query touches."""
        renderer = self._db.renderer
        plan = layout.plan
        groups = select_column_groups(layout, needed)
        avail: list[str] = []
        iterators: list[tuple[Iterator[Any], bool]] = []
        for i, group in groups:
            avail.extend(group.fields)
            iterators.append(
                (renderer.iter_column_group(layout, i), len(group.fields) > 1)
            )

        def merged() -> Iterator[tuple]:
            while True:
                row: list[Any] = []
                try:
                    for it, is_mini in iterators:
                        value = next(it)
                        if is_mini:
                            row.extend(value)
                        else:
                            row.append(value)
                except StopIteration:
                    return
                yield tuple(row)

        rows: Iterator[tuple] = merged()
        delta_here = [f for f in plan.delta_fields if f in avail]
        if delta_here:
            positions = {n: i for i, n in enumerate(avail)}
            rows = iter(undelta_records(list(rows), positions, delta_here))
        return rows, avail

    def _grid_prune_entries(
        self,
        layout: StoredLayout,
        predicate: Predicate | None,
        zones: bool = False,
    ):
        """Cell-directory entries a predicate cannot rule out, or ``None``
        when no pruning applies.

        Cell-bound pruning on the grid dimensions is always on; ``zones``
        additionally intersects each cell's zone map (min/max over *every*
        stored field) against the predicate intervals — the batch-scan and
        costing path. The tuple-at-a-time reference path keeps
        ``zones=False`` so it stays a zone-map-free oracle.
        """
        if predicate is None:
            return None
        ranges = predicate.ranges()
        dims = layout.plan.grid.dims if layout.plan.grid else ()
        usable = {d: ranges[d] for d in dims if d in ranges}
        keep = None
        if zones:
            intervals = self._prune_intervals(predicate)
            if intervals:
                keep = zonemaps.grid_cell_keep(layout, intervals)
        if not usable and keep is None:
            return None
        if keep is None:
            return layout.cells_overlapping(usable)
        # One pass: zone verdict (parallel to the directory) plus the
        # bounds test, delegated so both share one cell-bound convention.
        return [
            entry
            for entry, kept in zip(layout.cell_directory, keep)
            if kept and layout.entry_overlaps(entry, usable)
        ]

    def _iter_grid(
        self, layout: StoredLayout, predicate: Predicate | None
    ) -> Iterator[tuple]:
        """Cells overlapping the predicate ranges, in stored cell order."""
        renderer = self._db.renderer
        entries = self._grid_prune_entries(layout, predicate)
        if entries is None:
            entries = layout.cell_directory
        for entry in entries:
            yield from renderer.read_cell(layout, entry)

    def _iter_unnested(
        self, layout: StoredLayout, indices: Sequence[int] | None = None
    ) -> Iterator[tuple]:
        """Fold layouts un-nest on scan: merge inner values with the parent."""
        renderer = self._db.renderer
        n_nest = len(layout.plan.nest_fields)
        for row in renderer.iter_folded(layout, indices):
            key = row[:-1]
            for item in row[-1]:
                if n_nest == 1:
                    yield key + (item,)
                else:
                    yield key + tuple(item)

    def _folded_indices(
        self,
        layout: StoredLayout,
        predicate: Predicate | None,
        zones: bool = False,
    ) -> list[int] | None:
        """Folded-record indices surviving group-key range pruning.

        ``zones`` additionally intersects each record's zone map (min/max
        of the *nested* vectors too, not just the group key) against the
        predicate intervals; the reference path keeps ``zones=False`` so it
        stays a zone-map-free oracle.
        """
        if predicate is None or not layout.folded_keys:
            return None
        ranges = predicate.ranges()
        constrained = [
            (position, ranges[name])
            for position, name in enumerate(layout.plan.group_fields)
            if name in ranges
        ]
        zone_keep = None
        if zones:
            intervals = self._prune_intervals(predicate)
            if intervals:
                zone_keep = zonemaps.folded_keep(layout, intervals)
        if not constrained and zone_keep is None:
            return None
        out = []
        for i, key in enumerate(layout.folded_keys):
            if zone_keep is not None and not zone_keep[i]:
                continue
            keep = True
            for position, (lo, hi) in constrained:
                value = key[position]
                if not (
                    isinstance(value, (int, float))
                    and lo <= value <= hi
                ):
                    keep = False
                    break
            if keep:
                out.append(i)
        return out

    def _iter_sorted_rows_range(
        self, layout: StoredLayout, predicate: Predicate | None
    ) -> Iterator[tuple] | None:
        """Page-pruned scan of a sorted rows layout.

        When the stored order's leading key is range-constrained, binary
        search over page boundaries finds the first page that can contain a
        match and the scan stops once the key passes the upper bound —
        touching O(log n + matching) pages instead of all of them.
        """
        plan = layout.plan
        bounds = self._sorted_range_bounds(layout, predicate)
        if bounds is None:
            return None
        lead, lo, hi = bounds
        lead_pos = plan.schema.index_of(lead)
        renderer = self._db.renderer

        def first_key_of_page(page_index: int):
            from repro.storage.page import SlottedPage
            from repro.storage.serializer import RecordSerializer

            page_id = layout.extent.page_ids[page_index]
            frame = renderer.pool.fetch(page_id)
            try:
                page = SlottedPage(renderer.page_size, frame.data)
                blob = page.get(0)
            finally:
                renderer.pool.unpin(page_id)
            return RecordSerializer(plan.schema).decode(blob)[lead_pos]

        n_pages = len(layout.extent.page_ids)
        # Binary search: last page whose first key is <= lo (a match could
        # start inside it); empty pages cannot occur mid-extent.
        left, right = 0, n_pages - 1
        start = 0
        while left <= right:
            mid = (left + right) // 2
            if first_key_of_page(mid) <= lo:
                start = mid
                left = mid + 1
            else:
                right = mid - 1

        def generate() -> Iterator[tuple]:
            from repro.storage.page import SlottedPage
            from repro.storage.serializer import RecordSerializer

            serializer = RecordSerializer(plan.schema)
            for page_index in range(start, n_pages):
                page_id = layout.extent.page_ids[page_index]
                frame = renderer.pool.fetch(page_id)
                try:
                    page = SlottedPage(renderer.page_size, frame.data)
                    blobs = [blob for _, blob in page.records()]
                finally:
                    renderer.pool.unpin(page_id)
                for blob in blobs:
                    record = serializer.decode(blob)
                    key = record[lead_pos]
                    if key > hi:
                        return
                    yield record

        return generate()

    def _cheaper_mirror(
        self,
        layout: StoredLayout,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> StoredLayout:
        """Fractured-mirrors read path: pick the cheaper replica."""
        best = None
        best_cost = None
        for mirror in layout.mirrors:
            cost = self._layout_scan_cost(mirror, needed, predicate)
            if best_cost is None or cost.ms < best_cost.ms:
                best, best_cost = mirror, cost
        assert best is not None
        return best

    def _order_satisfied(self, order_keys: tuple[tuple[str, bool], ...]) -> bool:
        if self.is_partitioned:
            return self._partition_order_satisfied(order_keys)
        if self._overflow or self._pending:
            return False  # overflow regions are unordered relative to main
        stored = tuple(self.plan.sort_keys)
        if len(order_keys) > len(stored):
            return False
        return stored[: len(order_keys)] == order_keys

    def _partition_order_satisfied(
        self, order_keys: tuple[tuple[str, bool], ...]
    ) -> bool:
        """Does a partitioned scan serve ``order_keys`` without sorting?

        Every non-empty region must store that order itself (regions may
        have diverged designs, so each is checked), and — with multiple
        non-empty regions — the regions must concatenate in key order,
        which only range partitioning on the leading (ascending) sort key
        guarantees (regions are kept sorted by range bucket).
        """
        if not order_keys:
            return True
        regions = self.partitions
        if any(r.overflow or r.pending for r in regions):
            return False
        live = [
            r
            for r in regions
            if r.layout is not None and r.layout.row_count
        ]
        for region in live:
            assert region.plan is not None
            stored = tuple(region.plan.sort_keys)
            if (
                len(order_keys) > len(stored)
                or stored[: len(order_keys)] != order_keys
            ):
                return False
        if len(live) <= 1:
            return True
        spec = self.plan.partition
        return (
            spec is not None
            and spec.method == "range"
            and spec.key_field is not None
            and order_keys[0] == (spec.key_field, True)
        )

    # ==================================================================
    # secondary indexes (paper §1: "B+Trees as well as a variety of
    # geo-spatial indices")
    # ==================================================================

    #: Use an index only when the estimated matching fraction is below this.
    INDEX_SELECTIVITY_THRESHOLD = 0.3

    def create_index(self, field_name: str):
        """Build (or rebuild) a B+Tree secondary index over ``field_name``."""
        from repro.engine.indexes import build_field_index

        if self.is_partitioned or self.is_levelled:
            raise StorageError(
                "secondary indexes address flat storage positions; "
                "partitioned and levelled tables prune by region bounds "
                "and per-run zone maps instead"
            )
        index = build_field_index(self, field_name)
        self._entry.indexes[field_name] = index
        return index

    def create_spatial_index(self, x_field: str, y_field: str):
        """Build (or rebuild) an R-Tree over two numeric point fields."""
        from repro.engine.indexes import build_spatial_index

        if self.is_partitioned or self.is_levelled:
            raise StorageError(
                "spatial indexes address flat storage positions; "
                "partitioned and levelled tables prune by region bounds "
                "and per-run zone maps instead"
            )
        index = build_spatial_index(self, x_field, y_field)
        self._entry.spatial_indexes[(x_field, y_field)] = index
        return index

    def drop_index(self, field_name: str) -> None:
        self._entry.indexes.pop(field_name, None)

    def _mark_indexes_stale(self) -> None:
        for index in self._entry.indexes.values():
            index.stale = True
        for index in self._entry.spatial_indexes.values():
            index.stale = True

    def _index_path(
        self, predicate: Predicate | None
    ) -> Iterator[tuple] | None:
        """Probe a fresh secondary index when it would beat the full scan."""
        positions = self._index_positions(predicate)
        if positions is None:
            return None
        from repro.engine.indexes import fetch_rows_by_position

        return fetch_rows_by_position(self, positions)

    def _index_candidate(
        self, predicate: Predicate | None
    ) -> tuple[str, tuple[str, ...]] | None:
        """Which index (if any) a scan would probe — decision only, no I/O.

        Returns ``("spatial", (x, y))`` or ``("field", (name,))``, mirroring
        the gates :meth:`_index_positions` applies before probing; the
        planner uses this to label the access path without paying the probe.
        """
        if (
            predicate is None
            or self.plan.kind != LAYOUT_ROWS
            or self._overflow
            or self._pending
            or not self.layout.page_row_counts
        ):
            return None
        ranges = predicate.ranges()
        stats = self._entry.stats
        for (x_field, y_field) in self._spatial_indexes:
            index = self._spatial_indexes[(x_field, y_field)]
            if index.stale or x_field not in ranges or y_field not in ranges:
                continue
            if not self._selective_enough(stats, ranges, (x_field, y_field)):
                continue
            return "spatial", (x_field, y_field)
        for field_name, index in self._indexes.items():
            if index.stale or field_name not in ranges:
                continue
            lo, hi = ranges[field_name]
            if lo == float("-inf") or hi == float("inf"):
                continue
            if not self._selective_enough(stats, ranges, (field_name,)):
                continue
            return "field", (field_name,)
        return None

    def _index_positions(
        self, predicate: Predicate | None
    ) -> list[int] | None:
        candidate = self._index_candidate(predicate)
        if candidate is None:
            return None
        kind, fields = candidate
        ranges = predicate.ranges()
        if kind == "spatial":
            x_field, y_field = fields
            index = self._spatial_indexes[(x_field, y_field)]
            x_lo, x_hi = ranges[x_field]
            y_lo, y_hi = ranges[y_field]
            return index.positions_in_box(x_lo, x_hi, y_lo, y_hi)
        (field_name,) = fields
        lo, hi = ranges[field_name]
        return self._indexes[field_name].positions_in_range(lo, hi)

    def _selective_enough(
        self, stats, ranges: dict, fields: tuple[str, ...]
    ) -> bool:
        if stats is None:
            return True
        fraction = 1.0
        for name in fields:
            field_stats = stats.fields.get(name)
            if field_stats is not None:
                lo, hi = ranges[name]
                fraction *= field_stats.selectivity(lo, hi)
        return fraction <= self.INDEX_SELECTIVITY_THRESHOLD

    # ==================================================================
    # get_element / next
    # ==================================================================

    def get_element(
        self,
        index: int | Sequence[int],
        fieldlist: Sequence[str] | None = None,
    ):
        """Positional access (paper §4.1 method 2).

        For array layouts a multidimensional ``index`` addresses one element;
        for grid layouts it addresses a cell (returning the cell's records);
        otherwise ``index`` is a flat position in storage order.
        """
        plan = self.plan
        renderer = self._db.renderer
        if plan.kind == LAYOUT_ARRAY:
            return renderer.get_array_element(self.layout, index)
        if plan.kind == LAYOUT_GRID and not isinstance(index, int):
            entry = self._cell_at(tuple(index))
            records = renderer.read_cell(self.layout, entry)
            return self._project_records(records, fieldlist)
        if not isinstance(index, int):
            raise QueryError(
                f"layout {plan.kind} requires a flat integer index"
            )
        record = self._element_at(index)
        self._cursor = None
        self._cursor_pos = index
        if fieldlist is None:
            return record
        projected = self._project_records([record], fieldlist)
        return projected[0]

    def _cell_at(self, coord: tuple[int, ...]):
        for entry in self.layout.cell_directory:
            if entry.coord == coord:
                return entry
        raise QueryError(f"no grid cell at coordinate {coord}")

    def _element_at(self, index: int) -> tuple:
        if index < 0:
            raise QueryError("element index must be non-negative")
        plan = self.plan
        renderer = self._db.renderer
        if plan.kind == LAYOUT_ROWS and self.layout.page_row_counts:
            remaining = index
            for page_pos, count in enumerate(self.layout.page_row_counts):
                if remaining < count:
                    page_id = self.layout.extent.page_ids[page_pos]
                    frame = renderer.pool.fetch(page_id)
                    try:
                        from repro.storage.page import SlottedPage
                        from repro.storage.serializer import RecordSerializer

                        page = SlottedPage(renderer.page_size, frame.data)
                        blob = page.get(remaining)
                        record = RecordSerializer(plan.schema).decode(blob)
                    finally:
                        renderer.pool.unpin(page_id)
                    if plan.delta_fields:
                        # Delta rows need the running prefix; fall back to
                        # a sequential walk for correctness.
                        break
                    return record
                remaining -= count
            else:
                # fell through all pages; check overflow/pending below
                pass
        # Positional fallback walk — engine plumbing, not query workload.
        with self._db.adaptivity.pause():
            for position, record in enumerate(self.scan()):
                if position == index:
                    return record
        raise QueryError(
            f"element index {index} out of range (table has "
            f"{self.row_count} rows)"
        )

    def next(self, order: Order | None = None):
        """The element after the previous ``get_element`` (§4.1 method 3)."""
        order_keys = normalize_order(order)
        if self._cursor is None or order_keys != self._cursor_order:
            start = getattr(self, "_cursor_pos", -1) + 1
            self._cursor = self._scan_from(start, order)
            self._cursor_order = order_keys
        try:
            value = next(self._cursor)
        except StopIteration:
            self._cursor = None
            raise QueryError("next() past the end of the table") from None
        self._cursor_pos = getattr(self, "_cursor_pos", -1) + 1
        return value

    def _scan_from(self, start: int, order: Order | None) -> Iterator[tuple]:
        """Row iterator positioned at row ``start``: whole batches ahead of
        the target are counted and dropped without per-tuple ``next()``
        calls (the cursor-rebuild path after ``get_element``)."""
        with self._db.adaptivity.pause():  # cursor plumbing, not workload
            if start <= 0:
                return self.scan(order=order)
            batches = self.scan_batches(order=order)

        def generate() -> Iterator[tuple]:
            remaining = start
            for batch in batches:
                if remaining >= len(batch):
                    remaining -= len(batch)
                    continue
                yield from (batch[remaining:] if remaining else batch)
                remaining = 0

        return generate()

    def _project_records(
        self, records: list[tuple], fieldlist: Sequence[str] | None
    ) -> list[tuple]:
        if fieldlist is None:
            return records
        positions = {n: i for i, n in enumerate(self.scan_schema().names())}
        try:
            out_idx = [positions[f] for f in fieldlist]
        except KeyError as exc:
            raise QueryError(
                f"unknown projection field {exc.args[0]!r}"
            ) from None
        return _batch_projector(out_idx)(records)

    # ==================================================================
    # cost API
    # ==================================================================

    def scan_cost(
        self,
        fieldlist: Sequence[str] | None = None,
        predicate: Predicate | None = None,
        order: Order | None = None,
    ) -> CostEstimate:
        """Estimated cost of the scan, in milliseconds (§4.1 method 4)."""
        order_keys = normalize_order(order)
        needed = self._needed_fields(fieldlist, predicate, order_keys)
        total = self._full_scan_estimate(needed, predicate)
        via_index = self._index_cost(predicate)
        if via_index is not None and via_index.ms < total.ms:
            return via_index
        return total

    def _full_scan_estimate(
        self,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> CostEstimate:
        """Main-layout scan cost plus one pass per overflow region (the
        shared scan branch of :meth:`scan_cost` and :meth:`access_path`).

        Partitioned tables sum the surviving regions only — partition
        pruning shows up in the estimate exactly as it does at runtime.
        """
        model = self._db.cost_model
        if self.is_partitioned:
            total = CostEstimate.zero()
            for region in self.partition_survivors(predicate):
                if region.layout is not None:
                    total = total + self._layout_scan_cost(
                        region.layout, needed, predicate
                    )
                for overflow in region.overflow:
                    total = total + estimate(
                        model, overflow.total_pages(), 1
                    )
            return total
        if self.is_levelled:
            # One independently costed pass per run (pending rows are
            # memory-resident). Keyed tables scan un-pruned — see
            # :meth:`_levelled_batches` — so their estimate must too.
            keyed = self.plan.levels.key is not None
            run_pred = None if keyed else predicate
            run_needed = (
                needed if not keyed and not self._level_tombstones else None
            )
            total = CostEstimate.zero()
            for run in self._runs:
                if run.layout is not None:
                    total = total + self._layout_scan_cost(
                        run.layout, run_needed, run_pred
                    )
            return total
        total = self._layout_scan_cost(self.layout, needed, predicate)
        for overflow in self._overflow:
            total = total + estimate(model, overflow.total_pages(), 1)
        return total

    def access_path(
        self,
        fieldlist: Sequence[str] | None = None,
        predicate: Predicate | None = None,
        order: Order | None = None,
    ) -> tuple[str, CostEstimate]:
        """The access method a scan with these arguments will actually use.

        Returns ``("index", cost)`` or ``("scan", cost)``. Unlike
        :meth:`scan_cost` — which returns the cheaper of the two estimates —
        this mirrors the runtime gate (:meth:`_index_candidate`: a fresh,
        range-covered, selective-enough index), so ``Q.explain()`` reports
        the path :meth:`scan_batches` will take, with its estimated cost.
        """
        order_keys = normalize_order(order)
        needed = self._needed_fields(fieldlist, predicate, order_keys)
        if self._index_candidate(predicate) is not None:
            via_index = self._index_cost(predicate)
            if via_index is not None:
                return "index", via_index
        return "scan", self._full_scan_estimate(needed, predicate)

    def pruned_pages(
        self,
        predicate: Predicate | None = None,
        fieldlist: Sequence[str] | None = None,
    ) -> int:
        """Exact number of data pages zone-map pruning will skip.

        Computed purely from the layout synopses and the predicate's
        per-field intervals — no data page is touched — and mirrors the
        decisions :meth:`scan_batches` makes (including overflow regions),
        so ``Q.explain()`` can report it per scan node before execution.
        """
        if predicate is None or not self.is_loaded:
            return 0
        intervals = self._prune_intervals(predicate)
        needed = self._needed_fields(fieldlist, predicate, ())
        if self.is_partitioned:
            survivors = {
                r.pid for r in self.partition_survivors(predicate)
            }
            total = 0
            for region in self.partitions:
                if region.pid not in survivors:
                    # The whole region is skipped: every one of its pages
                    # (main layout and overflow) counts as pruned.
                    total += region.total_pages()
                    continue
                if not intervals:
                    continue
                if region.layout is not None:
                    total += self._layout_pruned_pages(
                        region.layout, needed, predicate
                    )
                for overflow in region.overflow:
                    skip = zonemaps.rows_page_skip(overflow, intervals)
                    if skip:
                        total += len(skip)
            return total
        if self.is_levelled:
            if self.plan.levels.key is not None or not intervals:
                return 0  # keyed scans never prune (shadowing soundness)
            run_needed = None if self._level_tombstones else needed
            total = 0
            for run in self._runs:
                if run.layout is not None:
                    total += self._layout_pruned_pages(
                        run.layout, run_needed, predicate
                    )
            return total
        if not intervals:
            return 0
        total = self._layout_pruned_pages(self.layout, needed, predicate)
        for overflow in self._overflow:
            skip = zonemaps.rows_page_skip(overflow, intervals)
            if skip:
                total += len(skip)
        return total

    def _layout_pruned_pages(
        self,
        layout: StoredLayout,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> int:
        """Pages of ``layout`` the batch scan will skip (metadata only)."""
        intervals = self._prune_intervals(predicate)
        if not intervals:
            return 0
        plan = layout.plan
        if plan.kind == LAYOUT_ROWS:
            if plan.delta_fields or self._sorted_prune_applies(
                layout, predicate
            ):
                return 0
            skip = zonemaps.rows_page_skip(layout, intervals)
            return len(skip) if skip else 0
        if plan.kind == LAYOUT_ARRAY:
            skip = zonemaps.rows_page_skip(layout, intervals)
            return len(skip) if skip else 0
        if plan.kind == LAYOUT_COLUMNS:
            groups = select_column_groups(layout, needed)
            avail = [f for _, g in groups for f in g.fields]
            if any(f in avail for f in plan.delta_fields):
                return 0
            indexes = [i for i, _ in groups]
            keep = zonemaps.column_keep_intervals(layout, indexes, intervals)
            if keep is None:
                return 0
            return zonemaps.column_pruned_pages(layout, indexes, keep)
        if plan.kind == LAYOUT_GRID:
            entries = self._grid_prune_entries(layout, predicate, zones=True)
            if entries is None:
                return 0
            renderer = self._db.renderer
            all_pages = renderer.pages_for_cells(
                layout, layout.cell_directory
            )
            kept_pages = renderer.pages_for_cells(layout, entries)
            return len(all_pages) - len(kept_pages)
        if plan.kind == LAYOUT_FOLDED:
            indices = self._folded_indices(layout, predicate, zones=True)
            if indices is None or layout.extent is None:
                return 0
            touched = self._db.renderer.pages_for_stream_ranges(
                layout, [layout.folded_directory[i] for i in indices]
            )
            return len(layout.extent.page_ids) - len(touched)
        if plan.kind == LAYOUT_MIRROR:
            chosen = self._cheaper_mirror(layout, needed, predicate)
            return self._layout_pruned_pages(chosen, needed, predicate)
        return 0

    def _sorted_prune_applies(
        self, layout: StoredLayout, predicate: Predicate | None
    ) -> bool:
        """Will :meth:`_iter_sorted_rows_range` handle this scan instead?

        Shares that method's gate (:meth:`_sorted_range_bounds`) but does
        no binary-search page fetches — pure metadata, usable from the
        costing paths.
        """
        return self._sorted_range_bounds(layout, predicate) is not None

    def _sorted_range_bounds(
        self, layout: StoredLayout, predicate: Predicate | None
    ) -> tuple[str, float, float] | None:
        """The (leading key, lo, hi) a sorted-rows range scan can use, or
        ``None`` — the single gate shared by the runtime path
        (:meth:`_iter_sorted_rows_range`) and its metadata twin
        (:meth:`_sorted_prune_applies`), so the two can never diverge."""
        plan = layout.plan
        if (
            not plan.sort_keys
            or plan.delta_fields
            or predicate is None
            or not layout.page_row_counts
            or layout.extent is None
        ):
            return None
        lead, ascending = plan.sort_keys[0]
        if not ascending:
            return None  # descending pruning omitted for clarity
        ranges = predicate.ranges()
        if lead not in ranges:
            return None
        lo, hi = ranges[lead]
        if lo == float("-inf") and hi == float("inf"):
            return None
        return lead, lo, hi

    def _index_cost(self, predicate: Predicate | None) -> CostEstimate | None:
        """Estimated cost of the secondary-index path, from statistics."""
        if (
            predicate is None
            or self.plan.kind != LAYOUT_ROWS
            or self._overflow
            or self._pending
        ):
            return None
        stats = self._entry.stats
        ranges = predicate.ranges()
        model = self._db.cost_model
        data_pages = self.layout.total_pages()
        best: CostEstimate | None = None
        candidates: list[tuple[tuple[str, ...], int]] = []
        for (x, y), index in self._spatial_indexes.items():
            if not index.stale and x in ranges and y in ranges:
                candidates.append(((x, y), index.tree.height))
        for name, index in self._indexes.items():
            if not index.stale and name in ranges:
                lo, hi = ranges[name]
                if lo != float("-inf") and hi != float("inf"):
                    candidates.append(((name,), index.tree.height))
        for fields, height in candidates:
            fraction = 1.0
            if stats is not None:
                for name in fields:
                    field_stats = stats.fields.get(name)
                    if field_stats is not None:
                        lo, hi = ranges[name]
                        fraction *= field_stats.selectivity(lo, hi)
            pages = height + max(1.0, fraction * data_pages)
            # Matching rows scatter across pages: roughly one seek per page.
            cost = estimate(model, pages, pages)
            if best is None or cost.ms < best.ms:
                best = cost
        return best

    def _layout_scan_cost(
        self,
        layout: StoredLayout,
        needed: Sequence[str] | None,
        predicate: Predicate | None,
    ) -> CostEstimate:
        model = self._db.cost_model
        plan = layout.plan
        if plan.kind == LAYOUT_ROWS:
            pages = layout.total_pages()
            if predicate is not None and plan.sort_keys and not plan.delta_fields:
                lead, ascending = plan.sort_keys[0]
                ranges = predicate.ranges()
                if ascending and lead in ranges and self._entry.stats:
                    field_stats = self._entry.stats.fields.get(lead)
                    if field_stats is not None:
                        lo, hi = ranges[lead]
                        fraction = field_stats.selectivity(lo, hi)
                        import math

                        pages = min(
                            pages,
                            math.ceil(math.log2(pages + 1))
                            + max(1, math.ceil(pages * fraction)),
                        )
            pruned = self._layout_pruned_pages(layout, needed, predicate)
            if pruned:
                pages = min(pages, layout.total_pages() - pruned)
            return estimate(model, pages, 1)
        if plan.kind == LAYOUT_FOLDED:
            indices = self._folded_indices(layout, predicate, zones=True)
            if indices is not None and layout.extent is not None:
                pages = self._db.renderer.pages_for_stream_ranges(
                    layout, [layout.folded_directory[i] for i in indices]
                )
                return estimate(model, len(pages), _count_runs(pages))
            return estimate(model, layout.total_pages(), 1)
        if plan.kind == LAYOUT_ARRAY:
            pages = layout.total_pages()
            pages -= self._layout_pruned_pages(layout, needed, predicate)
            return estimate(model, max(1, pages), 1)
        if plan.kind == LAYOUT_COLUMNS:
            groups = [g for _, g in select_column_groups(layout, needed)]
            pages = sum(len(g.extent.page_ids) for g in groups)
            pages -= self._layout_pruned_pages(layout, needed, predicate)
            return estimate(model, max(1, pages), max(1, len(groups)))
        if plan.kind == LAYOUT_GRID:
            entries = self._grid_prune_entries(layout, predicate, zones=True)
            if entries is None:
                entries = layout.cell_directory
            pages = self._db.renderer.pages_for_cells(layout, entries)
            return estimate(model, len(pages), _count_runs(pages))
        if plan.kind == LAYOUT_MIRROR:
            costs = [
                self._layout_scan_cost(m, needed, predicate)
                for m in layout.mirrors
            ]
            return min(costs, key=lambda c: c.ms)
        raise StorageError(f"cannot cost layout kind {plan.kind!r}")

    def get_element_cost(
        self,
        index: int | Sequence[int],
        fieldlist: Sequence[str] | None = None,
    ) -> CostEstimate:
        """Estimated cost of ``get_element`` (§4.1 method 5)."""
        model = self._db.cost_model
        plan = self.plan
        if plan.kind in (LAYOUT_PARTITIONED, LAYOUT_LEVELLED):
            # Positional access walks the regions/runs in scan order.
            return self._full_scan_estimate(None, None)
        if plan.kind == LAYOUT_ROWS:
            return estimate(model, 1, 1)
        if plan.kind == LAYOUT_ARRAY:
            return estimate(model, 1, 1)
        if plan.kind == LAYOUT_GRID and not isinstance(index, int):
            try:
                entry = self._cell_at(tuple(index))
            except QueryError:
                return estimate(model, 0, 0)
            pages = self._db.renderer.pages_for_cells(self.layout, [entry])
            return estimate(model, len(pages), _count_runs(pages))
        if plan.kind == LAYOUT_COLUMNS:
            needed = fieldlist if fieldlist is not None else plan.schema.names()
            needed_set = set(needed)
            groups = [
                g
                for g in self.layout.column_groups
                if needed_set & set(g.fields)
            ]
            return estimate(model, max(1, len(groups)), max(1, len(groups)))
        # Folded/mirror and exotic cases: one pass over the layout, bounded by
        # a full scan.
        return self._layout_scan_cost(self.layout, None, None)

    def order_list(self) -> list[tuple[tuple[str, bool], ...]]:
        """Sort orders the current organization serves efficiently (§4.1
        method 6): every prefix of the stored sort keys."""
        stored = tuple(self.plan.sort_keys)
        return [stored[: i + 1] for i in range(len(stored))]

    def order_satisfied(self, order: Order | None) -> bool:
        """True when a scan with ``order`` will not buffer-and-sort.

        The public face of the runtime gate scans use: the stored sort keys
        must prefix-cover ``order`` and no unordered overflow/pending rows
        may trail the main layout. The query planner consults this (rather
        than re-deriving it from :meth:`order_list`) so its sort-cost
        estimates track exactly what :meth:`scan_batches` will do.
        """
        return self._order_satisfied(normalize_order(order))

    # ==================================================================
    # inserts, overflow, compaction (paper §5 reorganization states)
    # ==================================================================

    def insert(self, records: Sequence[Sequence[Any]]) -> int:
        """Insert logical records; they land in the pending buffer.

        The insert runs as a transaction: the surviving rows are WAL-logged
        (durable stores) so crash recovery can replay them, and the pending
        buffer swap happens under the entry's MVCC lock so pinned scans
        never observe a half-applied batch.

        Returns the number of records that survive the plan's record-level
        pipeline (a plan with a ``select`` drops non-matching records).
        """
        coerced = [self.logical_schema.coerce_record(r) for r in records]
        transformed = self._apply_record_pipeline(coerced)
        entry = self._entry
        with self._db.mutate(self.name) as m:
            with entry.mvcc.lock:
                if self.is_partitioned:
                    # Route each record to its owning partition's pending
                    # buffer (creating regions for unseen value-partition
                    # keys), keeping that partition's zone map current.
                    if transformed:
                        self._route_pending(transformed)
                elif transformed:
                    entry.pending.extend(transformed)
                    # Incremental synopsis over the pending buffer: each
                    # insert extends the running zone instead of rescanning.
                    if entry.pending_zone is None:
                        entry.pending_zone = zonemaps.ZoneSynopsis()
                    entry.pending_zone.update(
                        self.scan_schema().names(), transformed
                    )
                    self._mark_indexes_stale()
            if transformed:
                m.log_rows(self.name, transformed)
        if transformed and entry.plan is not None and (
            entry.plan.kind == LAYOUT_LEVELLED
        ):
            # After the insert transaction commits: seal a full pending
            # buffer into a level-0 run and kick compaction when a level
            # reaches its fan-out (a crash in between simply leaves the
            # rows in pending for the next seal — WAL replay restores
            # them from the insert's KIND_ROWS record).
            self._db.adaptivity.note_write(self.name, len(transformed))
            self._db.maintain_levels(self.name)
        return len(transformed)

    def _route_pending(self, rows: list[tuple]) -> None:
        db, entry = self._db, self._entry
        router = db.router_for(entry)
        names = self.scan_schema().names()
        grouped: dict[int, list[tuple]] = {}
        regions: dict[int, Any] = {}
        for row in rows:
            region = db._region_for(entry, router.locate(row))
            grouped.setdefault(region.pid, []).append(row)
            regions[region.pid] = region
        for pid, batch in grouped.items():
            region = regions[pid]
            region.pending.extend(batch)
            if region.pending_zone is None:
                region.pending_zone = zonemaps.ZoneSynopsis()
            region.pending_zone.update(names, batch)

    def _apply_record_pipeline(
        self, records: list[tuple], plan: PhysicalPlan | None = None
    ) -> list[tuple]:
        if plan is None:
            plan = self.plan
        fields = list(self.logical_schema.names())
        current = records
        for op in record_pipeline(plan.expr):
            positions = {n: i for i, n in enumerate(fields)}
            if isinstance(op, ast.Project):
                current = project_records(current, positions, op.fields)
                fields = list(op.fields)
            elif isinstance(op, ast.Select):
                current = select_records(current, positions, op.condition)
            elif isinstance(op, ast.Append):
                current = append_records(current, positions, op.elements)
                fields = fields + [name for name, _ in op.elements]
            elif isinstance(op, ast.OrderBy):
                current = orderby_records(current, positions, op.keys)
            elif isinstance(op, ast.Limit):
                current = current[: op.count]
        target = _scan_schema(plan).names()
        if fields != target:
            positions = {n: i for i, n in enumerate(fields)}
            current = project_records(current, positions, target)
        return current

    def flush_inserts(self):
        """Render pending records into new on-disk overflow regions.

        Returns the overflow layout (or, for partitioned tables, the list
        of per-partition overflow layouts); ``None`` when nothing was
        pending.
        """
        entry = self._entry
        if self.is_levelled:
            # Levelled tables flush by sealing the pending buffer into a
            # new level-0 run (the returned layout is the run's).
            return self._db.seal_level_run(self.name)
        with self._db.mutate(self.name) as m:
            if self.is_partitioned:
                flushed = []
                for region in entry.partitions:
                    if not region.pending:
                        continue
                    overflow = self._db.render_overflow_region(
                        self.scan_schema(), region.pending
                    )
                    with entry.mvcc.lock:
                        region.overflow.append(overflow)
                        region.pending = []
                        region.pending_zone = None
                    m.log_layout(overflow)
                    flushed.append(overflow)
                if flushed:
                    m.touch(self.name)
                return flushed or None
            if not entry.pending:
                return None
            overflow = self._db.render_overflow_region(
                self.scan_schema(), entry.pending
            )
            with entry.mvcc.lock:
                entry.overflow.append(overflow)
                entry.pending = []
                entry.pending_zone = None
                self._db._wa_note(entry, overflow, ingest=True)
            m.log_layout(overflow)
            m.touch(self.name)
            return overflow

    @property
    def overflow_row_count(self) -> int:
        if self.is_partitioned:
            return sum(
                sum(o.row_count for o in r.overflow) + len(r.pending)
                for r in self.partitions
            )
        return sum(o.row_count for o in self._overflow) + len(
            self._pending
        )

    def compact(self) -> None:
        """Merge overflow regions back into the main representation.

        For levelled tables this is a *full* compaction: every run plus
        the pending buffer merges into a single run, applying tombstones
        and last-writer-wins resolution physically.
        """
        if self.is_levelled:
            self._db.compact_levels(self.name, full=True)
            return
        self._db.compact_table(self.name)

    # ==================================================================
    # deletes and updates (copy-on-write rewrites)
    # ==================================================================

    def delete(self, predicate: Predicate | None = None) -> int:
        """Transactionally remove matching rows (all rows when ``predicate``
        is ``None``).

        Deletes are copy-on-write: the surviving rows are re-rendered into
        fresh pages (per-region for partitioned tables) and swapped in at
        commit, so in-flight snapshot scans keep reading the old version.
        Returns the number of rows removed.
        """
        return self._rewrite(predicate, None)

    def update(
        self, assignments: dict, predicate: Predicate | None = None
    ) -> int:
        """Transactionally update matching rows.

        ``assignments`` maps field name -> new value, or field name -> a
        callable receiving the row as a dict and returning the new value.
        Same copy-on-write mechanics as :meth:`delete`. Returns the number
        of rows changed.
        """
        if not assignments:
            return 0
        return self._rewrite(predicate, assignments)

    def _rewrite(
        self, predicate: Predicate | None, assignments: dict | None
    ) -> int:
        entry = self._entry
        names = self.scan_schema().names()
        positions = {n: i for i, n in enumerate(names)}
        if assignments is not None:
            unknown = sorted(set(assignments) - set(names))
            if unknown:
                raise QueryError(
                    f"cannot update unknown field(s) {unknown}"
                )
        if predicate is not None:
            missing = predicate.fields_used() - set(names)
            if missing:
                raise QueryError(
                    f"predicate references unavailable field(s) "
                    f"{sorted(missing)}"
                )
        if assignments is not None and self.is_partitioned:
            spec = self.plan.partition
            if spec is not None and spec.key_field in assignments:
                raise StorageError(
                    "cannot update the partition key in place; "
                    "re-load or re-layout the table instead"
                )
        if self.is_levelled:
            return self._rewrite_levelled(
                predicate, assignments, names, positions
            )

        def transform(rows: list[tuple]) -> tuple[list[tuple], int]:
            changed = 0
            out: list[tuple] = []
            for row in rows:
                if predicate is not None and not predicate.matches(
                    row, positions
                ):
                    out.append(row)
                    continue
                changed += 1
                if assignments is None:
                    continue  # delete: drop the row
                values = list(row)
                for field, value in assignments.items():
                    if callable(value):
                        value = value(dict(zip(names, row)))
                    values[positions[field]] = value
                out.append(tuple(values))
            return out, changed

        with self._db.mutate(self.name) as m:
            if self.is_partitioned:
                total = 0
                for region in self._require_partitions():
                    with self._db.adaptivity.pause():
                        rows = self._region_rows(region)
                    new_rows, changed = transform(rows)
                    if not changed:
                        continue
                    total += changed
                    new_layout = self._db._render_region(
                        self.plan, region.plan, new_rows
                    )
                    with entry.mvcc.lock:
                        old_layout = region.layout
                        old_overflow = list(region.overflow)
                        region.layout = new_layout
                        region.overflow = []
                        region.pending = []
                        region.pending_zone = None
                        entry.mvcc.retire(
                            self._db._layout_freer(old_layout, *old_overflow)
                        )
                    m.log_layout(new_layout)
                if total:
                    m.touch(self.name)
                return total
            with self._db.adaptivity.pause():
                rows = list(self.scan())
            new_rows, changed = transform(rows)
            if not changed:
                return 0
            self._db._rewrite_stored(entry, new_rows, m)
            return changed

    def _rewrite_levelled(
        self,
        predicate: Predicate | None,
        assignments: dict | None,
        names: list[str],
        positions: dict[str, int],
    ) -> int:
        """Delete/update on a levelled table: no run is ever rewritten.

        Matching *visible* rows are resolved once; pending rows are
        filtered (and, for updates, re-appended transformed) in place, and
        one tombstone per distinct victim — merge key when keyed, full row
        value otherwise — suppresses matches in the immutable runs until a
        merge physically drops them. The pending zone synopsis is rebuilt
        incrementally from the surviving rows, never left stale.
        """
        entry = self._entry
        spec = self.plan.levels
        keyed = spec.key is not None
        key_expr = spec.key
        with self._db.mutate(self.name) as m:
            with self._db.adaptivity.pause():
                rows_iter, _ = self._levelled_rows(None, None)
                visible = list(rows_iter)
            if predicate is None:
                matched = visible
            else:
                matched = [
                    r for r in visible if predicate.matches(r, positions)
                ]
            if not matched:
                return 0
            new_rows: list[tuple] = []
            if assignments is not None:
                for row in matched:
                    values = list(row)
                    for field, value in assignments.items():
                        if callable(value):
                            value = value(dict(zip(names, row)))
                        values[positions[field]] = value
                    new_rows.append(tuple(values))
            # Distinct victims in first-match order: the merge key kills
            # every older version of that key; a row value kills every
            # equal copy (predicates are value-deterministic, so equal
            # copies always match together).
            victims: list = []
            victim_set: set = set()
            for row in matched:
                value = (
                    eval_scalar(key_expr, row, positions)
                    if keyed
                    else tuple(row)
                )
                if value not in victim_set:
                    victim_set.add(value)
                    victims.append(value)
            if keyed:
                def drop(row: tuple) -> bool:
                    return eval_scalar(key_expr, row, positions) in victim_set
            else:
                def drop(row: tuple) -> bool:
                    return row in victim_set
            with entry.mvcc.lock:
                if predicate is None and assignments is None:
                    # Delete-all: drop every run outright, no tombstones.
                    old_layouts = [
                        r.layout for r in entry.runs if r.layout is not None
                    ]
                    entry.runs = []
                    entry.level_tombstones = []
                    entry.pending = []
                    entry.pending_zone = None
                    if old_layouts:
                        entry.mvcc.retire(
                            self._db._layout_freer(*old_layouts)
                        )
                else:
                    survivors = [
                        tuple(r)
                        for r in entry.pending
                        if not drop(tuple(r))
                    ]
                    survivors.extend(new_rows)
                    entry.pending = survivors
                    if not survivors:
                        entry.pending_zone = None
                    else:
                        # Incremental maintenance: the existing zone
                        # already covers every survivor (survivors are a
                        # subset of the rows it summarized), so only the
                        # update-produced rows fold in — O(changes), not
                        # O(pending). The bounds stay a sound
                        # over-approximation until the next seal renders
                        # an exact synopsis for the sealed run.
                        if entry.pending_zone is None:
                            zone = zonemaps.ZoneSynopsis()
                            zone.update(names, survivors)
                            entry.pending_zone = zone
                        elif new_rows:
                            entry.pending_zone.update(names, new_rows)
                    if entry.runs:
                        seq = entry.next_run_seq
                        entry.next_run_seq += 1
                        entry.level_tombstones.extend(
                            (seq, v) for v in victims
                        )
                self._mark_indexes_stale()
            m.touch(self.name)
        return len(matched)

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:
        plan = self._entry.plan.describe() if self._entry.plan else "unplanned"
        return f"<Table {self.name} rows={self.row_count} [{plan}]>"


class _ScanStream:
    """Row iterator over a scan: chain-speed iteration plus ``close()``.

    ``for``-loops and genexprs call ``iter()`` and get the raw
    ``itertools.chain`` — per-row ``next()`` stays entirely in C. The
    wrapper itself only fields direct ``next(it)`` calls and ``close()``,
    which abandons the scan by closing the release generator (dropping
    the MVCC pin promptly instead of at GC).
    """

    __slots__ = ("_rows", "_release")

    def __init__(self, rows, release):
        self._rows = rows
        self._release = release

    def __iter__(self):
        return self._rows

    def __next__(self):
        return next(self._rows)

    def close(self) -> None:
        self._release.close()


def _release_when_done(source, mvcc, snap):
    """Wrap a scan iterator so its MVCC pin is dropped exactly once.

    The ``finally`` fires on exhaustion, ``close()``, and generator GC; the
    ``weakref.finalize`` is the backstop for a generator that is discarded
    without ever starting (its frame never runs, so ``finally`` cannot).
    ``EntryMVCC.release`` is idempotent, so double-firing is harmless.
    """

    def gen():
        try:
            yield from source
        finally:
            mvcc.release(snap)

    wrapped = gen()
    weakref.finalize(wrapped, mvcc.release, snap)
    return wrapped


class _LevelResolver:
    """Newest-first resolution state shared by every levelled read path.

    Segments are fed newest-first: the pending buffer, then runs by
    descending ``max_seq``. Keyed (last-writer-wins) tables suppress any
    row whose merge key was already emitted by a newer segment; multiset
    tables suppress rows equal to an applicable tombstone value.
    Tombstones activate monotonically as the walk reaches older runs — a
    tombstone with sequence ``s`` applies to runs with ``max_seq < s`` and
    never to the pending buffer, whose rows postdate every tombstone (a
    levelled delete physically filters pending rows instead).

    The compaction merge drives the same object, so what a merge
    physically drops is exactly what a scan would have suppressed.
    """

    __slots__ = ("keyed", "key_of", "seen", "dead", "_inactive")

    def __init__(self, spec, names: Sequence[str], tombstones):
        self.keyed = spec.key is not None
        if self.keyed:
            positions = {n: i for i, n in enumerate(names)}
            key_expr = spec.key
            self.key_of = lambda row: eval_scalar(key_expr, row, positions)
        else:
            self.key_of = None
        self.seen: set = set()  # merge keys emitted or tombstoned (keyed)
        self.dead: set = set()  # active tombstone row values (multiset)
        # Ascending by seq; popped from the tail as the walk gets older.
        self._inactive = sorted(tombstones, key=lambda t: t[0])

    def resolve_pending(self, rows: Sequence[tuple]) -> list[tuple]:
        """Pending-buffer rows, resolved. Keyed: last write wins, keeping
        each key's final occurrence in its insertion slot order."""
        rows = [tuple(r) for r in rows]
        if not self.keyed:
            return rows
        kept: list[tuple] = []
        for row in reversed(rows):
            key = self.key_of(row)
            if key in self.seen:
                continue
            self.seen.add(key)
            kept.append(row)
        kept.reverse()
        return kept

    def enter_run(self, run) -> bool:
        """Activate tombstones newer than ``run``; True when suppression
        can apply to its rows (keyed runs always resolve — the seen-set
        must grow even when nothing is suppressed yet)."""
        inactive = self._inactive
        while inactive and inactive[-1][0] > run.max_seq:
            _, value = inactive.pop()
            if self.keyed:
                self.seen.add(value)
            else:
                self.dead.add(value)
        return bool(self.seen) if self.keyed else bool(self.dead)

    def resolve(self, rows: Iterable[tuple]) -> list[tuple]:
        """Surviving rows of one run segment, in stored order."""
        if self.keyed:
            seen = self.seen
            key_of = self.key_of
            out: list[tuple] = []
            for row in rows:
                key = key_of(row)
                if key in seen:
                    continue
                seen.add(key)
                out.append(row)
            return out
        dead = self.dead
        if not dead:
            return list(rows)
        return [row for row in rows if tuple(row) not in dead]


def _scan_schema(plan: PhysicalPlan) -> Schema:
    """Schema of scan results: folded layouts un-nest to group+nest fields."""
    if plan.kind == LAYOUT_PARTITIONED:
        # Every partition projects to the template's scan shape, even when
        # individual regions have diverged to other designs.
        return _scan_schema(plan.partition_plans[0])
    if plan.kind == LAYOUT_LEVELLED:
        # Every run projects to the run template's scan shape, even when
        # individual runs carry diverged (re-chosen) designs.
        return _scan_schema(plan.level_plans[0])
    if plan.kind != LAYOUT_FOLDED:
        return plan.schema
    from repro.layout.renderer import _nest_types
    from repro.types.schema import Field

    nest_types = _nest_types(
        plan.schema.field("__folded__").dtype, len(plan.nest_fields)
    )
    fields = [plan.schema.field(f) for f in plan.group_fields]
    fields += [
        Field(name, dtype)
        for name, dtype in zip(plan.nest_fields, nest_types)
    ]
    return Schema(fields)


def _region_may_match(spec, region, lo: float, hi: float) -> bool:
    """Can ``region`` hold a record whose partition key lies in [lo, hi]?

    The partition-pruning core: range regions test bound overlap, value
    regions test key membership, hash regions match only when a point
    predicate (lo == hi) pins the bucket. Conservative in every
    non-numeric / non-point case.
    """
    if spec.method == "range":
        if region.lower is not None and region.lower > hi:
            return False
        if region.upper is not None and region.upper <= lo:
            return False
        return True
    if spec.method == "value":
        value = region.key
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return True
        return lo <= value <= hi
    if lo == hi:  # hash: a point predicate pins one bucket
        from repro.layout.partitioning import stable_hash

        return stable_hash(lo) % spec.buckets == region.key
    return True


def _fields_projector(avail: Sequence[str], target: Sequence[str]):
    """Batch projector re-ordering ``avail``-shaped rows to ``target``
    (``None`` when the orders already agree)."""
    if list(avail) == list(target):
        return None
    index = {f: i for i, f in enumerate(avail)}
    return _batch_projector([index[f] for f in target])


def _row_fields_projector(avail: Sequence[str], target: Sequence[str]):
    """Per-row counterpart of :func:`_fields_projector`."""
    if list(avail) == list(target):
        return None
    index = {f: i for i, f in enumerate(avail)}
    return _row_projector([index[f] for f in target])


def _row_projector(out_idx: Sequence[int]):
    """Per-row projection callable (precomputed ``operator.itemgetter``).

    ``itemgetter`` with one index returns a bare value, so the single-field
    case wraps it into a 1-tuple to keep scan results uniform.
    """
    if len(out_idx) == 1:
        i = out_idx[0]
        return lambda row: (row[i],)
    return operator.itemgetter(*out_idx)


def _batch_projector(out_idx: Sequence[int] | None):
    """Batch projection: list of rows -> list of projected rows, or None."""
    if out_idx is None:
        return None
    if len(out_idx) == 1:
        i = out_idx[0]
        return lambda rows: [(row[i],) for row in rows]
    getter = operator.itemgetter(*out_idx)
    return lambda rows: list(map(getter, rows))


def _chunk_rows(
    rows: Iterable[tuple],
    fields: tuple[str, ...],
    batch_size: int = DEFAULT_BATCH_ROWS,
) -> Iterator[ColumnBatch]:
    """Wrap a row iterator (e.g. a pruned page scan) into batches."""
    iterator = iter(rows)
    while True:
        chunk = list(islice(iterator, batch_size))
        if not chunk:
            return
        yield ColumnBatch.from_rows(fields, chunk)


def _undelta_batches(
    batches: Iterable[ColumnBatch],
    idx: Sequence[int],
    fields: tuple[str, ...],
) -> Iterator[ColumnBatch]:
    """Reconstruct delta-encoded fields batch-wise, carrying the running
    values across batch boundaries (batch counterpart of
    :func:`repro.algebra.transforms.undelta_records`)."""
    prev: tuple | None = None
    for batch in batches:
        out: list[tuple] = []
        append = out.append
        for row in batch.rows():
            if prev is None:
                record = tuple(row)
            else:
                values = list(row)
                for i in idx:
                    values[i] = prev[i] + values[i]
                record = tuple(values)
            append(record)
            prev = record
        yield ColumnBatch.from_rows(fields, out)


def _count_runs(page_ids: Sequence[int]) -> int:
    """Number of contiguous runs in a sorted page-id list (seek count)."""
    if not page_ids:
        return 0
    runs = 1
    for prev, current in zip(page_ids, page_ids[1:]):
        if current != prev + 1:
            runs += 1
    return runs
