"""Exception hierarchy for the RodentStore reproduction.

Every error raised by the library derives from :class:`RodentStoreError` so
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class RodentStoreError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(RodentStoreError):
    """A schema is malformed or a field reference cannot be resolved."""


class TypeCheckError(RodentStoreError):
    """A storage-algebra expression does not type-check against its schema."""


class ParseError(RodentStoreError):
    """A textual storage-algebra expression could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class AlgebraError(RodentStoreError):
    """An algebra expression is structurally invalid or cannot be evaluated."""


class StorageError(RodentStoreError):
    """Low-level storage failure (pages, disk manager, buffer pool)."""


class PageError(StorageError):
    """A page is full, corrupt, or a slot reference is invalid."""


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a request (e.g. all frames pinned)."""


class WALError(StorageError):
    """The write-ahead log is corrupt or used incorrectly."""


class CorruptionError(StorageError):
    """Checksummed data failed verification (bit rot, truncation, torn write).

    Base class for the three corruption sites — pages, WAL records, and the
    catalog file — so callers can handle "the bytes are wrong" uniformly
    while still distinguishing where they were wrong.
    """


class CorruptPageError(CorruptionError):
    """A data page failed its checksum/trailer verification.

    Carries the ``page_id`` and a human-readable ``reason`` so the repair
    ladder (WAL after-image replay) and degraded-read accounting can act on
    the specific page without re-parsing the message.
    """

    def __init__(self, page_id: int, reason: str):
        self.page_id = page_id
        self.reason = reason
        super().__init__(f"page {page_id} is corrupt: {reason}")


class CorruptWALError(CorruptionError, WALError):
    """A WAL record failed its CRC, or undecodable bytes sit mid-log.

    Distinct from the torn-tail case (a crash artifact, silently dropped):
    this means records *below* decodable data are damaged, so recovery
    cannot trust the log and must fail loudly. Inherits :class:`WALError`
    so existing WAL error handling still classifies it correctly.
    """


class CrashError(StorageError):
    """An injected fault hard-stopped the store (fault-injection harness).

    Raised by :class:`repro.storage.faults.FaultInjector` at the configured
    write boundary. The store object is unusable afterwards — tests abandon
    it and reopen from the on-disk files, which triggers crash recovery.
    """


class TransactionError(RodentStoreError):
    """Transaction misuse: operating on a finished transaction, etc."""


class DeadlockError(TransactionError):
    """A lock request would create a cycle in the wait-for graph."""


class SerializationError(RodentStoreError):
    """A value cannot be encoded/decoded with the table's record format."""


class CatalogError(RodentStoreError):
    """Catalog misuse: duplicate table names, unknown tables, etc."""


class CorruptCatalogError(CorruptionError, CatalogError):
    """The catalog file failed its checksum or cannot be parsed."""


class IndexError_(RodentStoreError):
    """An index (B+Tree / R-Tree) is corrupt or misused.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class OptimizerError(RodentStoreError):
    """The storage design optimizer received an unusable workload or design."""


class QueryError(RodentStoreError):
    """A front-end query is malformed (unknown field, bad predicate, ...)."""
