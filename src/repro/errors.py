"""Exception hierarchy for the RodentStore reproduction.

Every error raised by the library derives from :class:`RodentStoreError` so
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class RodentStoreError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(RodentStoreError):
    """A schema is malformed or a field reference cannot be resolved."""


class TypeCheckError(RodentStoreError):
    """A storage-algebra expression does not type-check against its schema."""


class ParseError(RodentStoreError):
    """A textual storage-algebra expression could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class AlgebraError(RodentStoreError):
    """An algebra expression is structurally invalid or cannot be evaluated."""


class StorageError(RodentStoreError):
    """Low-level storage failure (pages, disk manager, buffer pool)."""


class PageError(StorageError):
    """A page is full, corrupt, or a slot reference is invalid."""


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a request (e.g. all frames pinned)."""


class WALError(StorageError):
    """The write-ahead log is corrupt or used incorrectly."""


class CrashError(StorageError):
    """An injected fault hard-stopped the store (fault-injection harness).

    Raised by :class:`repro.storage.faults.FaultInjector` at the configured
    write boundary. The store object is unusable afterwards — tests abandon
    it and reopen from the on-disk files, which triggers crash recovery.
    """


class TransactionError(RodentStoreError):
    """Transaction misuse: operating on a finished transaction, etc."""


class DeadlockError(TransactionError):
    """A lock request would create a cycle in the wait-for graph."""


class SerializationError(RodentStoreError):
    """A value cannot be encoded/decoded with the table's record format."""


class CatalogError(RodentStoreError):
    """Catalog misuse: duplicate table names, unknown tables, etc."""


class IndexError_(RodentStoreError):
    """An index (B+Tree / R-Tree) is corrupt or misused.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class OptimizerError(RodentStoreError):
    """The storage design optimizer received an unusable workload or design."""


class QueryError(RodentStoreError):
    """A front-end query is malformed (unknown field, bad predicate, ...)."""
