"""Paper experiments, reusable by benchmarks, examples, and tests."""

from repro.experiments.figure2 import (
    Figure2Result,
    LayoutResult,
    N2_EXPR,
    n3_expr,
    n4_expr,
    run_figure2,
)

__all__ = [
    "Figure2Result",
    "LayoutResult",
    "N2_EXPR",
    "n3_expr",
    "n4_expr",
    "run_figure2",
]
