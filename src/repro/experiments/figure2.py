"""The paper's case study (Section 6, Figure 2), end to end.

Builds the five physical designs over synthetic CarTel-style traces and
measures *pages read per query* — the exact metric of Figure 2 — over random
square queries covering 1% of the area:

======  =====================================================  ==============
layout  algebra / method                                       paper pages
======  =====================================================  ==============
N1      ``Traces`` (row-major, full scan)                      206,064
N2      ``project[lat,lon](groupby[id](orderby[t](Traces)))``  82,430
N3      ``grid[lat,lon](N2)`` with the cell directory          1,792
N4      ``compress[varint](delta(zorder(N3)))``                771
rtree   secondary R-Tree over trajectory MBRs                  15,780
======  =====================================================  ==============

Scale is configurable; at the default benchmark scale (200 K observations,
64 KB pages vs the paper's 10 M observations, 1000 KB pages) the absolute
counts are smaller but the *shape* — N1 ≫ N2 ≫ rtree > N3 > N4 — is what the
reproduction asserts (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.cost import CostModel
from repro.engine.database import RodentStore
from repro.index.rtree import MBR, RTree
from repro.query.expressions import Rect
from repro.workloads.cartel import (
    BOSTON,
    TRACE_SCHEMA,
    Region,
    generate_traces,
    grid_strides_for,
    random_region_queries,
)

N2_EXPR = "project[lat, lon](groupby[id](orderby[t](Traces)))"


def n3_expr(lat_stride: float, lon_stride: float) -> str:
    return (
        f"grid[lat, lon],[{lat_stride:g}, {lon_stride:g}]"
        f"(project[lat, lon](groupby[id](orderby[t](Traces))))"
    )


def n4_expr(lat_stride: float, lon_stride: float) -> str:
    return (
        "compress[varint; lat, lon](delta[lat, lon](zorder("
        f"grid[lat, lon],[{lat_stride:g}, {lon_stride:g}]"
        "(project[lat, lon](groupby[id](orderby[t](Traces)))))))"
    )


@dataclass
class LayoutResult:
    """Measured behaviour of one physical design."""

    name: str
    description: str
    storage_pages: int
    pages_per_query: float
    seeks_per_query: float
    est_ms_per_query: float
    records_per_query: float


@dataclass
class Figure2Result:
    """All five designs plus the run configuration."""

    n_observations: int
    n_queries: int
    page_size: int
    layouts: dict[str, LayoutResult] = field(default_factory=dict)

    def rows(self) -> list[tuple[str, float]]:
        """(name, pages/query) in the paper's bar order."""
        order = ["N1", "N2", "N3", "N4", "rtree"]
        return [
            (name, self.layouts[name].pages_per_query)
            for name in order
            if name in self.layouts
        ]

    def format_table(self) -> str:
        header = (
            f"{'layout':<8}{'description':<34}{'pages/query':>12}"
            f"{'seeks':>8}{'est ms':>9}{'db pages':>10}"
        )
        lines = [header, "-" * len(header)]
        for name in ["N1", "N2", "N3", "N4", "rtree"]:
            if name not in self.layouts:
                continue
            r = self.layouts[name]
            lines.append(
                f"{r.name:<8}{r.description:<34}{r.pages_per_query:>12.1f}"
                f"{r.seeks_per_query:>8.1f}{r.est_ms_per_query:>9.2f}"
                f"{r.storage_pages:>10}"
            )
        return "\n".join(lines)


def run_figure2(
    n_observations: int = 200_000,
    n_queries: int = 200,
    page_size: int = 65_536,
    n_vehicles: int = 25,
    cells_per_side: int = 32,
    region: Region = BOSTON,
    seed: int = 42,
    coverage: float = 0.01,
    layouts: tuple[str, ...] = ("N1", "N2", "N3", "N4", "rtree"),
    verify: bool = False,
) -> Figure2Result:
    """Run the case study and return per-layout measurements.

    Args:
        verify: additionally check that every layout returns the same
            (lat, lon) result multiset on a few queries (slower).
    """
    records = generate_traces(
        n_observations, n_vehicles=n_vehicles, region=region, seed=seed
    )
    queries = random_region_queries(
        n_queries, coverage=coverage, region=region, seed=seed + 1
    )
    lat_stride, lon_stride = grid_strides_for(region, cells_per_side)
    model = CostModel(page_size=page_size)
    result = Figure2Result(
        n_observations=n_observations,
        n_queries=n_queries,
        page_size=page_size,
    )

    expressions = {
        "N1": ("Traces", "raw + scan"),
        "N2": (N2_EXPR, "raw + drop column"),
        "N3": (n3_expr(lat_stride, lon_stride), "grid"),
        "N4": (n4_expr(lat_stride, lon_stride), "zcurve + delta"),
    }
    reference: list[list[tuple]] | None = None
    for name in layouts:
        if name == "rtree":
            result.layouts[name] = _run_rtree(
                records, queries, page_size, model
            )
            continue
        expr, description = expressions[name]
        measured, samples = _run_layout(
            name, expr, description, records, queries, page_size, model,
            collect_samples=verify,
        )
        result.layouts[name] = measured
        if verify and samples is not None:
            if reference is None:
                reference = samples
            else:
                for got, want in zip(samples, reference):
                    assert sorted(got) == sorted(want), (
                        f"layout {name} disagrees with N1 on a query"
                    )
    return result


def _run_layout(
    name: str,
    expr: str,
    description: str,
    records: list[tuple],
    queries: list[Rect],
    page_size: int,
    model: CostModel,
    collect_samples: bool = False,
) -> tuple[LayoutResult, list[list[tuple]] | None]:
    store = RodentStore(page_size=page_size, pool_capacity=64, cost_model=model)
    # Figure 2 reproduces the paper's designs as-is: zone-map pruning (a
    # later addition) would collapse the N1/N2 baselines and change the
    # figure's shape, so it is pinned off for this experiment.
    store.zone_pruning = False
    store.create_table("Traces", TRACE_SCHEMA, layout=expr)
    table = store.load("Traces", records)
    pages = seeks = found = 0.0
    samples: list[list[tuple]] = [] if collect_samples else None
    for i, query in enumerate(queries):
        rows, io = store.run_cold(
            lambda q=query: list(
                table.scan(fieldlist=["lat", "lon"], predicate=q)
            )
        )
        pages += io.page_reads
        seeks += io.read_seeks
        found += len(rows)
        if collect_samples and i < 3:
            samples.append(rows)
    n = len(queries)
    return (
        LayoutResult(
            name=name,
            description=description,
            storage_pages=table.layout.total_pages(),
            pages_per_query=pages / n,
            seeks_per_query=seeks / n,
            est_ms_per_query=model.cost_ms(pages / n, seeks / n),
            records_per_query=found / n,
        ),
        samples,
    )


def _run_rtree(
    records: list[tuple],
    queries: list[Rect],
    page_size: int,
    model: CostModel,
) -> LayoutResult:
    """The paper's baseline: a secondary R-Tree over the trajectories.

    Data lives in a row layout clustered by trajectory; the R-Tree maps each
    trajectory's bounding box to the page range holding its observations.
    Every overlapping trajectory costs (at least) one random I/O and drags in
    all of its observations — the overlap-driven behaviour the paper reports.
    """
    store = RodentStore(page_size=page_size, pool_capacity=64, cost_model=model)
    store.create_table(
        "Traces", TRACE_SCHEMA, layout="orderby[id, t](Traces)"
    )
    table = store.load("Traces", records)
    layout = table.layout
    positions = {n: i for i, n in enumerate(TRACE_SCHEMA.names())}

    # Page range per trajectory, from the clustered row layout.
    trip_pages: dict[int, tuple[int, int]] = {}
    trip_boxes: dict[int, list[float]] = {}
    sorted_records = sorted(records, key=lambda r: (r[3], r[0]))
    row = 0
    page_starts: list[int] = []
    acc = 0
    for count in layout.page_row_counts:
        page_starts.append(acc)
        acc += count

    def page_of(row_index: int) -> int:
        lo, hi = 0, len(page_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if page_starts[mid] <= row_index:
                lo = mid
            else:
                hi = mid - 1
        return lo

    for record in sorted_records:
        trip = record[3]
        page_index = page_of(row)
        if trip not in trip_pages:
            trip_pages[trip] = (page_index, page_index)
            trip_boxes[trip] = [
                record[1], record[1], record[2], record[2]
            ]
        else:
            first, _ = trip_pages[trip]
            trip_pages[trip] = (first, page_index)
            box = trip_boxes[trip]
            box[0] = min(box[0], record[1])
            box[1] = max(box[1], record[1])
            box[2] = min(box[2], record[2])
            box[3] = max(box[3], record[2])
        row += 1

    rtree = RTree(store.pool)
    rtree.bulk_load(
        [
            (MBR(box[0], box[2], box[1], box[3]), trip)
            for trip, box in trip_boxes.items()
        ]
    )

    pages = seeks = found = 0.0
    serializer_schema = layout.plan.schema
    from repro.storage.page import SlottedPage
    from repro.storage.serializer import RecordSerializer

    serializer = RecordSerializer(serializer_schema)

    def run_query(query: Rect) -> int:
        bounds = query.ranges()
        qlat, qlon = bounds["lat"], bounds["lon"]
        query_box = MBR(qlat[0], qlon[0], qlat[1], qlon[1])
        hits = rtree.search(query_box)
        page_ids: set[int] = set()
        for _, trip in hits:
            first, last = trip_pages[trip]
            for page_index in range(first, last + 1):
                page_ids.add(layout.extent.page_ids[page_index])
        count = 0
        for page_id in sorted(page_ids):
            frame = store.pool.fetch(page_id)
            try:
                page = SlottedPage(page_size, frame.data)
                for _, blob in page.records():
                    record = serializer.decode(blob)
                    if query.matches(record, positions):
                        count += 1
            finally:
                store.pool.unpin(page_id)
        return count

    for query in queries:
        count, io = store.run_cold(lambda q=query: run_query(q))
        pages += io.page_reads
        seeks += io.read_seeks
        found += count

    n = len(queries)
    index_pages = store.disk.num_pages - layout.total_pages()
    return LayoutResult(
        name="rtree",
        description="secondary R-Tree over trajectories",
        storage_pages=layout.total_pages() + index_pages,
        pages_per_query=pages / n,
        seeks_per_query=seeks / n,
        est_ms_per_query=model.cost_ms(pages / n, seeks / n),
        records_per_query=found / n,
    )
