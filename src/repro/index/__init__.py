"""Indexes: page-backed B+Tree and 2-D R-Tree."""

from repro.index.btree import BPlusTree
from repro.index.rtree import MBR, RTree

__all__ = ["BPlusTree", "MBR", "RTree"]
