"""Page-backed B+Tree.

The paper: "RodentStore will include both B+Trees as well as a variety of
geo-spatial indices, but we don't anticipate innovating in this regard".
Accordingly this is a textbook B+Tree — one node per page, write-through,
reads through the buffer pool so index probes show up in the pages/query
metric like every other access path.

Keys are scalars (int/float/str); values are signed 64-bit integers (row
positions or encoded page pointers). Duplicate keys are allowed.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, Sequence

from repro.errors import IndexError_
from repro.storage.buffer import BufferPool
from repro.storage.page import BYTES_HEADER_SIZE, BytePage
from repro.storage.serializer import VectorSerializer
from repro.types.types import DataType, INT

_HEADER = struct.Struct("<BHq")  # is_leaf, n_entries, next_leaf(page id)
_I64 = struct.Struct("<q")
_U32 = struct.Struct("<I")


class _Node:
    """In-memory image of one B+Tree node."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, page_id: int, is_leaf: bool):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.values: list[int] = []  # leaf payloads
        self.children: list[int] = []  # internal child page ids
        self.next_leaf: int = -1


class BPlusTree:
    """A B+Tree over one scalar key type.

    Args:
        pool: buffer pool for node I/O.
        key_type: key data type (defaults to int).
        order: max entries per node; derived from the page size when omitted.
    """

    def __init__(
        self,
        pool: BufferPool,
        key_type: DataType = INT,
        order: int | None = None,
    ):
        self.pool = pool
        self.key_type = key_type
        self._key_ser = VectorSerializer(key_type)
        capacity = pool.disk.page_size - BYTES_HEADER_SIZE
        if order is None:
            key_width = key_type.fixed_size or key_type.estimated_size()
            order = max(4, (capacity - 32) // (key_width + 12))
        if order < 4:
            raise IndexError_("B+Tree order must be at least 4")
        self.order = order
        root = self._new_node(is_leaf=True)
        self._write_node(root)
        self.root_page = root.page_id
        self._height = 1
        self._size = 0

    # -- node I/O -----------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> _Node:
        frame = self.pool.new_page()
        self.pool.unpin(frame.page_id, dirty=True)
        return _Node(frame.page_id, is_leaf)

    def _write_node(self, node: _Node) -> None:
        parts = [
            _HEADER.pack(1 if node.is_leaf else 0, len(node.keys), node.next_leaf)
        ]
        key_bytes = self._key_ser.encode(node.keys)
        parts.append(_U32.pack(len(key_bytes)))
        parts.append(key_bytes)
        if node.is_leaf:
            parts.extend(_I64.pack(v) for v in node.values)
        else:
            parts.extend(_I64.pack(c) for c in node.children)
        payload = b"".join(parts)
        frame = self.pool.fetch(node.page_id)
        try:
            page = BytePage(self.pool.disk.page_size)
            page.write(payload)
            frame.data[:] = page.buffer
        finally:
            self.pool.unpin(node.page_id, dirty=True)
        self.pool.flush(node.page_id)

    def _read_node(self, page_id: int) -> _Node:
        frame = self.pool.fetch(page_id)
        try:
            page = BytePage(self.pool.disk.page_size, frame.data)
            payload = page.read()
        finally:
            self.pool.unpin(page_id)
        is_leaf, n, next_leaf = _HEADER.unpack_from(payload, 0)
        offset = _HEADER.size
        (key_len,) = _U32.unpack_from(payload, offset)
        offset += 4
        keys = self._key_ser.decode(payload[offset : offset + key_len])
        offset += key_len
        node = _Node(page_id, bool(is_leaf))
        node.keys = keys
        node.next_leaf = next_leaf
        count = n if is_leaf else n + 1
        slots = [
            _I64.unpack_from(payload, offset + 8 * i)[0] for i in range(count)
        ]
        if is_leaf:
            node.values = slots
        else:
            node.children = slots
        return node

    # -- basic properties ---------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    # -- search ------------------------------------------------------------

    def _descend(self, key: Any) -> list[_Node]:
        """Path from root to the rightmost leaf that may hold ``key``.

        Used by inserts (new duplicates append after existing ones).
        """
        path = [self._read_node(self.root_page)]
        while not path[-1].is_leaf:
            node = path[-1]
            index = _upper_bound(node.keys, key)
            path.append(self._read_node(node.children[index]))
        return path

    def _descend_first(self, key: Any) -> _Node:
        """The leftmost leaf that may hold ``key``.

        Used by reads: duplicate keys can span several leaves, and the scan
        must start at the first occurrence.
        """
        node = self._read_node(self.root_page)
        while not node.is_leaf:
            index = _lower_bound(node.keys, key)
            node = self._read_node(node.children[index])
        return node

    def search(self, key: Any) -> list[int]:
        """All values stored under ``key``."""
        leaf = self._descend_first(key)
        out: list[int] = []
        i = _lower_bound(leaf.keys, key)
        while True:
            while i < len(leaf.keys):
                if leaf.keys[i] != key:
                    return out
                out.append(leaf.values[i])
                i += 1
            if leaf.next_leaf < 0:
                return out
            leaf = self._read_node(leaf.next_leaf)
            i = 0

    def range(self, lo: Any, hi: Any) -> Iterator[tuple[Any, int]]:
        """(key, value) pairs with lo <= key <= hi, in key order."""
        leaf = self._descend_first(lo)
        i = _lower_bound(leaf.keys, lo)
        while True:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if key > hi:
                    return
                yield key, leaf.values[i]
                i += 1
            if leaf.next_leaf < 0:
                return
            leaf = self._read_node(leaf.next_leaf)
            i = 0

    def items(self) -> Iterator[tuple[Any, int]]:
        """All (key, value) pairs in key order."""
        node = self._read_node(self.root_page)
        while not node.is_leaf:
            node = self._read_node(node.children[0])
        while True:
            yield from zip(node.keys, node.values)
            if node.next_leaf < 0:
                return
            node = self._read_node(node.next_leaf)

    # -- insertion -----------------------------------------------------------

    def insert(self, key: Any, value: int) -> None:
        path = self._descend(key)
        leaf = path[-1]
        index = _upper_bound(leaf.keys, key)
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        self._size += 1
        if len(leaf.keys) <= self.order:
            self._write_node(leaf)
            return
        self._split(path)

    def _split(self, path: list[_Node]) -> None:
        node = path.pop()
        mid = len(node.keys) // 2
        sibling = self._new_node(node.is_leaf)
        if node.is_leaf:
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling.page_id
            separator = sibling.keys[0]
        else:
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        self._write_node(node)
        self._write_node(sibling)

        if not path:
            root = self._new_node(is_leaf=False)
            root.keys = [separator]
            root.children = [node.page_id, sibling.page_id]
            self._write_node(root)
            self.root_page = root.page_id
            self._height += 1
            return
        parent = path[-1]
        index = parent.children.index(node.page_id)
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, sibling.page_id)
        if len(parent.keys) <= self.order:
            self._write_node(parent)
            return
        self._split(path)

    # -- deletion (no rebalancing; underflowed nodes are tolerated) -----------

    def delete(self, key: Any, value: int | None = None) -> int:
        """Remove entries with ``key`` (optionally only a specific value).

        Returns the number of removed entries. Nodes are allowed to
        underflow — the tree stays correct, merely less dense, which matches
        the bulk-load-then-read usage of the benchmarks.
        """
        removed = 0
        leaf = self._descend_first(key)
        while True:
            i = _lower_bound(leaf.keys, key)
            changed = False
            while i < len(leaf.keys) and leaf.keys[i] == key:
                if value is None or leaf.values[i] == value:
                    del leaf.keys[i]
                    del leaf.values[i]
                    removed += 1
                    changed = True
                else:
                    i += 1
            if changed:
                self._write_node(leaf)
            if (
                leaf.keys
                and leaf.keys[-1] >= key
                or leaf.next_leaf < 0
            ):
                break
            next_leaf = self._read_node(leaf.next_leaf)
            if not next_leaf.keys or next_leaf.keys[0] > key:
                break
            leaf = next_leaf
        self._size -= removed
        return removed

    # -- bulk loading ----------------------------------------------------------

    def bulk_load(self, pairs: Sequence[tuple[Any, int]]) -> None:
        """Replace the tree contents with sorted ``pairs`` (bottom-up build)."""
        ordered = sorted(pairs, key=lambda kv: kv[0])
        fill = max(2, (self.order * 2) // 3)
        leaves: list[_Node] = []
        for start in range(0, max(len(ordered), 1), fill):
            chunk = ordered[start : start + fill]
            leaf = self._new_node(is_leaf=True)
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            leaves.append(leaf)
        for a, b in zip(leaves, leaves[1:]):
            a.next_leaf = b.page_id
        for leaf in leaves:
            self._write_node(leaf)

        level = leaves
        height = 1
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), fill):
                group = level[start : start + fill]
                parent = self._new_node(is_leaf=False)
                parent.children = [n.page_id for n in group]
                parent.keys = [_subtree_min(self, n) for n in group[1:]]
                parents.append(parent)
            for parent in parents:
                self._write_node(parent)
            level = parents
            height += 1
        self.root_page = level[0].page_id
        self._height = height
        self._size = len(ordered)


def _subtree_min(tree: BPlusTree, node: _Node) -> Any:
    while not node.is_leaf:
        node = tree._read_node(node.children[0])
    if not node.keys:
        raise IndexError_("empty node during bulk load")
    return node.keys[0]


def _lower_bound(keys: list, key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _upper_bound(keys: list, key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo
