"""Page-backed 2-D R-Tree.

The Figure 2 baseline: "a relatively common approach to index spatial objects
using a secondary R-Tree over the trajectories". The paper found it
*suboptimal* on dense trace data because trajectory bounding boxes overlap
heavily — every overlapping box costs a random I/O and drags in many
observations. This implementation reproduces exactly that behaviour: nodes
live one-per-page, reads go through the buffer pool, and the benchmark builds
it over trajectory MBRs whose payloads point at row pages.

Construction supports Sort-Tile-Recursive (STR) bulk loading and quadratic-
split incremental insertion (Guttman 1984).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import IndexError_
from repro.storage.buffer import BufferPool
from repro.storage.page import BYTES_HEADER_SIZE, BytePage

_HEADER = struct.Struct("<BH")  # is_leaf, n_entries
_ENTRY = struct.Struct("<ddddq")  # xmin, ymin, xmax, ymax, pointer


@dataclass(frozen=True)
class MBR:
    """Minimum bounding rectangle (closed on all sides)."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self):
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise IndexError_(f"invalid MBR {self}")

    @staticmethod
    def of_points(points: Sequence[tuple[float, float]]) -> "MBR":
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return MBR(min(xs), min(ys), max(xs), max(ys))

    def area(self) -> float:
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def union(self, other: "MBR") -> "MBR":
        return MBR(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersects(self, other: "MBR") -> bool:
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def enlargement(self, other: "MBR") -> float:
        return self.union(other).area() - self.area()


class _Node:
    __slots__ = ("page_id", "is_leaf", "entries")

    def __init__(self, page_id: int, is_leaf: bool):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.entries: list[tuple[MBR, int]] = []  # (mbr, payload-or-child)

    def mbr(self) -> MBR:
        box = self.entries[0][0]
        for other, _ in self.entries[1:]:
            box = box.union(other)
        return box


class RTree:
    """A 2-D rectangle index mapping MBRs to int64 payloads.

    Args:
        pool: buffer pool for node I/O.
        max_entries: node fanout; derived from page size when omitted.
    """

    def __init__(self, pool: BufferPool, max_entries: int | None = None):
        self.pool = pool
        capacity = pool.disk.page_size - BYTES_HEADER_SIZE
        if max_entries is None:
            max_entries = max(4, (capacity - 8) // _ENTRY.size)
        if max_entries < 4:
            raise IndexError_("R-Tree fanout must be at least 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        root = self._new_node(is_leaf=True)
        self._write_node(root)
        self.root_page = root.page_id
        self._size = 0
        self._height = 1

    # -- node I/O -----------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> _Node:
        frame = self.pool.new_page()
        self.pool.unpin(frame.page_id, dirty=True)
        return _Node(frame.page_id, is_leaf)

    def _write_node(self, node: _Node) -> None:
        if len(node.entries) > self.max_entries + 1:
            raise IndexError_("node overflow escaped splitting")
        parts = [_HEADER.pack(1 if node.is_leaf else 0, len(node.entries))]
        for box, pointer in node.entries:
            parts.append(
                _ENTRY.pack(box.xmin, box.ymin, box.xmax, box.ymax, pointer)
            )
        payload = b"".join(parts)
        frame = self.pool.fetch(node.page_id)
        try:
            page = BytePage(self.pool.disk.page_size)
            page.write(payload)
            frame.data[:] = page.buffer
        finally:
            self.pool.unpin(node.page_id, dirty=True)
        self.pool.flush(node.page_id)

    def _read_node(self, page_id: int) -> _Node:
        frame = self.pool.fetch(page_id)
        try:
            page = BytePage(self.pool.disk.page_size, frame.data)
            payload = page.read()
        finally:
            self.pool.unpin(page_id)
        is_leaf, n = _HEADER.unpack_from(payload, 0)
        node = _Node(page_id, bool(is_leaf))
        offset = _HEADER.size
        for _ in range(n):
            xmin, ymin, xmax, ymax, pointer = _ENTRY.unpack_from(payload, offset)
            offset += _ENTRY.size
            node.entries.append((MBR(xmin, ymin, xmax, ymax), pointer))
        return node

    # -- properties ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    # -- search ------------------------------------------------------------

    def search(self, query: MBR) -> list[tuple[MBR, int]]:
        """All (mbr, payload) leaf entries intersecting ``query``."""
        return list(self.iter_search(query))

    def iter_search(self, query: MBR) -> Iterator[tuple[MBR, int]]:
        stack = [self.root_page]
        while stack:
            node = self._read_node(stack.pop())
            for box, pointer in node.entries:
                if not box.intersects(query):
                    continue
                if node.is_leaf:
                    yield box, pointer
                else:
                    stack.append(pointer)

    def node_pages_touched(self, query: MBR) -> int:
        """Index pages a query reads (for cost accounting without the pool)."""
        touched = 0
        stack = [self.root_page]
        while stack:
            node = self._read_node(stack.pop())
            touched += 1
            if node.is_leaf:
                continue
            for box, pointer in node.entries:
                if box.intersects(query):
                    stack.append(pointer)
        return touched

    # -- insertion (Guttman, quadratic split) --------------------------------

    def insert(self, box: MBR, payload: int) -> None:
        path = self._choose_path(box)
        leaf = path[-1]
        leaf.entries.append((box, payload))
        self._size += 1
        self._propagate(path)

    def _choose_path(self, box: MBR) -> list[_Node]:
        path = [self._read_node(self.root_page)]
        while not path[-1].is_leaf:
            node = path[-1]
            best = min(
                node.entries,
                key=lambda e: (e[0].enlargement(box), e[0].area()),
            )
            path.append(self._read_node(best[1]))
        return path

    def _propagate(self, path: list[_Node]) -> None:
        while path:
            node = path.pop()
            if len(node.entries) <= self.max_entries:
                self._write_node(node)
                if path:
                    parent = path[-1]
                    for i, (pbox, pointer) in enumerate(parent.entries):
                        if pointer == node.page_id:
                            parent.entries[i] = (node.mbr(), pointer)
                            break
                continue
            left_entries, right_entries = _quadratic_split(
                node.entries, self.min_entries
            )
            node.entries = left_entries
            sibling = self._new_node(node.is_leaf)
            sibling.entries = right_entries
            self._write_node(node)
            self._write_node(sibling)
            if path:
                parent = path[-1]
                for i, (pbox, pointer) in enumerate(parent.entries):
                    if pointer == node.page_id:
                        parent.entries[i] = (node.mbr(), pointer)
                        break
                parent.entries.append((sibling.mbr(), sibling.page_id))
            else:
                root = self._new_node(is_leaf=False)
                root.entries = [
                    (node.mbr(), node.page_id),
                    (sibling.mbr(), sibling.page_id),
                ]
                self._write_node(root)
                self.root_page = root.page_id
                self._height += 1
                return

    # -- STR bulk loading --------------------------------------------------------

    def bulk_load(self, entries: Sequence[tuple[MBR, int]]) -> None:
        """Sort-Tile-Recursive packing (Leutenegger et al. 1997)."""
        if not entries:
            return
        fill = max(2, (self.max_entries * 2) // 3)
        leaves: list[_Node] = []
        for group in _str_tiles(list(entries), fill):
            leaf = self._new_node(is_leaf=True)
            leaf.entries = group
            leaves.append(leaf)
        for leaf in leaves:
            self._write_node(leaf)

        level = leaves
        height = 1
        while len(level) > 1:
            up_entries = [(n.mbr(), n.page_id) for n in level]
            parents: list[_Node] = []
            for group in _str_tiles(up_entries, fill):
                parent = self._new_node(is_leaf=False)
                parent.entries = group
                parents.append(parent)
            for parent in parents:
                self._write_node(parent)
            level = parents
            height += 1
        self.root_page = level[0].page_id
        self._height = height
        self._size = len(entries)


def _str_tiles(
    entries: list[tuple[MBR, int]], fill: int
) -> list[list[tuple[MBR, int]]]:
    """Group entries into node-sized tiles by x-slabs then y within slab."""
    n = len(entries)
    n_nodes = math.ceil(n / fill)
    n_slabs = max(1, math.ceil(math.sqrt(n_nodes)))
    per_slab = math.ceil(n / n_slabs)
    by_x = sorted(entries, key=lambda e: (e[0].xmin + e[0].xmax) / 2)
    tiles: list[list[tuple[MBR, int]]] = []
    for s in range(0, n, per_slab):
        slab = sorted(
            by_x[s : s + per_slab], key=lambda e: (e[0].ymin + e[0].ymax) / 2
        )
        for t in range(0, len(slab), fill):
            tiles.append(slab[t : t + fill])
    return tiles


def _quadratic_split(
    entries: list[tuple[MBR, int]], min_entries: int
) -> tuple[list[tuple[MBR, int]], list[tuple[MBR, int]]]:
    """Guttman's quadratic split."""
    # Pick the pair wasting the most area as seeds.
    worst = None
    seeds = (0, 1)
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            waste = (
                entries[i][0].union(entries[j][0]).area()
                - entries[i][0].area()
                - entries[j][0].area()
            )
            if worst is None or waste > worst:
                worst = waste
                seeds = (i, j)
    left = [entries[seeds[0]]]
    right = [entries[seeds[1]]]
    left_box = entries[seeds[0]][0]
    right_box = entries[seeds[1]][0]
    rest = [e for k, e in enumerate(entries) if k not in seeds]
    for index, entry in enumerate(rest):
        remaining = len(rest) - index
        if len(left) + remaining <= min_entries:
            left.append(entry)
            left_box = left_box.union(entry[0])
            continue
        if len(right) + remaining <= min_entries:
            right.append(entry)
            right_box = right_box.union(entry[0])
            continue
        grow_left = left_box.enlargement(entry[0])
        grow_right = right_box.enlargement(entry[0])
        if grow_left < grow_right or (
            grow_left == grow_right and left_box.area() <= right_box.area()
        ):
            left.append(entry)
            left_box = left_box.union(entry[0])
        else:
            right.append(entry)
            right_box = right_box.union(entry[0])
    return left, right
