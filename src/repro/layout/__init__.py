"""Layout engine: the physical-plan renderer and stored-layout structures."""

from repro.layout.renderer import (
    CellEntry,
    ColumnGroupStore,
    Extent,
    LayoutRenderer,
    StoredLayout,
)

__all__ = [
    "CellEntry",
    "ColumnGroupStore",
    "Extent",
    "LayoutRenderer",
    "StoredLayout",
]
