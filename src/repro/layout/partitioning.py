"""Partition routing: which horizontal partition owns a record.

The :class:`~repro.algebra.physical.PartitionSpec` of a partitioned plan
defines the split (value / range / hash over a key expression); this module
turns it into an executable router shared by every write path — bulk load,
inserts, and single-partition re-renders — so a record can never land in one
partition at load time and a different one at insert time.

Partition identities are plain values (the *locator*):

* ``value``  — the key value itself; partitions appear in first-seen order;
* ``range``  — the bucket index into the split points (bucket ``i`` covers
  ``[bounds[i-1], bounds[i])`` with open extremes); regions are kept sorted
  by bucket so a range-partitioned table scans in ascending key order;
* ``hash``   — ``stable_hash(key) % buckets``.

Hashing must be deterministic across processes (the partition map persists
in the catalog JSON and Python's ``hash()`` for strings is salted per
process), so :func:`stable_hash` uses CRC32 for strings and identity for
integers.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterable, Sequence
from zlib import crc32

from repro.algebra import ast
from repro.algebra.physical import PartitionSpec
from repro.algebra.transforms import eval_scalar
from repro.errors import StorageError


def stable_hash(value: Any) -> int:
    """Deterministic, process-independent hash for partition routing."""
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value) + 1
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return crc32(repr(value).encode("utf-8"))
    if isinstance(value, str):
        return crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return crc32(value)
    return crc32(repr(value).encode("utf-8"))


class Locator:
    """Identity + bounds of the partition a key routes to."""

    __slots__ = ("key", "lower", "upper")

    def __init__(self, key: Any, lower: float | None, upper: float | None):
        self.key = key  # value | range bucket index | hash bucket
        self.lower = lower  # inclusive range lower bound (None = open)
        self.upper = upper  # exclusive range upper bound (None = open)

    def __repr__(self) -> str:
        return f"Locator({self.key!r}, [{self.lower}, {self.upper}))"


class PartitionRouter:
    """Evaluate a :class:`PartitionSpec` over stored-shape records."""

    def __init__(self, spec: PartitionSpec, fields: Sequence[str]):
        self.spec = spec
        self._positions = {name: i for i, name in enumerate(fields)}
        # Fast path: a plain field reference skips eval_scalar entirely.
        if isinstance(spec.key, ast.FieldRef):
            self._key_index: int | None = self._positions.get(spec.key.name)
            if self._key_index is None:
                raise StorageError(
                    f"partition key field {spec.key.name!r} is not stored "
                    f"(available: {sorted(self._positions)})"
                )
        else:
            self._key_index = None

    def key_of(self, record: Sequence[Any]) -> Any:
        if self._key_index is not None:
            return record[self._key_index]
        return eval_scalar(self.spec.key, record, self._positions)

    def locator_of_key(self, key: Any) -> Locator:
        spec = self.spec
        if spec.method == "range":
            if isinstance(key, bool) or not isinstance(key, (int, float)):
                raise StorageError(
                    f"range partition key must be numeric, got {key!r}"
                )
            bucket = bisect_right(spec.bounds, key)
            lower = spec.bounds[bucket - 1] if bucket > 0 else None
            upper = (
                spec.bounds[bucket] if bucket < len(spec.bounds) else None
            )
            return Locator(bucket, lower, upper)
        if spec.method == "hash":
            return Locator(stable_hash(key) % spec.buckets, None, None)
        return Locator(key, None, None)

    def locate(self, record: Sequence[Any]) -> Locator:
        return self.locator_of_key(self.key_of(record))

    def all_locators(self) -> list[Locator] | None:
        """Every partition's locator when the split is fixed a priori
        (range/hash); ``None`` for value partitioning (keys are only known
        once data arrives)."""
        spec = self.spec
        if spec.method == "range":
            out = []
            for bucket in range(len(spec.bounds) + 1):
                lower = spec.bounds[bucket - 1] if bucket > 0 else None
                upper = (
                    spec.bounds[bucket]
                    if bucket < len(spec.bounds)
                    else None
                )
                out.append(Locator(bucket, lower, upper))
            return out
        if spec.method == "hash":
            return [Locator(b, None, None) for b in range(spec.buckets)]
        return None

    def split(
        self, records: Iterable[Sequence[Any]]
    ) -> list[tuple[Locator, list[tuple]]]:
        """Route records into (locator, rows) groups.

        Fixed splits (range/hash) return every partition — including empty
        ones — in bucket order; value partitioning returns observed keys in
        first-seen order (which keeps the scan order of the paper's
        ``partition_C(N)`` identical to the previous grouped-rows
        rendering).
        """
        fixed = self.all_locators()
        groups: dict[Any, list[tuple]] = {}
        order: list[Locator] = []
        if fixed is not None:
            for locator in fixed:
                groups[locator.key] = []
            order = fixed
        for record in records:
            locator = self.locate(record)
            if locator.key not in groups:
                groups[locator.key] = []
                order.append(locator)
            groups[locator.key].append(tuple(record))
        return [(locator, groups[locator.key]) for locator in order]
