"""Render physical plans onto disk pages, and read them back.

The renderer is the paper's "storage backend" write path (§4.2): it takes the
evaluated nesting (an :class:`repro.algebra.transforms.Evaluated`) plus the
compiled :class:`repro.algebra.physical.PhysicalPlan` and lays bytes onto
pages. Each storage object (row heap, column group, grid cell stream, folded
heap, array vector) occupies one *contiguous extent* of pages, chained with
``next_page_id``, so that scans are sequential and the paper's "store and
walk each object in the same order" rule holds.

Encodings:

* rows / folded — slotted pages of serialized records;
* column group (single field) — byte pages, each holding one codec-encoded
  value chunk;
* column group (multiple fields) — slotted pages of mini-records (a PAX-like
  hybrid);
* grid — one continuous byte stream of cell blobs (per-cell, per-field
  codec-encoded columns) packed across byte pages, plus an in-memory cell
  directory mapping cell coordinate -> (bounds, byte range) — the case
  study's "hash table that tracks the spatial boundaries of each cell";
* array — fixed-width value vector with direct offsetting (supports
  multidimensional ``getElement``).

Read paths come in two granularities:

* tuple-at-a-time iterators (``iter_rows``, ``iter_column_group``, ...) —
  the reference implementation, kept for equivalence testing and as the
  before-side of the scan benchmarks;
* **batch-at-a-time** readers (:meth:`LayoutRenderer.iter_batches` and the
  per-layout helpers it dispatches to) — the hot path. They yield
  :class:`ColumnBatch` objects: a page/chunk worth of decoded values at
  once, produced with the codecs' bulk ``decode_all`` fast path and the
  serializers' bulk record decode, so the per-value Python interpreter tax
  is paid once per batch instead of once per value.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.algebra.physical import (
    LAYOUT_ARRAY,
    LAYOUT_COLUMNS,
    LAYOUT_FOLDED,
    LAYOUT_GRID,
    LAYOUT_MIRROR,
    LAYOUT_PARTITIONED,
    LAYOUT_ROWS,
    PhysicalPlan,
)
from repro.algebra.transforms import (
    Evaluated,
    Evaluator,
    GridResult,
    undelta_records,
)
from repro import vector
from repro.compression import get_codec
from repro.engine.synopsis import (
    LayoutSynopsis,
    zone_from_columns,
    zone_from_parts,
    zone_from_rows,
)
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import (
    BYTES_HEADER_SIZE,
    NO_PAGE,
    BytePage,
    SlottedPage,
)
from repro.storage.serializer import RecordSerializer, VectorSerializer
from repro.types.schema import Schema
from repro.types.values import flatten, shape as nesting_shape

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: Default rows per batch for batch-at-a-time readers whose natural unit
#: (page, chunk, cell) is smaller than this; page-shaped sources keep their
#: page granularity. ``RodentStore(batch_rows=...)`` overrides it per store.
#: 1024 won a sweep across {256..8192} in BENCH_vector.json: large enough
#: to amortize per-batch dispatch, small enough to stay cache-resident.
DEFAULT_BATCH_ROWS = 1024

#: Decoded-chunk cache entries kept per column group (FIFO). Chunks hold
#: roughly page-size worth of values, so the bound caps cache memory at a
#: few MB per hot group. The cache lives on :class:`ColumnGroupStore`,
#: which every rewrite replaces wholesale — invalidation is structural.
_CHUNK_CACHE_LIMIT = 512


def _cache_put(cache: dict, key, value) -> None:
    if len(cache) >= _CHUNK_CACHE_LIMIT:
        try:
            cache.pop(next(iter(cache)), None)
        except (StopIteration, RuntimeError):  # pragma: no cover - racing scan
            cache.clear()
    cache[key] = value


class ColumnBatch:
    """A batch of decoded records, backed by rows or by typed columns.

    Batches are produced in whichever orientation the layout yields
    naturally — row pages decode to row tuples, column chunks decode to
    contiguous typed vectors (numpy ``ndarray``/stdlib ``array`` for
    numeric fields, plain lists otherwise; see :mod:`repro.vector`) — and
    transpose lazily when the consumer needs the other orientation.

    Columnar batches may additionally carry a *selection bitmap*: a
    boolean mask over the underlying vectors recording which rows a
    vectorized predicate kept. The mask is resolved lazily — projections
    and further filters ride on top of it without materializing the
    surviving rows; ``rows()`` stays the compatibility shim that always
    yields native-python tuples in ``fields`` order.
    """

    __slots__ = ("fields", "n_rows", "_rows", "_columns", "_selection")

    def __init__(self, fields, n_rows, rows=None, columns=None, selection=None):
        self.fields = fields
        self.n_rows = n_rows
        self._rows = rows
        self._columns = columns
        self._selection = selection

    @classmethod
    def from_rows(
        cls, fields: tuple[str, ...], rows: list[tuple]
    ) -> "ColumnBatch":
        return cls(fields, len(rows), rows=rows)

    @classmethod
    def from_columns(
        cls, fields: tuple[str, ...], columns: list
    ) -> "ColumnBatch":
        n_rows = len(columns[0]) if columns else 0
        return cls(fields, n_rows, columns=columns)

    @property
    def is_columnar(self) -> bool:
        """True when the batch already holds per-field value vectors."""
        return self._columns is not None

    def rows(self) -> list[tuple]:
        """Records as native-python tuples in ``fields`` order (cached).

        Typed vectors convert through their bulk ``tolist`` so numpy
        scalars never leak into row tuples.
        """
        if self._rows is None:
            if self.n_rows:
                cols = [vector.to_list(c) for c in self.columns()]
                self._rows = list(zip(*cols))
            else:
                self._rows = []
        return self._rows

    def iter_rows(self):
        """Lazily iterate native-python row tuples (no list materialized)."""
        if self._rows is not None:
            return iter(self._rows)
        if not self.n_rows:
            return iter(())
        return zip(*[vector.to_list(c) for c in self.columns()])

    def columns(self) -> list:
        """Per-field value vectors parallel to ``fields``, with any pending
        selection bitmap resolved (cached). Vectors may be shared with the
        chunk cache and other batches — treat them as read-only."""
        if self._columns is None:
            if self._rows:
                self._columns = list(zip(*self._rows))
            else:
                self._columns = [() for _ in self.fields]
        elif self._selection is not None:
            mask = self._selection
            self._columns = [vector.apply_mask(c, mask) for c in self._columns]
            self._selection = None
        return self._columns

    def column_map(self) -> dict[str, Sequence]:
        """``field name -> value vector`` view of :meth:`columns`."""
        return dict(zip(self.fields, self.columns()))

    def select(self, mask, count: int | None = None) -> "ColumnBatch":
        """A batch restricted to the rows where ``mask`` is true.

        ``mask`` is a boolean vector over this batch's *visible* rows
        (``n_rows`` long). Columnar batches defer the gather: the new
        batch shares the underlying vectors and just records the bitmap.
        """
        if count is None:
            count = vector.mask_count(mask)
        if count == self.n_rows:
            return self
        if self._columns is not None:
            cols = self.columns() if self._selection is not None else self._columns
            if count == 0:
                return ColumnBatch(self.fields, 0, rows=[])
            return ColumnBatch(
                self.fields, count, columns=cols, selection=mask
            )
        keep = vector.to_list(mask) if not isinstance(mask, list) else mask
        rows = [r for r, k in zip(self._rows, keep) if k]
        return ColumnBatch.from_rows(self.fields, rows)

    def project_columns(
        self, idx: Sequence[int], fields: tuple[str, ...]
    ) -> "ColumnBatch":
        """Reorder/subset columns without touching the selection bitmap
        (columnar batches only)."""
        cols = self._columns
        return ColumnBatch(
            fields,
            self.n_rows,
            columns=[cols[i] for i in idx],
            selection=self._selection,
        )

    def head(self, k: int) -> "ColumnBatch":
        """The first ``k`` visible rows (limit pushdown)."""
        if k >= self.n_rows:
            return self
        if self._rows is not None:
            return ColumnBatch.from_rows(self.fields, self._rows[:k])
        cols = self.columns()
        return ColumnBatch(
            self.fields, k, columns=[c[:k] for c in cols]
        )

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        kind = "columnar" if self.is_columnar else "rows"
        if self._selection is not None:
            kind += "+selection"
        return f"<ColumnBatch {self.n_rows}x{len(self.fields)} {kind}>"


def select_column_groups(
    layout: "StoredLayout", needed: Sequence[str] | None
) -> list[tuple[int, "ColumnGroupStore"]]:
    """Column groups a scan for ``needed`` fields must read, with indexes.

    ``None`` means every group; a projection that touches no stored field
    still reads the first group so row positions (and counts) exist.
    """
    groups = list(enumerate(layout.column_groups))
    if needed is None:
        return groups
    needed_set = set(needed)
    touched = [(i, g) for i, g in groups if needed_set & set(g.fields)]
    return touched or groups[:1]


class _ColumnCursor:
    """Buffered reader over one column group's chunk stream.

    ``take(k)`` serves the next ``k`` rows of every field in the group
    (fewer at end-of-stream, ``None`` when exhausted), regardless of how
    the underlying chunks are sized — the alignment glue that lets groups
    with different chunk geometries merge positionally.
    """

    __slots__ = ("_stream", "_columns", "_offset")

    def __init__(self, stream: Iterator[list]):
        self._stream = stream
        self._columns: list | None = None
        self._offset = 0

    def take(self, k: int) -> list | None:
        """Up to ``k`` rows' worth of column vectors, or ``None`` at EOF.

        Batches never span chunks: a chunk no longer than ``k`` is handed
        out whole (the vectors may be shared with the decoded-chunk cache,
        so they are never copied or mutated), a longer one is served as
        zero-copy slices, and a sub-``k`` tail simply becomes a short
        batch. Downstream code treats batch sizes as advisory, and
        chunk-aligned batches keep the warm-cache scan path allocation-free.
        """
        columns = self._columns
        while columns is None:
            chunk = next(self._stream, None)
            if chunk is None:
                return None
            if not len(chunk[0]):
                continue
            if len(chunk[0]) <= k:
                return list(chunk)
            columns = self._columns = list(chunk)
            self._offset = 0
        offset = self._offset
        end = min(offset + k, len(columns[0]))
        out = [column[offset:end] for column in columns]
        if end == len(columns[0]):
            self._columns = None
            self._offset = 0
        else:
            self._offset = end
        return out

    def take_exact(self, k: int) -> list | None:
        """Exactly ``k`` rows (concatenating across chunks), fewer only at
        EOF. Follower cursors in a multi-group merge use this to stay
        positionally aligned with the lead group's chunk-aligned batches;
        cached chunk vectors are never mutated — growth builds fresh
        vectors via :func:`vector.concat`."""
        columns = self._columns
        while columns is None or len(columns[0]) - self._offset < k:
            chunk = next(self._stream, None)
            if chunk is None:
                break
            if columns is None:
                columns = self._columns = list(chunk)
                self._offset = 0
            else:
                offset = self._offset
                columns = self._columns = [
                    vector.concat([buf[offset:], values])
                    for buf, values in zip(columns, chunk)
                ]
                self._offset = 0
        if columns is None:
            return None
        offset = self._offset
        end = min(offset + k, len(columns[0]))
        if end == offset:
            return None
        out = [column[offset:end] for column in columns]
        if end == len(columns[0]):
            self._columns = None
            self._offset = 0
        else:
            self._offset = end
        return out


class _GroupSlicer:
    """Random-access reader over one column group's chunks by row range.

    Used by the zone-map-pruned column scan: each scanned group serves
    arbitrary (ascending) row intervals, decoding only the chunks those
    rows live in. The most recently decoded chunk is cached, so a
    sequential sweep over keep-intervals decodes each surviving chunk once.
    """

    __slots__ = (
        "_renderer",
        "_store",
        "_single",
        "_dtype",
        "_codec",
        "_serializer",
        "_starts",
        "_counts",
    )

    def __init__(self, renderer: "LayoutRenderer", layout: "StoredLayout", group_index: int):
        self._renderer = renderer
        store = layout.column_groups[group_index]
        self._store = store
        plan = layout.plan
        self._single = len(store.fields) == 1
        if self._single:
            counts = [rows for _, rows in store.chunks]
            self._dtype = plan.schema.field(store.fields[0]).dtype
            self._codec = get_codec(plan.codec_for(store.fields[0]))
            self._serializer = None
        else:
            assert layout.synopsis is not None
            counts = [
                z.row_count for z in layout.synopsis.group_zones[group_index]
            ]
            self._dtype = self._codec = None
            self._serializer = RecordSerializer(
                plan.schema.project(store.fields)
            )
        self._counts = counts
        starts: list[int] = []
        total = 0
        for count in counts:
            starts.append(total)
            total += count
        self._starts = starts

    def _chunk_columns(self, chunk_index: int) -> list:
        renderer = self._renderer
        if self._single:
            return [
                renderer._single_group_chunk(
                    self._store, self._dtype, self._codec, chunk_index
                )
            ]
        return renderer._multi_group_chunk(
            self._store, self._serializer, chunk_index
        )

    def slice(self, start: int, end: int) -> list:
        """Per-field value vectors covering rows [start, end)."""
        parts: list[list] = [[] for _ in self._store.fields]
        i = max(0, bisect_right(self._starts, start) - 1)
        while i < len(self._counts):
            chunk_start = self._starts[i]
            chunk_len = self._counts[i]
            if chunk_start >= end:
                break
            if chunk_len == 0 or chunk_start + chunk_len <= start:
                i += 1
                continue
            lo = max(0, start - chunk_start)
            hi = min(end - chunk_start, chunk_len)
            columns = self._chunk_columns(i)
            for part, column in zip(parts, columns):
                part.append(column[lo:hi])
            i += 1
        return [vector.concat(p) if p else [] for p in parts]


@dataclass
class Extent:
    """A contiguous run of page ids belonging to one storage object."""

    page_ids: list[int]

    @property
    def first(self) -> int:
        return self.page_ids[0] if self.page_ids else NO_PAGE

    def __len__(self) -> int:
        return len(self.page_ids)


@dataclass
class CellEntry:
    """Directory entry for one grid cell."""

    coord: tuple[int, ...]
    bounds: tuple[tuple[float, float], ...]  # [lo, hi) per dimension
    offset: int  # byte offset in the cell stream
    length: int  # blob length in bytes
    row_count: int


@dataclass
class ColumnGroupStore:
    """Stored form of one vertical partition."""

    fields: tuple[str, ...]
    extent: Extent
    # For single-field groups: (page index in extent, row count) per chunk.
    chunks: list[tuple[int, int]] = field(default_factory=list)
    # Decoded-chunk cache (chunk index -> decoded vectors). Stores are
    # immutable once rendered — rewrites build new ColumnGroupStore
    # objects — so entries never go stale; never persisted.
    cache: dict = field(default_factory=dict, repr=False, compare=False)


@dataclass
class StoredLayout:
    """A rendered table: page extents plus directories, per layout kind."""

    plan: PhysicalPlan
    row_count: int
    extent: Extent | None = None  # rows / folded / grid stream / array
    column_groups: list[ColumnGroupStore] = field(default_factory=list)
    cell_directory: list[CellEntry] = field(default_factory=list)
    array_shape: tuple[int, ...] | None = None
    array_values_per_page: int = 0
    array_dtype: Any = None
    mirrors: list["StoredLayout"] = field(default_factory=list)
    grid_origin: tuple[float, ...] = ()
    # (byte offset, byte length) per folded record, for folded layouts.
    folded_directory: list[tuple[int, int]] = field(default_factory=list)
    # Group-key tuple per folded record (parallel to folded_directory),
    # enabling key-range pruning without touching the stream.
    folded_keys: list[tuple] = field(default_factory=list)
    # Records per page, for rows layouts (enables direct get_element).
    page_row_counts: list[int] = field(default_factory=list)
    # Per-zone min/max synopses (zone maps), computed at render time;
    # ``None`` for layouts rendered before synopses existed.
    synopsis: LayoutSynopsis | None = None

    def total_pages(self) -> int:
        """Number of pages this layout occupies on disk."""
        pages = len(self.extent.page_ids) if self.extent else 0
        pages += sum(len(g.extent.page_ids) for g in self.column_groups)
        pages += sum(m.total_pages() for m in self.mirrors)
        return pages

    def clear_caches(self) -> None:
        """Drop every decoded-chunk cache in this layout (and mirrors).

        Only the cold-measurement harness (``RodentStore.run_cold``) calls
        this: "cold" means the decoded vectors are gone too, so a scan pays
        its true page reads again."""
        for group in self.column_groups:
            group.cache.clear()
        for mirror in self.mirrors:
            mirror.clear_caches()

    def page_ids(self) -> list[int]:
        """Every page id this layout occupies (main extent, groups, mirrors).

        The single home of "which pages does a layout own" — used to free a
        superseded layout once its last snapshot reader drains, and to log
        full-page after-images when a transaction renders a new layout.
        """
        ids: list[int] = []
        if self.extent is not None:
            ids.extend(self.extent.page_ids)
        for group in self.column_groups:
            ids.extend(group.extent.page_ids)
        for mirror in self.mirrors:
            ids.extend(mirror.page_ids())
        return ids

    def cells_overlapping(
        self, ranges: dict[str, tuple[float, float]]
    ) -> list[CellEntry]:
        """Directory lookup: cells whose bounds intersect the query ranges.

        ``ranges`` maps dimension name to an inclusive [lo, hi] interval;
        dimensions absent from ``ranges`` are unconstrained.
        """
        if self.plan.grid is None:
            raise StorageError("layout is not gridded")
        return [
            entry
            for entry in self.cell_directory
            if self.entry_overlaps(entry, ranges)
        ]

    def entry_overlaps(
        self, entry: "CellEntry", ranges: dict[str, tuple[float, float]]
    ) -> bool:
        """Can ``entry``'s cell bounds intersect the query ranges?

        The single home of the half-open cell-bound convention
        (``[lo, hi)`` per dimension vs inclusive query intervals) — every
        pruning path must test through here so they can never diverge.
        """
        assert self.plan.grid is not None
        for dim, (lo, hi) in zip(self.plan.grid.dims, entry.bounds):
            query = ranges.get(dim)
            if query is None:
                continue
            qlo, qhi = query
            if hi <= qlo or lo > qhi:
                return False
        return True


class LayoutRenderer:
    """Write evaluated nestings to pages and read them back.

    Args:
        pool: buffer pool fronting the disk manager; reads go through the
            pool (so repeated traversals can hit memory), writes go straight
            to the disk manager (rendering is a bulk operation).
    """

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self.disk = pool.disk
        self.page_size = pool.disk.page_size

    # ==================================================================
    # Rendering (write path)
    # ==================================================================

    def render(self, plan: PhysicalPlan, evaluated: Evaluated) -> StoredLayout:
        """Materialize ``evaluated`` on disk according to ``plan``."""
        if plan.kind == LAYOUT_ROWS:
            return self._render_rows(plan, evaluated)
        if plan.kind == LAYOUT_COLUMNS:
            return self._render_columns(plan, evaluated)
        if plan.kind == LAYOUT_GRID:
            return self._render_grid(plan, evaluated)
        if plan.kind == LAYOUT_FOLDED:
            return self._render_folded(plan, evaluated)
        if plan.kind == LAYOUT_ARRAY:
            return self._render_array(plan, evaluated)
        if plan.kind == LAYOUT_MIRROR:
            return self._render_mirror(plan, evaluated)
        if plan.kind == LAYOUT_PARTITIONED:
            # Partitioned tables are rendered region by region — routing
            # needs catalog state (partition map, region plans), which
            # lives above the renderer (RodentStore._render_region).
            raise StorageError(
                "partitioned plans render per region, not as one layout; "
                "load the table through RodentStore"
            )
        raise StorageError(f"cannot render layout kind {plan.kind!r}")

    def render_region(
        self,
        plan: PhysicalPlan,
        residual: Any,
        rows: Sequence[tuple],
        fields: Sequence[str],
    ) -> StoredLayout:
        """Render one partition region from stored-shape rows.

        ``residual`` is the region plan's structural residual (the algebra
        expression with its record-level prefix replaced by a reference to
        the already-transformed ``rows``); evaluating it re-applies the
        structural operators (fold/grid/columns/orderby) for this region
        only, so a single partition can be (re-)rendered without touching
        its siblings.
        """
        evaluator = Evaluator({"__stored__": (list(rows), tuple(fields))})
        return self.render(plan, evaluator.evaluate(residual))

    # -- rows ---------------------------------------------------------------

    def _render_rows(self, plan: PhysicalPlan, evaluated: Evaluated) -> StoredLayout:
        records = evaluated.records()
        serializer = RecordSerializer(plan.schema)
        pages = self._pack_slotted(serializer.encode(r) for r in records)
        extent = self._write_pages(pages)
        names = tuple(plan.schema.names())
        zones = []
        start = 0
        for page in pages:
            zones.append(
                zone_from_rows(
                    names,
                    records[start : start + page.slot_count],
                    plan.delta_fields,
                )
            )
            start += page.slot_count
        return StoredLayout(
            plan=plan,
            row_count=len(records),
            extent=extent,
            page_row_counts=[p.slot_count for p in pages],
            synopsis=LayoutSynopsis(page_zones=zones),
        )

    def _pack_slotted(self, blobs: Iterator[bytes]) -> list[SlottedPage]:
        pages: list[SlottedPage] = []
        current = SlottedPage(self.page_size)
        for blob in blobs:
            if not current.can_fit(len(blob)):
                pages.append(current)
                current = SlottedPage(self.page_size)
                if not current.can_fit(len(blob)):
                    raise StorageError(
                        f"record of {len(blob)} bytes exceeds page capacity"
                    )
            current.insert(blob)
        pages.append(current)
        return pages

    def _write_pages(
        self, pages: Sequence[SlottedPage | BytePage]
    ) -> Extent:
        page_ids = self.disk.allocate_contiguous(len(pages))
        for i, page in enumerate(pages):
            next_id = page_ids[i + 1] if i + 1 < len(page_ids) else NO_PAGE
            page.set_next_page_id(next_id)
            self.disk.write_page(page_ids[i], page.buffer)
        return Extent(page_ids)

    # -- columns -----------------------------------------------------------

    def _render_columns(
        self, plan: PhysicalPlan, evaluated: Evaluated
    ) -> StoredLayout:
        groups = plan.column_groups or tuple(
            (f,) for f in plan.schema.names()
        )
        values_by_group = evaluated.value  # parallel to groups
        layout = StoredLayout(plan=plan, row_count=0)
        group_zones: list[list] = []
        row_count = None
        for group_fields, values in zip(groups, values_by_group):
            if row_count is None:
                row_count = len(values)
            elif row_count != len(values):
                raise StorageError("column groups disagree on row count")
            if len(group_fields) == 1:
                store, zones = self._render_value_column(
                    plan, group_fields[0], values
                )
            else:
                store, zones = self._render_minirecord_group(
                    plan, group_fields, values
                )
            layout.column_groups.append(store)
            group_zones.append(zones)
        layout.row_count = row_count or 0
        layout.synopsis = LayoutSynopsis(group_zones=group_zones)
        return layout

    def _render_value_column(
        self, plan: PhysicalPlan, field_name: str, values: list
    ) -> tuple[ColumnGroupStore, list]:
        dtype = plan.schema.field(field_name).dtype
        codec = get_codec(plan.codec_for(field_name))
        capacity = self.page_size - BYTES_HEADER_SIZE
        target_rows = self._target_rows(dtype, capacity)
        pages: list[BytePage] = []
        chunks: list[tuple[int, int]] = []
        zones: list = []
        start = 0
        while start < len(values):
            rows = min(target_rows, len(values) - start)
            encoded = codec.encode(values[start : start + rows], dtype)
            while len(encoded) > capacity and rows > 1:
                rows = max(1, rows // 2)
                encoded = codec.encode(values[start : start + rows], dtype)
            if len(encoded) > capacity:
                raise StorageError(
                    f"a single {field_name} value exceeds page capacity"
                )
            page = BytePage(self.page_size)
            page.write(encoded)
            chunks.append((len(pages), rows))
            zones.append(
                zone_from_columns(
                    (field_name,),
                    [values[start : start + rows]],
                    plan.delta_fields,
                )
            )
            pages.append(page)
            start += rows
        if not pages:  # empty column still owns one (empty) page
            page = BytePage(self.page_size)
            page.write(codec.encode([], dtype))
            chunks.append((0, 0))
            zones.append(zone_from_columns((field_name,), [[]]))
            pages.append(page)
        extent = self._write_pages(pages)
        return ColumnGroupStore((field_name,), extent, chunks), zones

    def _target_rows(self, dtype: Any, capacity: int) -> int:
        width = dtype.fixed_size if dtype.fixed_size else dtype.estimated_size()
        return max(1, (capacity - 16) // max(1, width))

    def _render_minirecord_group(
        self, plan: PhysicalPlan, group_fields: tuple[str, ...], values: list
    ) -> tuple[ColumnGroupStore, list]:
        sub_schema = plan.schema.project(group_fields)
        serializer = RecordSerializer(sub_schema)
        pages = self._pack_slotted(serializer.encode(v) for v in values)
        extent = self._write_pages(pages)
        names = tuple(group_fields)
        zones: list = []
        start = 0
        for page in pages:
            zones.append(
                zone_from_rows(
                    names,
                    values[start : start + page.slot_count],
                    plan.delta_fields,
                )
            )
            start += page.slot_count
        return ColumnGroupStore(tuple(group_fields), extent), zones

    # -- grid -------------------------------------------------------------

    def _render_grid(self, plan: PhysicalPlan, evaluated: Evaluated) -> StoredLayout:
        grid: GridResult = evaluated.meta["grid"]
        schema = plan.schema
        positions = {name: i for i, name in enumerate(schema.names())}
        stream = bytearray()
        directory: list[CellEntry] = []
        cell_zones: list = []
        names = tuple(schema.names())
        total_rows = 0
        for coord, cell in zip(grid.coords, grid.cells):
            blob = self._encode_cell(plan, schema, cell)
            directory.append(
                CellEntry(
                    coord=tuple(coord),
                    bounds=tuple(grid.cell_bounds(coord)),
                    offset=len(stream),
                    length=len(blob),
                    row_count=len(cell),
                )
            )
            cell_zones.append(zone_from_rows(names, cell, plan.delta_fields))
            stream += blob
            total_rows += len(cell)
        extent = self._write_stream(bytes(stream))
        return StoredLayout(
            plan=plan,
            row_count=total_rows,
            extent=extent,
            cell_directory=directory,
            grid_origin=tuple(grid.origin),
            synopsis=LayoutSynopsis(cell_zones=cell_zones),
        )

    def _encode_cell(
        self, plan: PhysicalPlan, schema: Schema, cell: list
    ) -> bytes:
        parts = [_U32.pack(len(cell)), _U16.pack(len(schema.fields))]
        for i, f in enumerate(schema.fields):
            codec = get_codec(plan.codec_for(f.name))
            column = [record[i] for record in cell]
            encoded = codec.encode(column, f.dtype)
            parts.append(_U32.pack(len(encoded)))
            parts.append(encoded)
        return b"".join(parts)

    def _decode_cell(
        self, plan: PhysicalPlan, blob: bytes, bulk: bool = False
    ) -> list[tuple]:
        schema = plan.schema
        (row_count,) = _U32.unpack_from(blob, 0)
        (n_fields,) = _U16.unpack_from(blob, 4)
        if n_fields != len(schema.fields):
            raise StorageError(
                f"cell has {n_fields} fields, schema expects "
                f"{len(schema.fields)}"
            )
        offset = 6
        columns: list[list] = []
        for f in schema.fields:
            (length,) = _U32.unpack_from(blob, offset)
            offset += 4
            codec = get_codec(plan.codec_for(f.name))
            decode = codec.decode_all if bulk else codec.decode
            columns.append(decode(blob[offset : offset + length], f.dtype))
            offset += length
        if bulk:
            records = list(zip(*columns)) if row_count else []
        else:
            records = [
                tuple(col[i] for col in columns) for i in range(row_count)
            ]
        if plan.delta_fields:
            positions = {name: i for i, name in enumerate(schema.names())}
            records = undelta_records(records, positions, plan.delta_fields)
        return records

    def _write_stream(self, stream: bytes) -> Extent:
        capacity = self.page_size - BYTES_HEADER_SIZE
        pages: list[BytePage] = []
        for start in range(0, max(len(stream), 1), capacity):
            page = BytePage(self.page_size)
            page.write(stream[start : start + capacity])
            pages.append(page)
        return self._write_pages(pages)

    # -- folded ------------------------------------------------------------

    def _render_folded(self, plan: PhysicalPlan, evaluated: Evaluated) -> StoredLayout:
        group_schema = plan.schema.project(plan.group_fields)
        key_serializer = RecordSerializer(group_schema)
        nest_types = _nest_types(
            plan.schema.field("__folded__").dtype, len(plan.nest_fields)
        )
        nest_codecs = [
            (get_codec(plan.codec_for(name)), dtype)
            for name, dtype in zip(plan.nest_fields, nest_types)
        ]
        single = len(plan.nest_fields) == 1

        stream = bytearray()
        directory: list[tuple[int, int]] = []
        keys: list[tuple] = []
        folded_zones: list = []
        skip = set(plan.delta_fields)
        for row in evaluated.value:
            key = tuple(row[: len(plan.group_fields)])
            nested = row[len(plan.group_fields)]
            parts = [key_serializer.encode(key), _U32.pack(len(nested))]
            zone_parts: dict[str, list] = {
                name: [value]
                for name, value in zip(plan.group_fields, key)
                if name not in skip
            }
            for j, (codec, dtype) in enumerate(nest_codecs):
                if single:
                    vector = list(nested)
                else:
                    vector = [item[j] for item in nested]
                name = plan.nest_fields[j]
                if name not in skip:
                    zone_parts[name] = vector
                encoded = codec.encode(vector, dtype)
                parts.append(_U32.pack(len(encoded)))
                parts.append(encoded)
            blob = b"".join(parts)
            directory.append((len(stream), len(blob)))
            keys.append(key)
            folded_zones.append(zone_from_parts(len(nested), zone_parts))
            stream += blob
        extent = self._write_stream(bytes(stream))
        return StoredLayout(
            plan=plan,
            row_count=len(evaluated.value),
            extent=extent,
            folded_directory=directory,
            folded_keys=keys,
            synopsis=LayoutSynopsis(folded_zones=folded_zones),
        )

    # -- array -------------------------------------------------------------

    def _render_array(self, plan: PhysicalPlan, evaluated: Evaluated) -> StoredLayout:
        leaves = flatten(evaluated.value)
        array_shape = nesting_shape(evaluated.value)
        dtype = _leaf_dtype(leaves)
        serializer = VectorSerializer(dtype)
        capacity = self.page_size - BYTES_HEADER_SIZE
        width = dtype.fixed_size or dtype.estimated_size()
        per_page = max(1, (capacity - 8) // max(1, width))
        pages: list[BytePage] = []
        zones: list = []
        for start in range(0, max(len(leaves), 1), per_page):
            page = BytePage(self.page_size)
            page.write(serializer.encode(leaves[start : start + per_page]))
            zones.append(
                zone_from_columns(
                    ("value",), [leaves[start : start + per_page]]
                )
            )
            pages.append(page)
        extent = self._write_pages(pages)
        return StoredLayout(
            plan=plan,
            row_count=len(leaves),
            extent=extent,
            array_shape=array_shape,
            array_values_per_page=per_page,
            array_dtype=dtype,
            synopsis=LayoutSynopsis(page_zones=zones),
        )

    # -- mirror ------------------------------------------------------------

    def _render_mirror(self, plan: PhysicalPlan, evaluated: Evaluated) -> StoredLayout:
        left_plan, right_plan = plan.mirror_plans
        left = self.render(left_plan, evaluated.meta["left"])
        right = self.render(right_plan, evaluated.meta["right"])
        return StoredLayout(
            plan=plan,
            row_count=left.row_count,
            mirrors=[left, right],
        )

    # ==================================================================
    # Reading (scan path)
    # ==================================================================

    def iter_slotted_records(self, layout: StoredLayout) -> Iterator[bytes]:
        """Raw record blobs of a rows/folded layout, in storage order."""
        if layout.extent is None:
            return
        for page_id in layout.extent.page_ids:
            frame = self.pool.fetch(page_id)
            try:
                page = SlottedPage(self.page_size, frame.data)
                for _, blob in page.records():
                    yield blob
            finally:
                self.pool.unpin(page_id)

    def iter_rows(self, layout: StoredLayout) -> Iterator[tuple]:
        """Decoded records of a rows layout, in storage order."""
        serializer = RecordSerializer(layout.plan.schema)
        for blob in self.iter_slotted_records(layout):
            yield serializer.decode(blob)

    def iter_column_group(
        self, layout: StoredLayout, group_index: int
    ) -> Iterator[Any]:
        """Values (or mini-records) of one column group, in storage order."""
        store = layout.column_groups[group_index]
        plan = layout.plan
        if len(store.fields) == 1:
            dtype = plan.schema.field(store.fields[0]).dtype
            codec = get_codec(plan.codec_for(store.fields[0]))
            for page_index, _rows in store.chunks:
                page_id = store.extent.page_ids[page_index]
                frame = self.pool.fetch(page_id)
                try:
                    page = BytePage(self.page_size, frame.data)
                    yield from codec.decode(page.read(), dtype)
                finally:
                    self.pool.unpin(page_id)
        else:
            serializer = RecordSerializer(plan.schema.project(store.fields))
            for page_id in store.extent.page_ids:
                frame = self.pool.fetch(page_id)
                try:
                    page = SlottedPage(self.page_size, frame.data)
                    for _, blob in page.records():
                        yield serializer.decode(blob)
                finally:
                    self.pool.unpin(page_id)

    def read_cell(
        self, layout: StoredLayout, entry: CellEntry, bulk: bool = False
    ) -> list[tuple]:
        """Fetch and decode one grid cell (delta reconstruction included).

        ``bulk`` selects the codecs' ``decode_all`` fast path (batch scans).
        """
        blob = self._read_stream_range(layout, entry.offset, entry.length)
        return self._decode_cell(layout.plan, blob, bulk)

    def _read_stream_range(
        self, layout: StoredLayout, offset: int, length: int
    ) -> bytes:
        if layout.extent is None:
            raise StorageError("layout has no stream extent")
        capacity = self.page_size - BYTES_HEADER_SIZE
        first = offset // capacity
        last = (offset + max(length, 1) - 1) // capacity
        chunks: list[bytes] = []
        for page_index in range(first, last + 1):
            page_id = layout.extent.page_ids[page_index]
            frame = self.pool.fetch(page_id)
            try:
                page = BytePage(self.page_size, frame.data)
                chunks.append(page.read())
            finally:
                self.pool.unpin(page_id)
        joined = b"".join(chunks)
        start = offset - first * capacity
        return joined[start : start + length]

    def pages_for_cells(
        self, layout: StoredLayout, entries: Sequence[CellEntry]
    ) -> list[int]:
        """Distinct page ids covering ``entries``, in storage order."""
        return self.pages_for_stream_ranges(
            layout, [(e.offset, e.length) for e in entries]
        )

    def pages_for_stream_ranges(
        self, layout: StoredLayout, ranges: Sequence[tuple[int, int]]
    ) -> list[int]:
        """Distinct page ids covering ``(offset, length)`` byte ranges of a
        stream extent (grid cell streams, folded record streams), in
        storage order — the one place the stream-to-page geometry lives."""
        capacity = self.page_size - BYTES_HEADER_SIZE
        page_indexes: set[int] = set()
        for offset, length in ranges:
            first = offset // capacity
            last = (offset + max(length, 1) - 1) // capacity
            page_indexes.update(range(first, last + 1))
        assert layout.extent is not None
        return [
            layout.extent.page_ids[i] for i in sorted(page_indexes)
        ]

    def iter_folded(
        self,
        layout: StoredLayout,
        indices: Sequence[int] | None = None,
        bulk: bool = False,
    ) -> Iterator[tuple]:
        """Folded records ``(key..., [nested...])`` in storage order.

        ``indices`` restricts the iteration to specific folded records (by
        directory position) — the key-range pruning path. ``bulk`` selects
        the codecs' ``decode_all`` fast path (batch scans).
        """
        plan = layout.plan
        group_schema = plan.schema.project(plan.group_fields)
        key_serializer = RecordSerializer(group_schema)
        folded_field = plan.schema.field("__folded__")
        nest_types = _nest_types(folded_field.dtype, len(plan.nest_fields))
        nest_codecs = [
            (get_codec(plan.codec_for(name)), dtype)
            for name, dtype in zip(plan.nest_fields, nest_types)
        ]
        single = len(plan.nest_fields) == 1
        entries = layout.folded_directory
        if indices is not None:
            entries = [layout.folded_directory[i] for i in indices]
        for blob_offset, blob_length in entries:
            blob = self._read_stream_range(layout, blob_offset, blob_length)
            key = key_serializer.decode(blob)
            offset = key_serializer.encoded_size(key)
            (count,) = _U32.unpack_from(blob, offset)
            offset += 4
            vectors: list[list] = []
            for codec, dtype in nest_codecs:
                (length,) = _U32.unpack_from(blob, offset)
                offset += 4
                decode = codec.decode_all if bulk else codec.decode
                vectors.append(decode(blob[offset : offset + length], dtype))
                offset += length
            if single:
                nested = list(vectors[0])
            else:
                nested = [
                    tuple(vec[i] for vec in vectors) for i in range(count)
                ]
            yield tuple(key) + (nested,)

    def iter_array_leaves(self, layout: StoredLayout) -> Iterator[Any]:
        """All array leaves in physical (flattened) order."""
        if layout.extent is None:
            return
        dtype = layout.array_dtype or layout.plan.schema.fields[0].dtype
        serializer = VectorSerializer(dtype)
        for page_id in layout.extent.page_ids:
            frame = self.pool.fetch(page_id)
            try:
                page = BytePage(self.page_size, frame.data)
                yield from serializer.decode(page.read())
            finally:
                self.pool.unpin(page_id)

    # ==================================================================
    # Reading (batch-at-a-time scan path)
    # ==================================================================

    def iter_batches(
        self,
        layout: StoredLayout,
        needed: Sequence[str] | None = None,
        *,
        batch_size: int = DEFAULT_BATCH_ROWS,
        folded_indices: Sequence[int] | None = None,
        grid_entries: Sequence[CellEntry] | None = None,
    ) -> Iterator[ColumnBatch]:
        """Yield :class:`ColumnBatch` objects covering ``layout`` in storage
        order — the batch-at-a-time scan entry point.

        Args:
            needed: fields the scan touches; column layouts decode only the
                groups these fields live in (``None`` = all fields).
            batch_size: target rows per batch where the source's natural
                unit (page, chunk, cell) doesn't dictate one.
            folded_indices: directory positions to read for folded layouts
                (the key-range pruning hook); ``None`` = all.
            grid_entries: cell-directory entries to read for grid layouts
                (the cell pruning hook); ``None`` = all cells.

        Mirror layouts have no single storage order — the caller picks a
        replica (cost-based) and passes it here.
        """
        kind = layout.plan.kind
        if kind == LAYOUT_ROWS:
            yield from self.iter_row_batches(layout)
        elif kind == LAYOUT_COLUMNS:
            indexes = [i for i, _ in select_column_groups(layout, needed)]
            yield from self.iter_column_batches(
                layout, indexes, batch_size=batch_size
            )
        elif kind == LAYOUT_GRID:
            fields = tuple(layout.plan.schema.names())
            entries = (
                layout.cell_directory if grid_entries is None else grid_entries
            )
            for entry in entries:
                records = self.read_cell(layout, entry, bulk=True)
                if records:
                    yield ColumnBatch.from_rows(fields, records)
        elif kind == LAYOUT_FOLDED:
            yield from self.iter_folded_batches(
                layout, folded_indices, batch_size=batch_size
            )
        elif kind == LAYOUT_ARRAY:
            yield from self.iter_array_batches(layout)
        elif kind == LAYOUT_MIRROR:
            raise StorageError(
                "mirror layouts need a replica choice; batch-iterate the "
                "chosen replica instead"
            )
        else:
            raise StorageError(f"cannot batch-scan layout kind {kind!r}")

    def iter_row_batches(
        self,
        layout: StoredLayout,
        skip: "set[int] | None" = None,
    ) -> Iterator[ColumnBatch]:
        """Row-layout records, one (bulk-decoded) batch per slotted page.

        ``skip`` holds extent positions of pages zone-map pruning ruled out;
        skipped pages are never fetched from the buffer pool or decoded.
        """
        if layout.extent is None:
            return
        serializer = RecordSerializer(layout.plan.schema)
        decode_many = serializer.decode_many
        fields = tuple(layout.plan.schema.names())
        for page_index, page_id in enumerate(layout.extent.page_ids):
            if skip is not None and page_index in skip:
                continue
            frame = self.pool.fetch(page_id)
            try:
                page = SlottedPage(self.page_size, frame.data)
                blobs = [blob for _, blob in page.records()]
            finally:
                self.pool.unpin(page_id)
            if blobs:
                yield ColumnBatch.from_rows(fields, decode_many(blobs))

    def iter_column_batches(
        self,
        layout: StoredLayout,
        group_indexes: Sequence[int],
        *,
        batch_size: int = DEFAULT_BATCH_ROWS,
    ) -> Iterator[ColumnBatch]:
        """Positionally aligned batches over the given column groups.

        Each group's chunks decode whole (via the codec ``decode_all`` bulk
        path); a per-group cursor then serves aligned ``batch_size`` slices
        so groups with different chunk geometries merge without per-value
        round-trips.
        """
        fields = tuple(
            f
            for i in group_indexes
            for f in layout.column_groups[i].fields
        )
        cursors = [
            _ColumnCursor(self._iter_group_chunks(layout, i))
            for i in group_indexes
        ]
        while True:
            lead = cursors[0].take(batch_size)
            if lead is None:
                return
            n = len(lead[0])
            columns = list(lead)
            for cursor in cursors[1:]:
                more = cursor.take_exact(n)
                if more is None or len(more[0]) != n:
                    raise StorageError(
                        "column groups disagree on row count"
                    )
                columns.extend(more)
            yield ColumnBatch.from_columns(fields, columns)

    def _iter_group_chunks(
        self, layout: StoredLayout, group_index: int
    ) -> Iterator[list]:
        """One group's chunks as lists of per-field value vectors."""
        store = layout.column_groups[group_index]
        plan = layout.plan
        if len(store.fields) == 1:
            dtype = plan.schema.field(store.fields[0]).dtype
            codec = get_codec(plan.codec_for(store.fields[0]))
            for chunk_index in range(len(store.chunks)):
                values = self._single_group_chunk(
                    store, dtype, codec, chunk_index
                )
                if len(values):
                    yield [values]
        else:
            serializer = RecordSerializer(plan.schema.project(store.fields))
            for chunk_index in range(len(store.extent.page_ids)):
                columns = self._multi_group_chunk(
                    store, serializer, chunk_index
                )
                if columns and len(columns[0]):
                    yield columns

    def _single_group_chunk(
        self, store: ColumnGroupStore, dtype, codec, chunk_index: int
    ):
        """One single-field chunk as a typed vector, via the store's
        decoded-chunk cache. Cached vectors are shared across scans and
        batches — callers must never mutate them."""
        cached = store.cache.get(chunk_index)
        if cached is not None:
            return cached
        page_index, _rows = store.chunks[chunk_index]
        page_id = store.extent.page_ids[page_index]
        frame = self.pool.fetch(page_id)
        try:
            data = BytePage(self.page_size, frame.data).read()
        finally:
            self.pool.unpin(page_id)
        values = codec.decode_buffer(data, dtype)
        _cache_put(store.cache, chunk_index, values)
        return values

    def _multi_group_chunk(
        self, store: ColumnGroupStore, serializer: RecordSerializer, chunk_index: int
    ) -> list:
        """One multi-field chunk as per-field value lists (cached)."""
        cached = store.cache.get(chunk_index)
        if cached is not None:
            return cached
        page_id = store.extent.page_ids[chunk_index]
        frame = self.pool.fetch(page_id)
        try:
            page = SlottedPage(self.page_size, frame.data)
            blobs = [blob for _, blob in page.records()]
        finally:
            self.pool.unpin(page_id)
        records = serializer.decode_many(blobs)
        if records:
            columns = [list(c) for c in zip(*records)]
        else:
            columns = [[] for _ in store.fields]
        _cache_put(store.cache, chunk_index, columns)
        return columns

    def iter_pruned_column_batches(
        self,
        layout: StoredLayout,
        group_indexes: Sequence[int],
        keep: Sequence[tuple[int, int]],
        *,
        batch_size: int = DEFAULT_BATCH_ROWS,
    ) -> Iterator[ColumnBatch]:
        """Aligned column batches restricted to the ``keep`` row intervals.

        ``keep`` comes from :func:`repro.engine.synopsis.column_keep_intervals`
        (sorted, disjoint, ascending). Each group serves the same row ranges
        regardless of its own chunk geometry, so groups stay positionally
        aligned; chunks entirely outside ``keep`` are never fetched or
        decoded.
        """
        fields = tuple(
            f
            for i in group_indexes
            for f in layout.column_groups[i].fields
        )
        slicers = [_GroupSlicer(self, layout, i) for i in group_indexes]
        for start, end in keep:
            for batch_start in range(start, end, batch_size):
                batch_end = min(end, batch_start + batch_size)
                columns: list = []
                for slicer in slicers:
                    columns.extend(slicer.slice(batch_start, batch_end))
                if columns and len(columns[0]):
                    yield ColumnBatch.from_columns(fields, columns)

    def iter_folded_batches(
        self,
        layout: StoredLayout,
        indices: Sequence[int] | None = None,
        *,
        batch_size: int = DEFAULT_BATCH_ROWS,
    ) -> Iterator[ColumnBatch]:
        """Un-nested folded records, coalesced into ~``batch_size`` batches."""
        plan = layout.plan
        fields = tuple(plan.group_fields) + tuple(plan.nest_fields)
        single = len(plan.nest_fields) == 1
        rows: list[tuple] = []
        for row in self.iter_folded(layout, indices, bulk=True):
            key = row[:-1]
            nested = row[-1]
            if single:
                rows.extend(key + (item,) for item in nested)
            else:
                rows.extend(key + tuple(item) for item in nested)
            if len(rows) >= batch_size:
                yield ColumnBatch.from_rows(fields, rows)
                rows = []
        if rows:
            yield ColumnBatch.from_rows(fields, rows)

    def iter_array_batches(
        self,
        layout: StoredLayout,
        skip: "set[int] | None" = None,
    ) -> Iterator[ColumnBatch]:
        """Array leaves as single-column batches, one per page.

        ``skip`` holds extent positions of zone-pruned pages (never fetched).
        """
        if layout.extent is None:
            return
        dtype = layout.array_dtype or layout.plan.schema.fields[0].dtype
        serializer = VectorSerializer(dtype)
        for page_index, page_id in enumerate(layout.extent.page_ids):
            if skip is not None and page_index in skip:
                continue
            frame = self.pool.fetch(page_id)
            try:
                page = BytePage(self.page_size, frame.data)
                values = serializer.decode_buffer(page.read())
            finally:
                self.pool.unpin(page_id)
            if len(values):
                yield ColumnBatch.from_columns(("value",), [values])

    def get_array_element(self, layout: StoredLayout, index: Sequence[int] | int) -> Any:
        """Direct-offset lookup of one array element (multidim supported)."""
        flat = self._flat_index(layout, index)
        if not 0 <= flat < layout.row_count:
            raise StorageError(f"array index {index!r} out of bounds")
        page_index = flat // layout.array_values_per_page
        within = flat % layout.array_values_per_page
        assert layout.extent is not None
        page_id = layout.extent.page_ids[page_index]
        frame = self.pool.fetch(page_id)
        try:
            page = BytePage(self.page_size, frame.data)
            dtype = layout.array_dtype or layout.plan.schema.fields[0].dtype
            values = VectorSerializer(dtype).decode(page.read())
            return values[within]
        finally:
            self.pool.unpin(page_id)

    def _flat_index(self, layout: StoredLayout, index: Sequence[int] | int) -> int:
        if isinstance(index, int):
            return index
        shape = layout.array_shape
        if shape is None or len(shape) != len(index):
            raise StorageError(
                f"multidimensional index {index!r} does not match array "
                f"shape {shape!r}"
            )
        flat = 0
        for extent, i in zip(shape, index):
            if not 0 <= i < extent:
                raise StorageError(f"index {index!r} outside shape {shape!r}")
            flat = flat * extent + i
        return flat


def _nest_types(folded_dtype: Any, n_nest_fields: int) -> list:
    """Element types of the folded vectors, from the ListType schema entry."""
    from repro.types.types import ListType, NestedType

    if not isinstance(folded_dtype, ListType):
        raise StorageError("__folded__ field is not a list type")
    element = folded_dtype.element_type
    if n_nest_fields == 1:
        return [element]
    if not isinstance(element, NestedType):
        raise StorageError("multi-field fold requires nested element type")
    return list(element.element_types)


def _leaf_dtype(leaves: Sequence[Any]):
    from repro.types.types import FLOAT, INT, STRING

    if all(isinstance(v, int) and not isinstance(v, bool) for v in leaves):
        return INT
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in leaves):
        return FLOAT
    return STRING
