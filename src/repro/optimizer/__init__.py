"""Storage design optimizer (paper §5): workloads, costing, search, advisor."""

from repro.optimizer.advisor import (
    Recommendation,
    recommend,
    recommend_for_table,
)
from repro.optimizer.candidates import (
    affinity_column_groups,
    enumerate_candidates,
    suggest_stride,
)
from repro.optimizer.cost_model import DesignCost, PlanCostEstimator
from repro.optimizer.monitor import AccessPattern, WorkloadMonitor
from repro.optimizer.reorganize import Policy, ReorganizationManager
from repro.optimizer.search import (
    SearchResult,
    exhaustive_search,
    greedy_stride_descent,
    simulated_annealing,
)
from repro.optimizer.workload import Query, Workload

__all__ = [
    "AccessPattern",
    "DesignCost",
    "PlanCostEstimator",
    "Policy",
    "Query",
    "Recommendation",
    "ReorganizationManager",
    "SearchResult",
    "Workload",
    "WorkloadMonitor",
    "affinity_column_groups",
    "enumerate_candidates",
    "exhaustive_search",
    "greedy_stride_descent",
    "recommend",
    "recommend_for_table",
    "simulated_annealing",
    "suggest_stride",
]
