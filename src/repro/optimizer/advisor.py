"""The storage design advisor: the public face of paper §5.

``recommend()`` takes a schema, statistics, and a workload, enumerates
candidate designs, searches them, and returns the recommended storage-algebra
expression with its predicted cost and the runner-up alternatives — the
"recommended storage representation" the paper's optimizer outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra import ast
from repro.engine.cost import CostModel
from repro.engine.database import RodentStore
from repro.engine.stats import TableStats
from repro.errors import OptimizerError
from repro.optimizer.candidates import enumerate_candidates
from repro.optimizer.cost_model import DesignCost, PlanCostEstimator
from repro.optimizer.search import (
    SearchResult,
    exhaustive_search,
    greedy_stride_descent,
    simulated_annealing,
)
from repro.optimizer.workload import Workload
from repro.types.schema import Schema


@dataclass
class Recommendation:
    """The advisor's output."""

    expression: ast.Node
    predicted_ms: float
    storage_pages: int
    alternatives: list[tuple[str, float]]  # (expression text, predicted ms)
    evaluated: int
    #: Predicted cost of the incumbent design under the same workload and
    #: cost model, when one was supplied — what the adaptive controller
    #: compares against before it moves any data.
    incumbent_ms: float | None = None

    def describe(self) -> str:
        return (
            f"{self.expression.to_text()}  "
            f"(predicted {self.predicted_ms:.2f} ms/workload, "
            f"{self.storage_pages} pages, {self.evaluated} designs costed)"
        )


def recommend(
    schema: Schema,
    stats: TableStats,
    workload: Workload,
    cost_model: CostModel,
    strategy: str = "exhaustive+descent",
    include_mirrors: bool = False,
    incumbent: ast.Node | str | None = None,
) -> Recommendation:
    """Recommend a physical design for ``workload``.

    Strategies:
        ``exhaustive`` — cost the whole candidate pool;
        ``exhaustive+descent`` (default) — exhaustive, then refine grid
        strides by coordinate descent;
        ``annealing`` — simulated annealing over the pool and mutations.

    ``incumbent`` (a storage-algebra expression, text or AST) is the design
    currently installed; it joins the candidate pool — so the recommendation
    can never lose to it within the model — and its predicted cost is
    reported as :attr:`Recommendation.incumbent_ms` for hysteresis checks.
    """
    candidates = enumerate_candidates(
        schema, stats, workload, include_mirrors=include_mirrors
    )
    estimator = PlanCostEstimator(stats, cost_model, cost_model.page_size)

    incumbent_expr: ast.Node | None = None
    incumbent_ms: float | None = None
    if incumbent is not None:
        from repro.algebra.parser import parse

        incumbent_expr = (
            parse(incumbent) if isinstance(incumbent, str) else incumbent
        )
        incumbent_ms = _cost_of(incumbent_expr, schema, estimator, workload)
        texts = {c.to_text() for c in candidates}
        if incumbent_expr.to_text() not in texts:
            candidates = [incumbent_expr, *candidates]

    if strategy == "annealing":
        result = simulated_annealing(candidates, schema, estimator, workload)
    elif strategy in ("exhaustive", "exhaustive+descent"):
        result = exhaustive_search(candidates, schema, estimator, workload)
        if strategy == "exhaustive+descent":
            result = _maybe_descend(result, schema, estimator, workload)
    else:
        raise OptimizerError(f"unknown search strategy {strategy!r}")

    ranked = sorted(result.trace, key=lambda pair: pair[1])
    return Recommendation(
        expression=result.best.plan.expr,
        predicted_ms=result.best.total_ms,
        storage_pages=result.best.storage_pages,
        alternatives=ranked[1:6],
        evaluated=result.evaluated,
        incumbent_ms=incumbent_ms,
    )


def _cost_of(
    expr: ast.Node,
    schema: Schema,
    estimator: PlanCostEstimator,
    workload: Workload,
) -> float | None:
    """Predicted workload cost of one expression, or None if uncostable."""
    from repro.algebra.interpreter import AlgebraInterpreter

    try:
        plan = AlgebraInterpreter({workload.table: schema}).compile(expr)
        return estimator.workload_cost(plan, workload).total_ms
    except Exception:
        return None


def _maybe_descend(
    result: SearchResult,
    schema: Schema,
    estimator: PlanCostEstimator,
    workload: Workload,
) -> SearchResult:
    has_grid = any(
        isinstance(node, ast.Grid) for node in result.expression.walk()
    )
    if not has_grid:
        return result
    refined = greedy_stride_descent(
        result.expression, schema, estimator, workload
    )
    if refined.best.total_ms < result.best.total_ms:
        refined.trace = result.trace + refined.trace
        refined.evaluated += result.evaluated
        return refined
    result.evaluated += refined.evaluated
    return result


def recommend_for_table(
    store: RodentStore,
    workload: Workload,
    strategy: str = "exhaustive+descent",
) -> Recommendation:
    """Recommend a design for a loaded table, using its collected stats.

    The table's installed design (when planned) is passed as the incumbent,
    so the result carries ``incumbent_ms`` for before/after comparison.
    """
    entry = store.catalog.entry(workload.table)
    if entry.stats is None:
        raise OptimizerError(
            f"table {workload.table!r} has no statistics; load data first"
        )
    return recommend(
        entry.logical_schema,
        entry.stats,
        workload,
        store.cost_model,
        strategy=strategy,
        incumbent=entry.plan.expr if entry.plan is not None else None,
    )
