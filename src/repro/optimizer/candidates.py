"""Candidate physical-design enumeration.

Paper §5: "Most of the above transformations lead to an exponential number of
physical designs. For example, if there are n columns in a table, there are
2^n ways to co-locate that table's columns. ... For this reason, we
anticipate heavy reliance on heuristic search algorithms."

This module generates a tractable candidate pool:

* the canonical row layout, sorted variants for frequently-ranged fields;
* pure DSM columns, plus affinity-derived column groups;
* grids over pairs of range-queried numeric dimensions with strides sized
  from the observed query extents, in row-major / z-order / Hilbert cell
  orders, with optional delta+varint compression on the gridded dimensions;
* folded layouts for low-cardinality grouping fields;
* a fractured mirror of the two best pure designs (optional).
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.algebra import ast
from repro.engine.stats import TableStats
from repro.optimizer.workload import Workload
from repro.types.schema import Schema
from repro.types.types import FloatType, IntType


def enumerate_candidates(
    schema: Schema,
    stats: TableStats,
    workload: Workload,
    include_mirrors: bool = False,
    max_grid_dims: int = 2,
) -> list[ast.Node]:
    """Produce a deduplicated list of candidate expressions."""
    table = ast.TableRef(workload.table)
    out: list[ast.Node] = [table]
    seen: set[str] = {table.to_text()}

    def add(expr: ast.Node) -> None:
        text = expr.to_text()
        if text not in seen:
            seen.add(text)
            out.append(expr)

    for expr in _sorted_rows(table, schema, workload):
        add(expr)
    for expr in _column_designs(table, schema, workload):
        add(expr)
    for expr in _grid_designs(table, schema, stats, workload, max_grid_dims):
        add(expr)
    for expr in _folded_designs(table, schema, stats, workload):
        add(expr)
    if include_mirrors and len(out) >= 3:
        add(ast.Mirror(ast.Rows(table), ast.Columns(table, ())))
    return out


def _sorted_rows(
    table: ast.TableRef, schema: Schema, workload: Workload
) -> Iterator[ast.Node]:
    dims = workload.range_dimensions()
    ranked = sorted(dims, key=lambda d: -len(dims[d]))
    for name in ranked[:2]:
        if schema.has_field(name):
            yield ast.OrderBy(table, (ast.SortKey(name),))


def _column_designs(
    table: ast.TableRef, schema: Schema, workload: Workload
) -> Iterator[ast.Node]:
    yield ast.Columns(table, ())  # pure DSM
    groups = affinity_column_groups(schema, workload)
    if groups and tuple(groups) != tuple((f,) for f in schema.names()):
        yield ast.Columns(table, tuple(tuple(g) for g in groups))


def affinity_column_groups(
    schema: Schema, workload: Workload
) -> list[list[str]]:
    """Greedy attribute-affinity column grouping (after Agrawal et al. 2004).

    Start from singleton groups; repeatedly merge the pair of groups with the
    highest summed co-access weight until the strongest remaining affinity
    falls below half the strongest seen.
    """
    fields = schema.names()
    matrix = workload.co_access_matrix(fields)
    if not matrix:
        return [[f] for f in fields]
    groups: list[list[str]] = [[f] for f in fields]
    strongest = max(matrix.values())
    threshold = strongest / 2

    def group_affinity(a: list[str], b: list[str]) -> float:
        total = 0.0
        for x in a:
            for y in b:
                key = (x, y) if x < y else (y, x)
                total += matrix.get(key, 0.0)
        return total / (len(a) * len(b))

    while len(groups) > 1:
        best_pair = None
        best_score = 0.0
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                score = group_affinity(groups[i], groups[j])
                if score > best_score:
                    best_score = score
                    best_pair = (i, j)
        if best_pair is None or best_score < threshold:
            break
        i, j = best_pair
        groups[i] = groups[i] + groups[j]
        del groups[j]
    return groups


def _grid_designs(
    table: ast.TableRef,
    schema: Schema,
    stats: TableStats,
    workload: Workload,
    max_grid_dims: int,
) -> Iterator[ast.Node]:
    dims = workload.range_dimensions()
    numeric_dims = [
        d
        for d in dims
        if schema.has_field(d) and _is_numeric(schema, d)
        and stats.fields.get(d) is not None
        and stats.fields[d].is_numeric
    ]
    projected = _projection_for(schema, workload, numeric_dims)
    for k in range(2, max_grid_dims + 1):
        for combo in itertools.combinations(numeric_dims, k):
            strides = [suggest_stride(stats, dims, d) for d in combo]
            if any(s is None for s in strides):
                continue
            base: ast.Node = table
            if projected is not None:
                base = ast.Project(table, projected)
            gridded = ast.Grid(base, tuple(combo), tuple(strides))
            yield gridded
            z = ast.ZOrder(gridded)
            yield z
            if k == 2:
                yield ast.HilbertOrder(gridded)
            compressible = [
                d for d in combo if isinstance(
                    _base_type(schema, d), IntType
                )
            ]
            if compressible:
                yield ast.Compress(
                    ast.Delta(z, tuple(compressible)),
                    "varint",
                    tuple(compressible),
                )


def suggest_stride(
    stats: TableStats,
    query_ranges: dict[str, list[tuple[float, float]]],
    dim: str,
    cells_per_query_side: float = 2.0,
) -> float | None:
    """Stride such that a typical query spans ~``cells_per_query_side`` cells.

    The case study sizes cells comparably to the query footprint; far smaller
    cells bloat the directory and seeks, far larger cells read excess data.
    """
    field_stats = stats.fields.get(dim)
    if field_stats is None or not field_stats.is_numeric:
        return None
    spans = [
        hi - lo
        for lo, hi in query_ranges.get(dim, [])
        if hi > lo and hi != float("inf") and lo != float("-inf")
    ]
    extent = float(field_stats.max_value) - float(field_stats.min_value)
    if extent <= 0:
        return None
    if spans:
        stride = (sum(spans) / len(spans)) / cells_per_query_side
    else:
        stride = extent / 32
    stride = min(max(stride, extent / 4096), extent)
    if isinstance(field_stats.min_value, int):
        stride = max(1.0, round(stride))
    return stride


def _projection_for(
    schema: Schema, workload: Workload, dims: list[str]
) -> tuple[str, ...] | None:
    """Drop never-touched fields before gridding (the case study's N2 step)."""
    touched: set[str] = set(dims)
    for query in workload.queries:
        touched |= query.fields_touched(schema.names())
    projected = tuple(f for f in schema.names() if f in touched)
    if len(projected) == len(schema.names()):
        return None
    return projected


def _folded_designs(
    table: ast.TableRef,
    schema: Schema,
    stats: TableStats,
    workload: Workload,
) -> Iterator[ast.Node]:
    weights = workload.field_access_weights(schema.names())
    for f in schema.names():
        field_stats = stats.fields.get(f)
        if field_stats is None or field_stats.distinct == 0:
            continue
        rows = max(1, stats.row_count)
        if field_stats.distinct <= rows // 20 and weights.get(f, 0) > 0:
            rest = [n for n in schema.names() if n != f]
            if rest:
                yield ast.Fold(table, tuple(rest), (f,))


def _is_numeric(schema: Schema, name: str) -> bool:
    return isinstance(_base_type(schema, name), (IntType, FloatType))


def _base_type(schema: Schema, name: str):
    dtype = schema.field(name).dtype
    return getattr(dtype, "base", dtype)
