"""Analytic cost estimation of candidate physical designs.

The design optimizer must compare thousands of candidate layouts without
materializing any of them, so this module predicts — from table statistics
alone — how many pages and seeks each access-method call would read under a
given :class:`PhysicalPlan`. It mirrors the geometry used by the real
renderer (extents, cell streams, column chunks); the test suite checks the
prediction against measured I/O on rendered layouts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.algebra.physical import (
    LAYOUT_ARRAY,
    LAYOUT_COLUMNS,
    LAYOUT_FOLDED,
    LAYOUT_GRID,
    LAYOUT_MIRROR,
    LAYOUT_ROWS,
    PhysicalPlan,
)
from repro.engine.cost import CostEstimate, CostModel, estimate
from repro.engine.stats import TableStats, zone_survival_fraction
from repro.optimizer.workload import Query, Workload
from repro.types.types import FloatType, IntType

# Predicted output bytes per input byte, per codec, for plausible inputs.
# Calibrated against the codec micro-benchmarks (see EXPERIMENTS.md).
_CODEC_RATIO = {
    "none": 1.0,
    "varint": 0.25,  # small ints / deltas: ~2 bytes vs 8
    "delta": 0.35,
    "rle": 0.5,
    "dict": 0.4,
    "bitpack": 0.4,
    "for": 0.35,
    "lz": 0.5,
    "xor": 0.6,
}


# ---------------------------------------------------------------------------
# query-operator CPU costing
# ---------------------------------------------------------------------------
# The paper's storage model deliberately ignores CPU ("count bytes of I/O as
# well as disk seeks"), which is right for comparing layouts: both sides of a
# comparison pay the same operator work. The *query* planner, however, has to
# rank join orders and build sides whose I/O is identical, so it adds a rough
# per-row CPU term on top of the storage layer's I/O estimates. Magnitudes
# are microseconds per row for interpreted-Python batch operators.

_OPERATOR_US = {
    "filter": 0.15,
    "project": 0.05,
    "hash_build": 0.40,
    "hash_probe": 0.25,
    "group": 0.45,
    "emit": 0.03,
}

#: Per-comparison cost of the sort pipeline breaker.
_SORT_COMPARE_US = 0.08


def operator_cpu_ms(kind: str, rows: float) -> float:
    """Estimated CPU milliseconds for ``kind`` processing ``rows`` rows."""
    return _OPERATOR_US.get(kind, 0.1) * max(0.0, rows) / 1e3


def sort_cpu_ms(rows: float) -> float:
    """Estimated CPU milliseconds to sort ``rows`` rows (n log n)."""
    n = max(0.0, rows)
    if n < 2:
        return 0.0
    return n * math.log2(n) * _SORT_COMPARE_US / 1e3


@dataclass
class DesignCost:
    """Workload cost of one candidate design."""

    plan: PhysicalPlan
    total_ms: float
    per_query: dict[str, CostEstimate]
    storage_pages: int

    def __lt__(self, other: "DesignCost") -> bool:
        return self.total_ms < other.total_ms


class PlanCostEstimator:
    """Predict I/O for (plan, query) pairs from table statistics."""

    def __init__(
        self, stats: TableStats, cost_model: CostModel, page_size: int
    ):
        self.stats = stats
        self.model = cost_model
        self.page_size = page_size

    # -- field/record sizing ----------------------------------------------

    def field_width(self, plan: PhysicalPlan, name: str) -> float:
        """Stored bytes per value of ``name`` after its codec."""
        field_stats = self.stats.fields.get(name)
        base = (
            field_stats.avg_width
            if field_stats is not None and field_stats.avg_width
            else plan.schema.field(name).dtype.estimated_size()
        )
        codec = plan.codec_for(name)
        ratio = _CODEC_RATIO.get(codec, 1.0)
        if name in plan.delta_fields and codec == "varint":
            # Delta-then-varint on clustered values: ~2 bytes per value.
            return max(1.5, base * 0.2)
        return base * ratio

    def record_width(self, plan: PhysicalPlan) -> float:
        return sum(self.field_width(plan, f) for f in plan.schema.names())

    # -- per-layout page counts ---------------------------------------------

    def storage_pages(self, plan: PhysicalPlan) -> int:
        rows = self.stats.row_count
        if plan.kind == LAYOUT_MIRROR:
            return sum(self.storage_pages(p) for p in plan.mirror_plans)
        if plan.kind == LAYOUT_COLUMNS:
            groups = plan.column_groups or tuple(
                (f,) for f in plan.schema.names()
            )
            return sum(self._group_pages(plan, g, rows) for g in groups)
        if plan.kind == LAYOUT_FOLDED:
            return self._folded_pages(plan, rows)
        width = self.record_width(plan)
        return max(1, math.ceil(rows * width / self.page_size))

    def _group_pages(
        self, plan: PhysicalPlan, group: tuple[str, ...], rows: int
    ) -> int:
        width = sum(self.field_width(plan, f) for f in group)
        if len(group) > 1:
            width += 2  # slotted-page slot overhead per mini-record
        return max(1, math.ceil(rows * width / self.page_size))

    def _folded_pages(self, plan: PhysicalPlan, rows: int) -> int:
        group_width = sum(
            self.field_width(plan, f) for f in plan.group_fields
        )
        nest_schema_width = 0.0
        folded = plan.schema.field("__folded__")
        # Nested values keep their own width; keys are stored once per group.
        distinct = 1
        for f in plan.group_fields:
            field_stats = self.stats.fields.get(f)
            if field_stats is not None:
                distinct *= max(1, field_stats.distinct)
        distinct = min(distinct, max(1, rows))
        nested_width = folded.dtype.estimated_size() / 4  # per-value estimate
        total = distinct * group_width + rows * max(4.0, nested_width)
        return max(1, math.ceil(total / self.page_size))

    # -- query costing ----------------------------------------------------------

    def query_cost(self, plan: PhysicalPlan, query: Query) -> CostEstimate:
        """Predicted I/O of running ``query`` once against ``plan``."""
        if plan.kind == LAYOUT_MIRROR:
            return min(
                (self.query_cost(p, query) for p in plan.mirror_plans),
                key=lambda c: c.ms,
            )
        if plan.kind == LAYOUT_GRID:
            return self._grid_query_cost(plan, query)
        if plan.kind == LAYOUT_COLUMNS:
            return self._columns_query_cost(plan, query)
        # rows / folded / array: full scan of the object.
        pages = self.storage_pages(plan)
        if query.predicate is not None:
            sorted_pruned = False
            # Delta-encoded layouts serve neither pruning style at runtime:
            # stored values are not the logical values (no searchable sort
            # keys, no usable zones) and reconstruction reads every page.
            if plan.sort_keys and not plan.delta_fields:
                # A leading-sort-key range prunes a contiguous fraction.
                lead, _ = plan.sort_keys[0]
                ranges = query.ranges()
                if lead in ranges:
                    lo, hi = ranges[lead]
                    fraction = self.stats.fields[lead].selectivity(lo, hi)
                    pages = max(1, math.ceil(pages * fraction))
                    sorted_pruned = True
            if not sorted_pruned:
                # Zone-map pruning: pages whose min/max synopsis rules out
                # the predicate intervals are never read (this is what the
                # runtime does whenever the sorted-range path does not
                # apply). Expected survival under the stats' selectivity
                # (upper bound; clustered data does better).
                pages = self._zone_pruned_pages(pages, query, plan)
        return estimate(self.model, pages, 1)

    def _zone_pruned_pages(
        self,
        pages: int,
        query: Query,
        plan: PhysicalPlan,
        rows_per_zone: float | None = None,
    ) -> int:
        """Expected page count after zone-map pruning (≥1)."""
        ranges = query.ranges()
        if not ranges:
            return pages
        # Delta-encoded layouts cannot skip zones at runtime: stored values
        # are not the logical values, and reconstruction needs every
        # preceding record — so they earn no pruning credit here either.
        if plan.delta_fields:
            return pages
        selectivity = self.stats.predicate_selectivity(ranges)
        if rows_per_zone is None:
            rows_per_zone = self.stats.row_count / max(1, pages)
        survival = zone_survival_fraction(selectivity, rows_per_zone)
        return max(1, math.ceil(pages * survival))

    def _columns_query_cost(
        self, plan: PhysicalPlan, query: Query
    ) -> CostEstimate:
        groups = plan.column_groups or tuple((f,) for f in plan.schema.names())
        touched = query.fields_touched(plan.schema.names())
        needed = [g for g in groups if touched & set(g)]
        if not needed:
            needed = [groups[0]]
        rows = self.stats.row_count
        pages = sum(self._group_pages(plan, g, rows) for g in needed)
        if query.predicate is not None:
            # Chunk-zone pruning skips aligned chunks across every scanned
            # group; rows-per-zone is per group, not per total page count.
            rows_per_zone = rows / max(1.0, pages / max(1, len(needed)))
            pages = self._zone_pruned_pages(pages, query, plan, rows_per_zone)
        return estimate(self.model, pages, len(needed))

    def _grid_query_cost(self, plan: PhysicalPlan, query: Query) -> CostEstimate:
        assert plan.grid is not None
        rows = self.stats.row_count
        total_pages = max(
            1, math.ceil(rows * self.record_width(plan) / self.page_size)
        )
        # Cells per dimension from stats extents and strides.
        n_cells = 1
        cells_touched = 1.0
        ranges = query.ranges()
        for dim, stride in zip(plan.grid.dims, plan.grid.strides):
            field_stats = self.stats.fields.get(dim)
            if field_stats is None or not field_stats.is_numeric:
                return estimate(self.model, total_pages, 1)
            extent = float(field_stats.max_value) - float(field_stats.min_value)
            dim_cells = max(1, math.ceil(extent / stride))
            n_cells *= dim_cells
            if dim in ranges:
                lo, hi = ranges[dim]
                span = max(0.0, min(hi, field_stats.max_value)
                           - max(lo, field_stats.min_value))
                cells_touched *= min(dim_cells, span / stride + 1)
            else:
                cells_touched *= dim_cells
        fraction = min(1.0, cells_touched / n_cells)
        pages = max(1.0, total_pages * fraction)
        # Cell-order locality: z-order/hilbert keep nearby cells in few runs;
        # row-major orders pay roughly one run per row of cells touched.
        if plan.grid.cell_order in ("zorder", "hilbert"):
            seeks = max(1.0, math.sqrt(cells_touched))
        else:
            seeks = max(1.0, cells_touched ** (1 - 1 / max(1, len(plan.grid.dims))))
        seeks = min(seeks, pages)
        return estimate(self.model, pages, seeks)

    # -- workload costing ------------------------------------------------------

    def workload_cost(self, plan: PhysicalPlan, workload: Workload) -> DesignCost:
        per_query: dict[str, CostEstimate] = {}
        total = 0.0
        for query in workload.queries:
            cost = self.query_cost(plan, query)
            per_query[query.name] = cost
            total += cost.ms * query.weight
        return DesignCost(
            plan=plan,
            total_ms=total,
            per_query=per_query,
            storage_pages=self.storage_pages(plan),
        )
