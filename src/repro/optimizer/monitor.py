"""Live workload monitoring for the adaptive loop (paper §5, closed online).

The design optimizer consumes a :class:`~repro.optimizer.workload.Workload`
— a weighted bag of (fieldlist, predicate, order) access templates. Offline,
a designer hand-writes that bag; online, every access-method call *is* a
template instance, so the :class:`WorkloadMonitor` materializes the workload
for free: each ``Table.scan_batches`` / ``scan_reference`` call is folded
into a pattern keyed by its access shape, weighted with exponential decay so
the model tracks workload *shifts* (a pattern not seen for a while fades;
yesterday's point-lookups stop outvoting today's analytics).

Decay runs on a logical clock (one tick per observation), not wall time, so
the math is deterministic and testable: observing a pattern at tick ``t``
updates its weight to ``w * decay**(t - last_tick) + 1``. The monitor also
keeps per-pattern result cardinalities and planner estimation feedback
(actual vs estimated rows per scan), which the adaptivity report exposes.

State is plain data — patterns carry only field names, numeric ranges, order
keys, and weights — so the monitor serializes into the catalog JSON and
survives ``save_catalog`` / ``RodentStore.open``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.optimizer.workload import Query, Workload
from repro.query.expressions import Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.expressions import Predicate

#: Default per-observation decay: a pattern keeps ~36% of its weight after
#: 100 intervening observations, so a few hundred queries of a new shape
#: dominate the model.
DEFAULT_DECAY = 0.99

#: Patterns whose decayed weight falls below this are dropped on compaction.
MIN_PATTERN_WEIGHT = 0.01

#: Cap on distinct live patterns (highly parameterized workloads collapse
#: into their range-shape; this bounds the rest).
MAX_PATTERNS = 256


Signature = tuple


def access_signature(
    fieldlist: Sequence[str] | None,
    predicate: "Predicate | None",
    order: Sequence[tuple[str, bool]] | None,
) -> tuple[Signature, dict[str, tuple[float, float]], tuple[str, ...]]:
    """(pattern key, predicate ranges, extra predicate fields) of one scan.

    Two scans share a pattern when they project the same fields, constrain
    the same fields (regardless of the constants — a parameterized query
    template), and request the same order. The concrete ranges are kept
    separately so the pattern can remember a representative predicate.
    """
    fields_key = tuple(fieldlist) if fieldlist is not None else None
    ranges = predicate.ranges() if predicate is not None else {}
    used = predicate.fields_used() if predicate is not None else set()
    extra = tuple(sorted(used - set(ranges)))
    order_key = tuple((n, bool(a)) for n, a in order) if order else ()
    return (fields_key, tuple(sorted(ranges)), extra, order_key), ranges, extra


@dataclass
class AccessPattern:
    """One observed access shape with decayed weight and running ranges."""

    fieldlist: tuple[str, ...] | None
    #: The running *envelope* (union) of observed per-field bounds — what
    #: the adaptivity report shows, and the safe "fields this template
    #: constrains" summary.
    ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: The most recent observation's concrete bounds — the representative
    #: *instance* of the template. Design costing uses this: a
    #: parameterized template's envelope widens toward the whole domain
    #: (selectivity → 1), which would hide every range-friendly design,
    #: while one representative instance keeps the template's true width.
    recent_ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: Predicate fields with no usable range (residual conditions).
    extra_fields: tuple[str, ...] = ()
    order: tuple[tuple[str, bool], ...] = ()
    weight: float = 0.0
    last_tick: int = 0
    observations: int = 0
    #: Decayed mean of observed result cardinalities (None until seen).
    avg_rows: float | None = None

    def decayed_weight(self, now: int, decay: float) -> float:
        return self.weight * decay ** (now - self.last_tick)

    def observe(
        self,
        now: int,
        decay: float,
        ranges: dict[str, tuple[float, float]],
    ) -> None:
        self.weight = self.decayed_weight(now, decay) + 1.0
        self.last_tick = now
        self.observations += 1
        self.recent_ranges = dict(ranges)
        for name, (lo, hi) in ranges.items():
            if name in self.ranges:
                old_lo, old_hi = self.ranges[name]
                self.ranges[name] = (min(old_lo, lo), max(old_hi, hi))
            else:
                self.ranges[name] = (lo, hi)

    def record_rows(self, rows: int) -> None:
        if self.avg_rows is None:
            self.avg_rows = float(rows)
        else:  # decayed running mean, biased to recent executions
            self.avg_rows = 0.8 * self.avg_rows + 0.2 * rows

    def to_query(self, name: str, weight: float) -> Query:
        """Materialize this pattern as an advisor workload query: the most
        recent instance of the template, at the pattern's decayed weight."""
        representative = self.recent_ranges or self.ranges
        # A contradictory conjunction observes an *empty* interval
        # (lo > hi); Rect cannot express "matches nothing", so such fields
        # degrade to touched-but-unbounded — conservative for costing.
        bounds = {
            n: (lo, hi) for n, (lo, hi) in representative.items() if lo <= hi
        }
        predicate = Rect(bounds) if bounds else None
        touched_unbounded = tuple(
            n for n in self.ranges if n not in bounds
        ) + self.extra_fields
        fieldlist = self.fieldlist
        if fieldlist is not None and touched_unbounded:
            # Residual-only predicate fields still force those columns to
            # be read; fold them into the projection for costing.
            base = list(fieldlist)
            for extra in touched_unbounded:
                if extra not in base:
                    base.append(extra)
            fieldlist = tuple(base)
        return Query(
            name=name,
            fieldlist=fieldlist,
            predicate=predicate,
            order=self.order,
            weight=weight,
        )


@dataclass
class EstimationFeedback:
    """Planner cardinality accuracy: decayed mean q-error of scan estimates."""

    samples: int = 0
    mean_q_error: float = 1.0

    def record(self, estimated: float, actual: float) -> None:
        est = max(1.0, float(estimated))
        act = max(1.0, float(actual))
        q_error = max(est / act, act / est)
        self.samples += 1
        if self.samples == 1:
            self.mean_q_error = q_error
        else:
            self.mean_q_error = 0.9 * self.mean_q_error + 0.1 * q_error


class WorkloadMonitor:
    """Record access-method calls for one table; emit a decayed Workload."""

    def __init__(self, table: str, decay: float = DEFAULT_DECAY):
        self.table = table
        self.decay = decay
        self.ticks = 0
        self.patterns: dict[Signature, AccessPattern] = {}
        self.feedback = EstimationFeedback()
        #: Per-partition access skew: pid -> [decayed weight, last tick].
        #: A partition's weight rises by 1 whenever a scan actually reads
        #: it (pruned partitions don't count) and decays on the same
        #: logical clock as the access patterns — so "hot" tracks the
        #: *recent* skew, not lifetime totals.
        self.partition_hits: dict[int, list[float]] = {}

    # -- observation -------------------------------------------------------

    def observe(
        self,
        fieldlist: Sequence[str] | None,
        predicate: "Predicate | None",
        order: Sequence[tuple[str, bool]] | None,
    ) -> Signature:
        """Fold one access-method call into the model; returns its key."""
        key, ranges, extra = access_signature(fieldlist, predicate, order)
        self.ticks += 1
        pattern = self.patterns.get(key)
        created = pattern is None
        if created:
            fields_key, _, _, order_key = key
            pattern = AccessPattern(
                fieldlist=fields_key, extra_fields=extra, order=order_key
            )
            self.patterns[key] = pattern
        pattern.observe(self.ticks, self.decay, ranges)
        if created and len(self.patterns) > MAX_PATTERNS:
            self.compact()  # after observe: the new pattern has weight 1
        return key

    def observe_partitions(self, pids: Sequence[int]) -> None:
        """Record which partitions a scan actually read (post-pruning)."""
        now = self.ticks
        decay = self.decay
        for pid in pids:
            slot = self.partition_hits.get(pid)
            if slot is None:
                self.partition_hits[pid] = [1.0, now]
            else:
                weight, last = slot
                slot[0] = weight * decay ** (now - last) + 1.0
                slot[1] = now

    def partition_weights(self) -> dict[int, float]:
        """Current decayed access weight per partition id."""
        now = self.ticks
        decay = self.decay
        return {
            pid: weight * decay ** (now - last)
            for pid, (weight, last) in self.partition_hits.items()
        }

    def forget_partitions(self, live_pids: Sequence[int]) -> None:
        """Drop skew entries for partitions that no longer exist (after a
        whole-table re-layout re-creates the partition map)."""
        live = set(live_pids)
        self.partition_hits = {
            pid: slot
            for pid, slot in self.partition_hits.items()
            if pid in live
        }

    def record_result(self, key: Signature, rows: int) -> None:
        """Record the actual result cardinality of a completed scan."""
        pattern = self.patterns.get(key)
        if pattern is not None:
            pattern.record_rows(rows)

    def record_estimate(self, estimated: float, actual: float) -> None:
        """Planner feedback: estimated vs actual rows of one scan node."""
        self.feedback.record(estimated, actual)

    # -- maintenance -------------------------------------------------------

    def compact(self) -> None:
        """Drop faded patterns, then hard-cap the survivors.

        Weight pruning alone does not bound the table (a once-seen pattern
        stays above the floor for hundreds of ticks), so when an
        adversarially varied workload outpaces decay the lowest-weight
        patterns are evicted down to :data:`MAX_PATTERNS`.
        """
        now = self.ticks
        self.patterns = {
            key: p
            for key, p in self.patterns.items()
            if p.decayed_weight(now, self.decay) >= MIN_PATTERN_WEIGHT
        }
        if len(self.patterns) > MAX_PATTERNS:
            ranked = sorted(
                self.patterns.items(),
                key=lambda kv: -kv[1].decayed_weight(now, self.decay),
            )
            self.patterns = dict(ranked[:MAX_PATTERNS])

    def clear(self) -> None:
        self.patterns.clear()
        self.ticks = 0

    @property
    def total_observations(self) -> int:
        return sum(p.observations for p in self.patterns.values())

    def total_weight(self) -> float:
        now = self.ticks
        return sum(
            p.decayed_weight(now, self.decay) for p in self.patterns.values()
        )

    # -- workload materialization -----------------------------------------

    def to_workload(self, min_weight: float = MIN_PATTERN_WEIGHT) -> Workload:
        """The observed workload as the advisor's input model.

        Weights are the patterns' decayed weights at the current tick, so a
        shifted workload is dominated by its recent shape.
        """
        workload = Workload(self.table)
        now = self.ticks
        ranked = sorted(
            self.patterns.values(),
            key=lambda p: -p.decayed_weight(now, self.decay),
        )
        for i, pattern in enumerate(ranked):
            weight = pattern.decayed_weight(now, self.decay)
            if weight < min_weight:
                continue
            workload.add(pattern.to_query(f"observed{i}", weight))
        return workload

    # -- reporting / persistence -------------------------------------------

    def report(self) -> dict:
        now = self.ticks
        top = sorted(
            self.patterns.values(),
            key=lambda p: -p.decayed_weight(now, self.decay),
        )[:5]
        partition_skew = {
            pid: round(weight, 3)
            for pid, weight in sorted(
                self.partition_weights().items(),
                key=lambda kv: -kv[1],
            )[:8]
        }
        return {
            "observations": self.ticks,
            "live_patterns": len(self.patterns),
            "total_weight": round(self.total_weight(), 3),
            "estimate_q_error": round(self.feedback.mean_q_error, 3),
            "estimate_samples": self.feedback.samples,
            "partition_skew": partition_skew,
            "top_patterns": [
                {
                    "fieldlist": list(p.fieldlist)
                    if p.fieldlist is not None
                    else None,
                    "ranged_fields": sorted(p.ranges),
                    "order": [list(k) for k in p.order],
                    "weight": round(p.decayed_weight(now, self.decay), 3),
                    "avg_rows": round(p.avg_rows, 1)
                    if p.avg_rows is not None
                    else None,
                }
                for p in top
            ],
        }

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "decay": self.decay,
            "ticks": self.ticks,
            "feedback": [self.feedback.samples, self.feedback.mean_q_error],
            "partition_hits": {
                str(pid): [weight, last]
                for pid, (weight, last) in self.partition_hits.items()
            },
            "patterns": [
                {
                    "fieldlist": list(p.fieldlist)
                    if p.fieldlist is not None
                    else None,
                    "ranges": {
                        name: [lo, hi] for name, (lo, hi) in p.ranges.items()
                    },
                    "recent_ranges": {
                        name: [lo, hi]
                        for name, (lo, hi) in p.recent_ranges.items()
                    },
                    "extra_fields": list(p.extra_fields),
                    "order": [[n, a] for n, a in p.order],
                    "weight": p.weight,
                    "last_tick": p.last_tick,
                    "observations": p.observations,
                    "avg_rows": p.avg_rows,
                }
                for p in self.patterns.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadMonitor":
        monitor = cls(data["table"], decay=data.get("decay", DEFAULT_DECAY))
        monitor.ticks = data.get("ticks", 0)
        samples, q_error = data.get("feedback", [0, 1.0])
        monitor.feedback = EstimationFeedback(samples, q_error)
        monitor.partition_hits = {
            int(pid): [float(weight), int(last)]
            for pid, (weight, last) in data.get(
                "partition_hits", {}
            ).items()
        }
        for p in data.get("patterns", []):
            fieldlist = (
                tuple(p["fieldlist"]) if p["fieldlist"] is not None else None
            )
            pattern = AccessPattern(
                fieldlist=fieldlist,
                ranges={
                    name: (lo, hi)
                    for name, (lo, hi) in p.get("ranges", {}).items()
                },
                recent_ranges={
                    name: (lo, hi)
                    for name, (lo, hi) in p.get("recent_ranges", {}).items()
                },
                extra_fields=tuple(p.get("extra_fields", [])),
                order=tuple(
                    (n, bool(a)) for n, a in p.get("order", [])
                ),
                weight=p["weight"],
                last_tick=p["last_tick"],
                observations=p["observations"],
                avg_rows=p.get("avg_rows"),
            )
            key = (
                pattern.fieldlist,
                tuple(sorted(pattern.ranges)),
                pattern.extra_fields,
                pattern.order,
            )
            monitor.patterns[key] = pattern
        return monitor
