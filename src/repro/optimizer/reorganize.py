"""Reorganization policies (paper §5, final paragraph).

When the advisor produces a new physical design, three policies govern when
data actually moves:

* **eager** — "every object with a new design is rewritten immediately";
* **new-data-only** — "reorganize only new data, leaving old data as it
  was"; cheap, but reads stay slow and scans must merge old + new;
* **lazy** — "objects are rewritten in the background or when they are
  accessed"; here: after the overflow (new data) exceeds a fraction of the
  table, or after a configurable number of accesses, the next touch point
  triggers the rewrite.

The manager tracks cumulative reorganization I/O so the reorganization
benchmark can compare write amplification against read latency per policy.

Every rewrite routes through :meth:`RodentStore.relayout` /
:meth:`RodentStore.relayout_partition`, which are transactional: the new
representation is rendered copy-on-write and swapped in at commit (WAL-
logged on durable stores), so policies never observe — or leave behind —
a half-reorganized table, even across a crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Sequence

from repro.algebra import ast
from repro.algebra.parser import parse
from repro.engine.database import RodentStore
from repro.storage.disk import IOStats


class Policy(Enum):
    EAGER = "eager"
    NEW_DATA_ONLY = "new-data-only"
    LAZY = "lazy"


@dataclass
class _TableState:
    policy: Policy
    pending_design: ast.Node | None = None
    accesses_since_design: int = 0
    source_records: list[tuple] | None = None


@dataclass
class ReorganizationManager:
    """Apply new designs to tables under a chosen policy."""

    store: RodentStore
    lazy_overflow_fraction: float = 0.25
    lazy_access_threshold: int = 8
    _states: dict[str, _TableState] = field(default_factory=dict)
    reorganization_io: IOStats = field(default_factory=IOStats)
    reorganizations: int = 0

    def set_policy(self, table: str, policy: Policy | str) -> None:
        policy = Policy(policy) if isinstance(policy, str) else policy
        state = self._states.get(table)
        if state is None:
            self._states[table] = _TableState(policy=policy)
        else:
            state.policy = policy

    def _state(self, table: str) -> _TableState:
        if table not in self._states:
            self._states[table] = _TableState(policy=Policy.EAGER)
        return self._states[table]

    # -- costing -----------------------------------------------------------

    def estimated_rewrite_ms(self, table: str, new_storage_pages: int) -> float:
        """Predicted one-time cost of rewriting ``table`` into a design of
        ``new_storage_pages`` pages: one sequential pass over the current
        representation (main layout plus overflow regions) and one
        sequential write of the new one. The adaptive controller charges
        this against a recommendation's predicted benefit before any data
        moves — a cheap design switch that saves little must not thrash.
        """
        entry = self.store.catalog.entry(table)
        read_pages = 0
        if entry.layout is not None:
            read_pages += entry.layout.total_pages()
        for overflow in entry.overflow:
            read_pages += overflow.total_pages()
        for run in entry.runs:
            read_pages += run.total_pages()
        return self.store.cost_model.cost_ms(
            read_pages + max(1, new_storage_pages), 2
        )

    def estimated_region_rewrite_ms(
        self, regions: Sequence[Any], new_storage_pages: int
    ) -> float:
        """Predicted cost of rewriting just these partition regions: one
        pass over their pages plus a region-scaled share of the new
        design's footprint. This is the number that makes partition-scoped
        adaptation cheap — a hot 10% of the table amortizes ~10x faster
        than a whole-table rewrite."""
        read_pages = sum(r.total_pages() for r in regions)
        write_pages = max(1, min(new_storage_pages, read_pages or 1))
        return self.store.cost_model.cost_ms(read_pages + write_pages, 2)

    # -- design changes ---------------------------------------------------

    def apply_design(
        self,
        table: str,
        expression: ast.Node | str,
        source_records: Sequence[Sequence[Any]] | None = None,
    ) -> None:
        """Install a new physical design under the table's policy."""
        state = self._state(table)
        expr = (
            expression if isinstance(expression, ast.Node) else parse(expression)
        )
        state.source_records = (
            [tuple(r) for r in source_records] if source_records else None
        )
        if state.policy == Policy.EAGER:
            self._rewrite(table, expr, state)
            state.pending_design = None
            return
        # Both deferred policies install the plan for *future* data by
        # recording it; new-data-only never rewrites old data.
        state.pending_design = expr
        state.accesses_since_design = 0

    def _rewrite(self, table: str, expr: ast.Node, state: _TableState) -> None:
        before = self.store.disk.stats.snapshot()
        self.store.relayout(table, expr, source_records=state.source_records)
        delta = self.store.disk.stats.delta(before)
        self.reorganization_io.page_reads += delta.page_reads
        self.reorganization_io.page_writes += delta.page_writes
        self.reorganization_io.read_seeks += delta.read_seeks
        self.reorganization_io.write_seeks += delta.write_seeks
        self.reorganizations += 1

    def rewrite_partition(
        self, table: str, pid: int, expr: ast.Node | str
    ) -> None:
        """Rewrite one partition region under a new design (always eager —
        the rewrite touches only that region's pages, so the deferred
        policies' motivation does not apply), tracked in the same
        reorganization I/O counters as whole-table rewrites."""
        node = expr if isinstance(expr, ast.Node) else parse(expr)
        before = self.store.disk.stats.snapshot()
        self.store.relayout_partition(table, pid, node)
        delta = self.store.disk.stats.delta(before)
        self.reorganization_io.page_reads += delta.page_reads
        self.reorganization_io.page_writes += delta.page_writes
        self.reorganization_io.read_seeks += delta.read_seeks
        self.reorganization_io.write_seeks += delta.write_seeks
        self.reorganizations += 1

    # -- access hook ---------------------------------------------------------

    def on_access(self, table: str) -> bool:
        """Notify the manager that ``table`` is being read.

        Under the lazy policy this may trigger the deferred rewrite; returns
        True when a reorganization happened.
        """
        state = self._state(table)
        if state.pending_design is None:
            return False
        state.accesses_since_design += 1
        if state.policy == Policy.NEW_DATA_ONLY:
            return False
        if state.policy == Policy.LAZY and self._lazy_due(table, state):
            self._rewrite(table, state.pending_design, state)
            state.pending_design = None
            return True
        return False

    def _lazy_due(self, table: str, state: _TableState) -> bool:
        if state.accesses_since_design >= self.lazy_access_threshold:
            return True
        t = self.store.table(table)
        total = max(1, t.row_count)
        return (t.overflow_row_count / total) >= self.lazy_overflow_fraction

    def step_background(self, table: str) -> bool:
        """Background rewrite opportunity (the lazy policy's other half)."""
        state = self._state(table)
        if state.policy == Policy.LAZY and state.pending_design is not None:
            self._rewrite(table, state.pending_design, state)
            state.pending_design = None
            return True
        return False

    def pending(self, table: str) -> ast.Node | None:
        return self._state(table).pending_design
