"""Design-space search: exhaustive, greedy, and simulated annealing.

Paper §5 anticipates "heavy reliance on heuristic search algorithms. For
example, to find the best gridding, we could use gradient descent or
simulated annealing to add dimensions until a low cost dimensionalization is
achieved." Three strategies are provided; the optimizer benchmark (Ablation
`bench_optimizer`) compares their cost/quality trade-off:

* :func:`exhaustive_search` — cost every candidate, pick the minimum
  (optimal w.r.t. the candidate pool and the cost model);
* :func:`greedy_stride_descent` — coordinate descent on grid strides
  (the paper's "gradient descent" suggestion);
* :func:`simulated_annealing` — random walks over design mutations.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace

from repro.algebra import ast
from repro.algebra.interpreter import AlgebraInterpreter
from repro.errors import OptimizerError
from repro.optimizer.cost_model import DesignCost, PlanCostEstimator
from repro.optimizer.workload import Workload
from repro.types.schema import Schema


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best: DesignCost
    evaluated: int
    trace: list[tuple[str, float]]  # (expression text, cost) per step

    @property
    def expression(self) -> ast.Node:
        return self.best.plan.expr


def _compile_and_cost(
    expr: ast.Node,
    interpreter: AlgebraInterpreter,
    estimator: PlanCostEstimator,
    workload: Workload,
) -> DesignCost | None:
    try:
        plan = interpreter.compile(expr)
        return estimator.workload_cost(plan, workload)
    except Exception:
        return None  # malformed candidate (e.g. grid over dropped field)


def exhaustive_search(
    candidates: list[ast.Node],
    schema: Schema,
    estimator: PlanCostEstimator,
    workload: Workload,
) -> SearchResult:
    """Cost every candidate expression; optimal over the pool."""
    interpreter = AlgebraInterpreter({workload.table: schema})
    best: DesignCost | None = None
    trace: list[tuple[str, float]] = []
    evaluated = 0
    for expr in candidates:
        cost = _compile_and_cost(expr, interpreter, estimator, workload)
        if cost is None:
            continue
        evaluated += 1
        trace.append((expr.to_text(), cost.total_ms))
        if best is None or cost.total_ms < best.total_ms:
            best = cost
    if best is None:
        raise OptimizerError("no candidate design could be costed")
    return SearchResult(best=best, evaluated=evaluated, trace=trace)


def greedy_stride_descent(
    expr: ast.Node,
    schema: Schema,
    estimator: PlanCostEstimator,
    workload: Workload,
    factors: tuple[float, ...] = (0.5, 2.0),
    max_rounds: int = 12,
) -> SearchResult:
    """Coordinate descent on the strides of the grid inside ``expr``.

    Each round tries scaling each grid stride by each factor, keeping the
    best improvement; stops at a local optimum.
    """
    interpreter = AlgebraInterpreter({workload.table: schema})
    current_expr = expr
    current = _compile_and_cost(current_expr, interpreter, estimator, workload)
    if current is None:
        raise OptimizerError(f"cannot cost seed design {expr.to_text()}")
    trace = [(current_expr.to_text(), current.total_ms)]
    evaluated = 1
    for _ in range(max_rounds):
        improved = False
        grid_node = _find_grid(current_expr)
        if grid_node is None:
            break
        for dim_index in range(len(grid_node.strides)):
            for factor in factors:
                candidate_expr = _with_stride(
                    current_expr, dim_index, grid_node.strides[dim_index] * factor
                )
                cost = _compile_and_cost(
                    candidate_expr, interpreter, estimator, workload
                )
                evaluated += 1
                if cost is not None and cost.total_ms < current.total_ms:
                    current, current_expr = cost, candidate_expr
                    trace.append((current_expr.to_text(), cost.total_ms))
                    improved = True
        if not improved:
            break
    return SearchResult(best=current, evaluated=evaluated, trace=trace)


def _find_grid(expr: ast.Node) -> ast.Grid | None:
    for node in expr.walk():
        if isinstance(node, ast.Grid):
            return node
    return None


def _with_stride(expr: ast.Node, dim_index: int, stride: float) -> ast.Node:
    def rewrite(node: ast.Node) -> ast.Node:
        if isinstance(node, ast.Grid):
            strides = list(node.strides)
            strides[dim_index] = max(stride, 1e-9)
            return replace(node, strides=tuple(strides))
        return node

    return expr.transform_bottom_up(rewrite)


def simulated_annealing(
    candidates: list[ast.Node],
    schema: Schema,
    estimator: PlanCostEstimator,
    workload: Workload,
    iterations: int = 200,
    initial_temperature: float = 1.0,
    seed: int = 0,
) -> SearchResult:
    """Anneal over the candidate pool plus stride mutations.

    Moves: jump to a random candidate, or mutate a grid stride of the
    current design by a random factor. Acceptance follows the Metropolis
    criterion on relative cost.
    """
    rng = random.Random(seed)
    interpreter = AlgebraInterpreter({workload.table: schema})
    pool = [
        (expr, cost)
        for expr in candidates
        for cost in [_compile_and_cost(expr, interpreter, estimator, workload)]
        if cost is not None
    ]
    if not pool:
        raise OptimizerError("no candidate design could be costed")
    current_expr, current = pool[0]
    best = current
    trace = [(current_expr.to_text(), current.total_ms)]
    evaluated = len(pool)
    temperature = initial_temperature
    for step in range(iterations):
        if rng.random() < 0.5 or _find_grid(current_expr) is None:
            candidate_expr = rng.choice(pool)[0]
        else:
            grid_node = _find_grid(current_expr)
            dim_index = rng.randrange(len(grid_node.strides))
            factor = rng.choice((0.25, 0.5, 0.8, 1.25, 2.0, 4.0))
            candidate_expr = _with_stride(
                current_expr, dim_index, grid_node.strides[dim_index] * factor
            )
        cost = _compile_and_cost(candidate_expr, interpreter, estimator, workload)
        evaluated += 1
        if cost is None:
            continue
        delta = (cost.total_ms - current.total_ms) / max(current.total_ms, 1e-9)
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            current_expr, current = candidate_expr, cost
            trace.append((current_expr.to_text(), cost.total_ms))
            if current.total_ms < best.total_ms:
                best = current
        temperature *= 0.98
    return SearchResult(best=best, evaluated=evaluated, trace=trace)
