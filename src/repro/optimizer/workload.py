"""Workload model for the storage design optimizer.

The optimizer (paper §5) "takes as input a relational schema and a workload
of SQL queries and outputs a recommended storage representation". Our
front-end-agnostic equivalent of a query is the access-method call it
compiles to: a (fieldlist, predicate, order) triple plus a frequency weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.query.expressions import Predicate


@dataclass(frozen=True)
class Query:
    """One query template with an execution frequency."""

    name: str
    fieldlist: tuple[str, ...] | None = None
    predicate: Predicate | None = None
    order: tuple[tuple[str, bool], ...] = ()
    weight: float = 1.0

    def fields_touched(self, all_fields: Sequence[str]) -> set[str]:
        """Fields this query reads (projection + predicate + order)."""
        touched = set(self.fieldlist) if self.fieldlist else set(all_fields)
        if self.predicate is not None:
            touched |= self.predicate.fields_used()
        touched |= {name for name, _ in self.order}
        return touched

    def ranges(self) -> dict[str, tuple[float, float]]:
        return self.predicate.ranges() if self.predicate else {}

    def signature(self) -> tuple:
        """Template identity: projection + constrained fields + order.

        Two queries share a signature when they are instances of the same
        parameterized template (same shape, possibly different constants);
        the decayed workload merge accumulates their weights.
        """
        used = (
            self.predicate.fields_used() if self.predicate is not None else set()
        )
        return (self.fieldlist, tuple(sorted(used)), self.order)


@dataclass
class Workload:
    """A weighted bag of query templates against one table."""

    table: str
    queries: list[Query] = field(default_factory=list)

    def add(self, query: Query) -> "Workload":
        self.queries.append(query)
        return self

    @property
    def total_weight(self) -> float:
        return sum(q.weight for q in self.queries)

    def co_access_matrix(
        self, all_fields: Sequence[str]
    ) -> dict[tuple[str, str], float]:
        """Attribute-affinity matrix (Agrawal et al. style).

        Entry (a, b) accumulates the weight of queries touching both a and b;
        the column-grouping heuristic merges high-affinity fields.
        """
        matrix: dict[tuple[str, str], float] = {}
        for query in self.queries:
            touched = sorted(query.fields_touched(all_fields))
            for i, a in enumerate(touched):
                for b in touched[i + 1 :]:
                    matrix[(a, b)] = matrix.get((a, b), 0.0) + query.weight
        return matrix

    def field_access_weights(
        self, all_fields: Sequence[str]
    ) -> dict[str, float]:
        """Total query weight touching each field."""
        weights = {f: 0.0 for f in all_fields}
        for query in self.queries:
            for name in query.fields_touched(all_fields):
                if name in weights:
                    weights[name] += query.weight
        return weights

    def range_dimensions(self) -> dict[str, list[tuple[float, float]]]:
        """Fields constrained by range predicates, with the query ranges."""
        dims: dict[str, list[tuple[float, float]]] = {}
        for query in self.queries:
            for name, bounds in query.ranges().items():
                dims.setdefault(name, []).append(bounds)
        return dims

    def scaled(self, factor: float) -> "Workload":
        """A copy with every weight multiplied by ``factor`` (decay step)."""
        out = Workload(self.table)
        for query in self.queries:
            out.add(replace(query, weight=query.weight * factor))
        return out

    def merge_decayed(
        self, observed: "Workload", decay: float = 0.5
    ) -> "Workload":
        """Fold ``observed`` into this workload with exponential decay.

        Existing weights are first scaled by ``decay`` (older evidence
        fades), then observed queries are merged: a query whose
        :meth:`Query.signature` matches an existing template accumulates
        onto it (keeping the newer predicate constants), new templates are
        appended. :meth:`AdaptiveController.seed_workload
        <repro.engine.adaptive.AdaptiveController.seed_workload>` uses this
        to combine a hand-written seed workload with the live monitor's
        output into one advisor input.
        """
        if observed.table != self.table:
            raise ValueError(
                f"cannot merge workload for {observed.table!r} into "
                f"{self.table!r}"
            )
        merged = self.scaled(decay)
        by_signature = {
            query.signature(): i for i, query in enumerate(merged.queries)
        }
        for query in observed.queries:
            key = query.signature()
            if key in by_signature:
                i = by_signature[key]
                incumbent = merged.queries[i]
                merged.queries[i] = replace(
                    query, weight=incumbent.weight + query.weight
                )
            else:
                by_signature[key] = len(merged.queries)
                merged.add(query)
        return merged
