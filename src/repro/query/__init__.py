"""Query layer: a plan-based compiler over the storage access methods.

Stages (front to back): :class:`Q` (fluent builder) accumulates a
:class:`QuerySpec`; the planner (:mod:`repro.query.planner`) lowers it to
the logical IR (:mod:`repro.query.plan`), applies pushdown rewrites and
cost-based access-path/join-order choices, and emits the batch physical
operators of :mod:`repro.query.operators`; :func:`execute` is the
compile-and-run wrapper. Predicates (:mod:`repro.query.expressions`) are
shared with the storage layer's ``scan`` API.
"""

from repro.query.executor import Aggregate, QuerySpec, execute
from repro.query.expressions import (
    And,
    Not,
    Or,
    Predicate,
    Range,
    Rect,
    ScalarPredicate,
    from_scalar,
)
from repro.query.frontend import Q
from repro.query.plan import JoinClause

__all__ = [
    "Aggregate",
    "And",
    "JoinClause",
    "Not",
    "Or",
    "Predicate",
    "Q",
    "QuerySpec",
    "Range",
    "Rect",
    "ScalarPredicate",
    "execute",
    "from_scalar",
]
