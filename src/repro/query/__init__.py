"""Query layer: predicates, executor, and the fluent front end."""

from repro.query.executor import Aggregate, QuerySpec, execute
from repro.query.expressions import (
    And,
    Not,
    Or,
    Predicate,
    Range,
    Rect,
    ScalarPredicate,
    from_scalar,
)
from repro.query.frontend import Q

__all__ = [
    "Aggregate",
    "And",
    "Not",
    "Or",
    "Predicate",
    "Q",
    "QuerySpec",
    "Range",
    "Rect",
    "ScalarPredicate",
    "execute",
    "from_scalar",
]
