"""A small scan-based query executor.

The paper leaves the front end open ("it may be a SQL database, an array
oriented system, or any other interface"). This executor is the minimal
query-processing layer the examples and benchmarks need: projection,
predicate, order, limit — all pushed into the access methods — plus
client-side grouped aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import QueryError
from repro.query.expressions import Predicate

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.engine.table import Table

_AGGREGATES: dict[str, Callable[[list], Any]] = {
    "count": len,
    "sum": sum,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values) if values else None,
}


@dataclass(frozen=True)
class Aggregate:
    """One aggregate column: function over an input field."""

    func: str
    source: str | None = None  # None for count(*)
    alias: str | None = None

    def __post_init__(self):
        if self.func not in _AGGREGATES:
            raise QueryError(
                f"unknown aggregate {self.func!r}; "
                f"available: {sorted(_AGGREGATES)}"
            )
        if self.func != "count" and self.source is None:
            raise QueryError(f"aggregate {self.func} requires a source field")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return f"{self.func}({self.source or '*'})"


@dataclass
class QuerySpec:
    """A declarative query against one table."""

    table: str
    fieldlist: tuple[str, ...] | None = None
    predicate: Predicate | None = None
    order: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None
    group_by: tuple[str, ...] = ()
    aggregates: tuple[Aggregate, ...] = ()


def execute(table: "Table", spec: QuerySpec) -> list[tuple]:
    """Run ``spec`` against ``table`` and materialize the result."""
    if spec.aggregates:
        return _execute_aggregation(table, spec)
    rows = table.scan(
        fieldlist=list(spec.fieldlist) if spec.fieldlist else None,
        predicate=spec.predicate,
        order=list(spec.order) if spec.order else None,
    )
    if spec.limit is not None:
        out: list[tuple] = []
        for row in rows:
            out.append(row)
            if len(out) >= spec.limit:
                break
        return out
    return list(rows)


def _execute_aggregation(table: "Table", spec: QuerySpec) -> list[tuple]:
    needed: list[str] = list(spec.group_by)
    for agg in spec.aggregates:
        if agg.source is not None and agg.source not in needed:
            needed.append(agg.source)
    if not needed:
        # count(*) with no grouping: scan the narrowest thing available.
        needed = [table.scan_schema().names()[0]]
    rows = list(
        table.scan(fieldlist=needed, predicate=spec.predicate)
    )
    positions = {name: i for i, name in enumerate(needed)}
    group_idx = [positions[g] for g in spec.group_by]

    groups: dict[tuple, list[tuple]] = {}
    order: list[tuple] = []
    for row in rows:
        key = tuple(row[i] for i in group_idx)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    out: list[tuple] = []
    for key in order:
        members = groups[key]
        result: list[Any] = list(key)
        for agg in spec.aggregates:
            fn = _AGGREGATES[agg.func]
            if agg.source is None:
                result.append(len(members))
            else:
                values = [m[positions[agg.source]] for m in members]
                result.append(fn(values))
        out.append(tuple(result))
    if spec.order:
        names = list(spec.group_by) + [a.output_name for a in spec.aggregates]
        idx = {n: i for i, n in enumerate(names)}
        for name, ascending in reversed(spec.order):
            if name not in idx:
                raise QueryError(f"cannot order aggregate result by {name!r}")
            out.sort(key=lambda r: r[idx[name]], reverse=not ascending)
    if spec.limit is not None:
        out = out[: spec.limit]
    return out
