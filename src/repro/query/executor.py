"""A small scan-based query executor.

The paper leaves the front end open ("it may be a SQL database, an array
oriented system, or any other interface"). This executor is the minimal
query-processing layer the examples and benchmarks need: projection,
predicate, order, limit — all pushed into the access methods — plus
client-side grouped aggregation.

Execution is batch-at-a-time: plain queries push ``limit`` into
:meth:`Table.scan` (index probes and order-satisfied scans stop reading
early), and aggregations consume :meth:`Table.scan_batches` directly,
folding each batch into scalar accumulators (count/sum/min/max/avg states)
without materializing per-group member lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import QueryError
from repro.query.expressions import Predicate

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.engine.table import Table

_AGGREGATES: dict[str, Callable[[list], Any]] = {
    "count": len,
    "sum": sum,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values) if values else None,
}


@dataclass(frozen=True)
class Aggregate:
    """One aggregate column: function over an input field."""

    func: str
    source: str | None = None  # None for count(*)
    alias: str | None = None

    def __post_init__(self):
        if self.func not in _AGGREGATES:
            raise QueryError(
                f"unknown aggregate {self.func!r}; "
                f"available: {sorted(_AGGREGATES)}"
            )
        if self.func != "count" and self.source is None:
            raise QueryError(f"aggregate {self.func} requires a source field")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return f"{self.func}({self.source or '*'})"


@dataclass
class QuerySpec:
    """A declarative query against one table."""

    table: str
    fieldlist: tuple[str, ...] | None = None
    predicate: Predicate | None = None
    order: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None
    group_by: tuple[str, ...] = ()
    aggregates: tuple[Aggregate, ...] = ()


def execute(table: "Table", spec: QuerySpec) -> list[tuple]:
    """Run ``spec`` against ``table`` and materialize the result."""
    if spec.aggregates:
        return _execute_aggregation(table, spec)
    rows = table.scan(
        fieldlist=list(spec.fieldlist) if spec.fieldlist else None,
        predicate=spec.predicate,
        order=list(spec.order) if spec.order else None,
        limit=spec.limit,
    )
    return list(rows)


#: min/max slots start at this sentinel (not None: a None *value* must flow
#: into comparisons and fail the same way builtin min()/max() would).
_UNSET = object()


class _AggState:
    """Scalar accumulator states for one group (no member-row buffering)."""

    __slots__ = ("count", "sums", "mins", "maxs")

    def __init__(self, n_sums: int, n_minmax: int):
        self.count = 0
        self.sums = [0] * n_sums
        self.mins: list[Any] = [_UNSET] * n_minmax
        self.maxs: list[Any] = [_UNSET] * n_minmax


def _execute_aggregation(table: "Table", spec: QuerySpec) -> list[tuple]:
    needed: list[str] = list(spec.group_by)
    for agg in spec.aggregates:
        if agg.source is not None and agg.source not in needed:
            needed.append(agg.source)
    if not needed:
        # count(*) with no grouping: scan the narrowest thing available.
        needed = [table.scan_schema().names()[0]]
    positions = {name: i for i, name in enumerate(needed)}
    n_group = len(spec.group_by)

    # Aggregates fold into scalar states: one shared count per group plus a
    # running sum / min / max slot per (func, source) pair. avg = sum/count
    # of its own source's non-degenerate slot.
    sum_fields: list[str] = []
    minmax_specs: list[tuple[str, str]] = []  # (func, source)
    for agg in spec.aggregates:
        if agg.func in ("sum", "avg") and agg.source not in sum_fields:
            sum_fields.append(agg.source)
        if agg.func in ("min", "max"):
            minmax_specs.append((agg.func, agg.source))
    sum_idx = [positions[f] for f in sum_fields]
    minmax_idx = [positions[src] for _, src in minmax_specs]
    states: dict[tuple, _AggState] = {}

    for batch in table.scan_batches(
        fieldlist=needed, predicate=spec.predicate
    ):
        for row in batch:
            key = row[:n_group]
            state = states.get(key)
            if state is None:
                state = states[key] = _AggState(
                    len(sum_fields), len(minmax_specs)
                )
            state.count += 1
            for slot, i in enumerate(sum_idx):
                state.sums[slot] += row[i]
            for slot, i in enumerate(minmax_idx):
                value = row[i]
                func, _ = minmax_specs[slot]
                if func == "min":
                    if state.mins[slot] is _UNSET or value < state.mins[slot]:
                        state.mins[slot] = value
                else:
                    if state.maxs[slot] is _UNSET or value > state.maxs[slot]:
                        state.maxs[slot] = value

    out: list[tuple] = []
    for key, state in states.items():  # dicts preserve first-seen order
        result: list[Any] = list(key)
        for agg in spec.aggregates:
            if agg.source is None:
                result.append(state.count)
            elif agg.func == "count":
                result.append(state.count)
            elif agg.func == "sum":
                result.append(state.sums[sum_fields.index(agg.source)])
            elif agg.func == "avg":
                total = state.sums[sum_fields.index(agg.source)]
                result.append(total / state.count if state.count else None)
            elif agg.func == "min":
                result.append(
                    state.mins[minmax_specs.index(("min", agg.source))]
                )
            else:  # max
                result.append(
                    state.maxs[minmax_specs.index(("max", agg.source))]
                )
        out.append(tuple(result))
    if spec.order:
        names = list(spec.group_by) + [a.output_name for a in spec.aggregates]
        idx = {n: i for i, n in enumerate(names)}
        for name, ascending in reversed(spec.order):
            if name not in idx:
                raise QueryError(f"cannot order aggregate result by {name!r}")
            out.sort(key=lambda r: r[idx[name]], reverse=not ascending)
    if spec.limit is not None:
        out = out[: spec.limit]
    return out
