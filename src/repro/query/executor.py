"""Declarative query specs and the compile-and-run entry point.

This module is the front door of the query compiler. A :class:`QuerySpec`
is the declarative description a :class:`~repro.query.frontend.Q` builder
accumulates — projection, predicate, joins, grouping, order, limit — and
:func:`execute` compiles it through the planner
(:mod:`repro.query.planner`: logical plan, pushdown rewrites, cost-based
access paths, join ordering) into the batch operators of
:mod:`repro.query.operators` and materializes the result.

Historically this module *was* the executor (a single-table scan wrapper
plus a hand-rolled aggregation loop); the aggregation machinery now lives
in :class:`repro.query.operators.GroupByOp` and ``execute`` stays only as
the stable, API-compatible entry point.

Aggregate null semantics follow SQL: ``count(field)`` counts non-``None``
values while ``count(*)`` counts rows; ``sum``/``avg``/``min``/``max``
skip ``None`` and yield ``None`` when every input value is ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import QueryError
from repro.query.expressions import Predicate
from repro.query.plan import JoinClause

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.engine.table import Table

_AGGREGATE_FUNCS = ("avg", "count", "max", "min", "sum")


@dataclass(frozen=True)
class Aggregate:
    """One aggregate column: function over an input field."""

    func: str
    source: str | None = None  # None for count(*)
    alias: str | None = None

    def __post_init__(self):
        if self.func not in _AGGREGATE_FUNCS:
            raise QueryError(
                f"unknown aggregate {self.func!r}; "
                f"available: {sorted(_AGGREGATE_FUNCS)}"
            )
        if self.func != "count" and self.source is None:
            raise QueryError(f"aggregate {self.func} requires a source field")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return f"{self.func}({self.source or '*'})"


@dataclass
class QuerySpec:
    """A declarative query: one base table plus optional equi-joins."""

    table: str
    fieldlist: tuple[str, ...] | None = None
    predicate: Predicate | None = None
    order: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None
    group_by: tuple[str, ...] = ()
    aggregates: tuple[Aggregate, ...] = ()
    joins: tuple[JoinClause, ...] = field(default_factory=tuple)


def execute(table: "Table", spec: QuerySpec) -> list[tuple]:
    """Compile ``spec`` against base ``table``, run it, materialize rows.

    Join clauses are resolved against ``table``'s owning store. This is a
    thin wrapper over :func:`repro.query.planner.compile_query`; use the
    planner directly to inspect or re-run the operator tree.
    """
    from repro.query.planner import compile_query

    return compile_query(table, spec).rows()
