"""Query predicates for the access-method API.

``scan(table, [fieldlist, predicate, order])`` (paper §4.1) takes an optional
*range predicate*. Predicates here are deliberately simple — conjunctions of
per-field ranges plus arbitrary residual conditions — because that is what
the storage layer can exploit: per-field ranges prune grid cells via the cell
directory and drive index range scans; the residual is applied per record.

A predicate can be built three ways:

* :class:`Range` / :class:`Rect` constructors (used by the geospatial
  case study: "queries retrieving square regions");
* :func:`from_scalar` — converting a parsed algebra condition such as
  ``r.lat >= 42.1 and r.lat < 42.3``;
* any object implementing the small :class:`Predicate` protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.algebra import ast
from repro.algebra.transforms import eval_scalar
from repro.errors import QueryError

NEG_INF = -math.inf
POS_INF = math.inf


class Predicate:
    """Protocol: record filter + prunable per-field ranges."""

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        raise NotImplementedError

    def ranges(self) -> dict[str, tuple[float, float]]:
        """Per-field inclusive [lo, hi] bounds implied by this predicate.

        Only bounds that are *necessary conditions* may be returned (pruning
        with them must never drop a matching record). Fields without usable
        bounds are simply absent.
        """
        return {}

    def fields_used(self) -> set[str]:
        return set(self.ranges())


@dataclass(frozen=True)
class Range(Predicate):
    """``lo <= field <= hi`` (either bound may be infinite)."""

    field: str
    lo: float = NEG_INF
    hi: float = POS_INF

    def __post_init__(self):
        if self.lo > self.hi:
            raise QueryError(
                f"empty range for {self.field}: [{self.lo}, {self.hi}]"
            )

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        try:
            value = record[positions[self.field]]
        except KeyError:
            raise QueryError(f"unknown predicate field {self.field!r}") from None
        return self.lo <= value <= self.hi

    def ranges(self) -> dict[str, tuple[float, float]]:
        return {self.field: (self.lo, self.hi)}

    def fields_used(self) -> set[str]:
        return {self.field}


class Rect(Predicate):
    """A conjunction of ranges — the case study's spatial rectangle."""

    def __init__(self, bounds: Mapping[str, tuple[float, float]]):
        if not bounds:
            raise QueryError("a rectangle needs at least one bounded field")
        self._ranges = {
            name: Range(name, lo, hi) for name, (lo, hi) in bounds.items()
        }

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        return all(r.matches(record, positions) for r in self._ranges.values())

    def ranges(self) -> dict[str, tuple[float, float]]:
        return {name: (r.lo, r.hi) for name, r in self._ranges.items()}

    def fields_used(self) -> set[str]:
        return set(self._ranges)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}∈[{r.lo:g},{r.hi:g}]" for name, r in self._ranges.items()
        )
        return f"Rect({inner})"


class And(Predicate):
    """Conjunction of arbitrary predicates; ranges intersect."""

    def __init__(self, *parts: Predicate):
        if not parts:
            raise QueryError("And requires at least one predicate")
        self.parts = parts

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        return all(p.matches(record, positions) for p in self.parts)

    def ranges(self) -> dict[str, tuple[float, float]]:
        merged: dict[str, tuple[float, float]] = {}
        for part in self.parts:
            for name, (lo, hi) in part.ranges().items():
                if name in merged:
                    old_lo, old_hi = merged[name]
                    merged[name] = (max(old_lo, lo), min(old_hi, hi))
                else:
                    merged[name] = (lo, hi)
        return merged

    def fields_used(self) -> set[str]:
        used: set[str] = set()
        for part in self.parts:
            used |= part.fields_used()
        return used


class Or(Predicate):
    """Disjunction; per-field ranges are the union's bounding interval."""

    def __init__(self, *parts: Predicate):
        if len(parts) < 2:
            raise QueryError("Or requires at least two predicates")
        self.parts = parts

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        return any(p.matches(record, positions) for p in self.parts)

    def ranges(self) -> dict[str, tuple[float, float]]:
        # Only fields bounded in *every* branch yield a usable range.
        all_ranges = [p.ranges() for p in self.parts]
        common = set(all_ranges[0])
        for r in all_ranges[1:]:
            common &= set(r)
        out: dict[str, tuple[float, float]] = {}
        for name in common:
            out[name] = (
                min(r[name][0] for r in all_ranges),
                max(r[name][1] for r in all_ranges),
            )
        return out

    def fields_used(self) -> set[str]:
        used: set[str] = set()
        for part in self.parts:
            used |= part.fields_used()
        return used


class Not(Predicate):
    """Negation; contributes no prunable ranges."""

    def __init__(self, part: Predicate):
        self.part = part

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        return not self.part.matches(record, positions)

    def fields_used(self) -> set[str]:
        return self.part.fields_used()


class ScalarPredicate(Predicate):
    """Wrap an algebra scalar condition as a predicate.

    Prunable ranges are extracted from top-level conjunctions of comparisons
    between a field and a constant; everything else is evaluated per record.
    """

    def __init__(self, condition: ast.Scalar):
        self.condition = condition
        self._ranges = _extract_ranges(condition)

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        return bool(eval_scalar(self.condition, record, dict(positions)))

    def ranges(self) -> dict[str, tuple[float, float]]:
        return dict(self._ranges)

    def fields_used(self) -> set[str]:
        return self.condition.fields_used()

    def __repr__(self) -> str:
        return f"ScalarPredicate({self.condition.to_text()})"


def from_scalar(condition: ast.Scalar) -> ScalarPredicate:
    """Convert a parsed algebra condition into a predicate."""
    return ScalarPredicate(condition)


def _extract_ranges(condition: ast.Scalar) -> dict[str, tuple[float, float]]:
    out: dict[str, tuple[float, float]] = {}
    for comparison in _conjuncts(condition):
        bound = _bound_of(comparison)
        if bound is None:
            continue
        name, lo, hi = bound
        if name in out:
            old_lo, old_hi = out[name]
            out[name] = (max(old_lo, lo), min(old_hi, hi))
        else:
            out[name] = (lo, hi)
    return out


def _conjuncts(condition: ast.Scalar) -> list[ast.Scalar]:
    if isinstance(condition, ast.Logical) and condition.op == "and":
        parts: list[ast.Scalar] = []
        for operand in condition.operands:
            parts.extend(_conjuncts(operand))
        return parts
    return [condition]


def _bound_of(
    comparison: ast.Scalar,
) -> tuple[str, float, float] | None:
    if not isinstance(comparison, ast.Comparison):
        return None
    left, right, op = comparison.left, comparison.right, comparison.op
    if isinstance(left, ast.Const) and isinstance(right, ast.FieldRef):
        # Normalize "c op field" to "field op' c".
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
        left, right, op = right, left, flipped[op]
    if not (isinstance(left, ast.FieldRef) and isinstance(right, ast.Const)):
        return None
    if not isinstance(right.value, (int, float)) or isinstance(right.value, bool):
        return None
    value = float(right.value)
    if op == "=":
        return left.name, value, value
    if op == "<":
        return left.name, NEG_INF, value
    if op == "<=":
        return left.name, NEG_INF, value
    if op == ">":
        return left.name, value, POS_INF
    if op == ">=":
        return left.name, value, POS_INF
    return None  # "!=" prunes nothing
