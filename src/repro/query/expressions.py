"""Query predicates for the access-method API.

``scan(table, [fieldlist, predicate, order])`` (paper §4.1) takes an optional
*range predicate*. Predicates here are deliberately simple — conjunctions of
per-field ranges plus arbitrary residual conditions — because that is what
the storage layer can exploit: per-field ranges prune grid cells via the cell
directory and drive index range scans; the residual is applied per record.

A predicate can be built three ways:

* :class:`Range` / :class:`Rect` constructors (used by the geospatial
  case study: "queries retrieving square regions");
* :func:`from_scalar` — converting a parsed algebra condition such as
  ``r.lat >= 42.1 and r.lat < 42.3``;
* any object implementing the small :class:`Predicate` protocol.

Batch execution contract (the scan pipeline's hot path):

* :meth:`Predicate.compile` turns the predicate into a single Python
  closure ``record -> truthy`` built **once per scan**: ranges become
  chained comparisons (``lo <= r[i] <= hi``), conjunctions/disjunctions
  are compiled into one generated expression, and scalar residuals are
  translated from the algebra AST into Python source. The closure must
  agree with :meth:`Predicate.matches` on every record.
* :meth:`Predicate.filter_batch` evaluates the predicate against a batch's
  ``field -> value vector`` mapping and returns a selection mask (one
  truthy/falsy entry per row). Range-shaped predicates produce the mask
  with per-column list comprehensions — no per-row method dispatch.
* :meth:`Predicate.filter_vector` is the fully vectorized mode: whole-column
  comparisons over typed buffers produce a boolean selection bitmap in a
  handful of C-level calls, with And/Or/Not as bitwise ops. It returns
  ``None`` whenever the predicate — or a column it touches — can't
  vectorize *exactly* (non-numeric fields, division/modulo whose per-row
  errors must surface, int/float casts that would round); callers then fall
  back to the closure paths above, so answers never change.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro import vector
from repro.algebra import ast
from repro.algebra.transforms import eval_scalar
from repro.errors import QueryError

NEG_INF = -math.inf
POS_INF = math.inf


class Predicate:
    """Protocol: record filter + prunable per-field ranges."""

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        raise NotImplementedError

    def ranges(self) -> dict[str, tuple[float, float]]:
        """Per-field inclusive [lo, hi] bounds implied by this predicate.

        Only bounds that are *necessary conditions* may be returned (pruning
        with them must never drop a matching record). Fields without usable
        bounds are simply absent.
        """
        return {}

    def fields_used(self) -> set[str]:
        return set(self.ranges())

    def compile(
        self, positions: Mapping[str, int]
    ) -> Callable[[Sequence[Any]], Any]:
        """A one-argument closure equivalent to ``matches`` (built once).

        ``positions`` maps field names to tuple positions of the records
        the closure will see. The default binds :meth:`matches`; subclasses
        override with specialized closures (chained comparisons, generated
        conjunction source) that avoid per-record dict lookups and method
        dispatch.
        """
        matches = self.matches
        frozen = dict(positions)
        return lambda record: matches(record, frozen)

    def filter_batch(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ) -> list:
        """Selection mask for one batch: a truthy/falsy entry per row.

        ``columns`` maps every available field to its value vector (all
        vectors ``n_rows`` long). The generic implementation zips only the
        :meth:`fields_used` columns through the compiled closure, so
        subclasses with accurate ``fields_used`` get batch evaluation for
        free; range-shaped predicates override with per-column masks.
        """
        used = sorted(self.fields_used())
        fn = self.compile({name: i for i, name in enumerate(used)})
        if not used:
            verdict = bool(fn(()))
            return [verdict] * n_rows
        vectors = [columns[name] for name in used]
        return [fn(record) for record in zip(*vectors)]

    def filter_vector(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ):
        """Boolean ndarray selection bitmap, or ``None`` to fall back.

        Must agree exactly with :meth:`filter_batch` on every batch it
        accepts; the default declines so arbitrary user predicates keep
        their per-row semantics (including evaluation-order side effects).
        """
        return None


@dataclass(frozen=True)
class Range(Predicate):
    """``lo <= field <= hi`` (either bound may be infinite)."""

    field: str
    lo: float = NEG_INF
    hi: float = POS_INF

    def __post_init__(self):
        if self.lo > self.hi:
            raise QueryError(
                f"empty range for {self.field}: [{self.lo}, {self.hi}]"
            )

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        try:
            value = record[positions[self.field]]
        except KeyError:
            raise QueryError(f"unknown predicate field {self.field!r}") from None
        return self.lo <= value <= self.hi

    def ranges(self) -> dict[str, tuple[float, float]]:
        return {self.field: (self.lo, self.hi)}

    def fields_used(self) -> set[str]:
        return {self.field}

    def compile(
        self, positions: Mapping[str, int]
    ) -> Callable[[Sequence[Any]], Any]:
        try:
            i = positions[self.field]
        except KeyError:
            raise QueryError(f"unknown predicate field {self.field!r}") from None
        lo, hi = self.lo, self.hi
        if lo == NEG_INF:
            return lambda record: record[i] <= hi
        if hi == POS_INF:
            return lambda record: lo <= record[i]
        return lambda record: lo <= record[i] <= hi

    def filter_batch(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ) -> list:
        try:
            column = columns[self.field]
        except KeyError:
            raise QueryError(f"unknown predicate field {self.field!r}") from None
        lo, hi = self.lo, self.hi
        if lo == NEG_INF:
            return [value <= hi for value in column]
        if hi == POS_INF:
            return [lo <= value for value in column]
        return [lo <= value <= hi for value in column]

    def filter_vector(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ):
        arr = vector.as_ndarray(columns.get(self.field))
        if arr is None:
            return None
        lo, hi = self.lo, self.hi
        if arr.dtype.kind == "i":
            # Exact integer bounds: int64 vs float64 comparisons round
            # above 2**53, so float bounds on int columns become the
            # equivalent integer comparison instead of a cast.
            if lo != NEG_INF and not isinstance(lo, int):
                lo = math.ceil(lo)
            if hi != POS_INF and not isinstance(hi, int):
                hi = math.floor(hi)
            if lo != NEG_INF and hi != POS_INF and lo > hi:
                np = vector.numpy_module()
                return np.zeros(arr.shape, dtype=bool)
        try:
            if lo == NEG_INF:
                return arr <= hi
            if hi == POS_INF:
                return arr >= lo
            return (arr >= lo) & (arr <= hi)
        except (TypeError, OverflowError):
            return None


class Rect(Predicate):
    """A conjunction of ranges — the case study's spatial rectangle."""

    def __init__(self, bounds: Mapping[str, tuple[float, float]]):
        if not bounds:
            raise QueryError("a rectangle needs at least one bounded field")
        self._ranges = {
            name: Range(name, lo, hi) for name, (lo, hi) in bounds.items()
        }

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        return all(r.matches(record, positions) for r in self._ranges.values())

    def ranges(self) -> dict[str, tuple[float, float]]:
        return {name: (r.lo, r.hi) for name, r in self._ranges.items()}

    def fields_used(self) -> set[str]:
        return set(self._ranges)

    def compile(
        self, positions: Mapping[str, int]
    ) -> Callable[[Sequence[Any]], Any]:
        return _compile_junction(
            list(self._ranges.values()), positions, " and "
        )

    def filter_batch(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ) -> list:
        return _mask_junction(
            list(self._ranges.values()), columns, n_rows, all_of=True
        )

    def filter_vector(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ):
        return _vector_junction(
            list(self._ranges.values()), columns, n_rows, all_of=True
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}∈[{r.lo:g},{r.hi:g}]" for name, r in self._ranges.items()
        )
        return f"Rect({inner})"


class And(Predicate):
    """Conjunction of arbitrary predicates; ranges intersect."""

    def __init__(self, *parts: Predicate):
        if not parts:
            raise QueryError("And requires at least one predicate")
        self.parts = parts

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        return all(p.matches(record, positions) for p in self.parts)

    def ranges(self) -> dict[str, tuple[float, float]]:
        merged: dict[str, tuple[float, float]] = {}
        for part in self.parts:
            for name, (lo, hi) in part.ranges().items():
                if name in merged:
                    old_lo, old_hi = merged[name]
                    merged[name] = (max(old_lo, lo), min(old_hi, hi))
                else:
                    merged[name] = (lo, hi)
        return merged

    def fields_used(self) -> set[str]:
        used: set[str] = set()
        for part in self.parts:
            used |= part.fields_used()
        return used

    def compile(
        self, positions: Mapping[str, int]
    ) -> Callable[[Sequence[Any]], Any]:
        return _compile_junction(list(self.parts), positions, " and ")

    def filter_batch(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ) -> list:
        return _mask_junction(list(self.parts), columns, n_rows, all_of=True)

    def filter_vector(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ):
        return _vector_junction(list(self.parts), columns, n_rows, all_of=True)


class Or(Predicate):
    """Disjunction; per-field ranges are the union's bounding interval."""

    def __init__(self, *parts: Predicate):
        if len(parts) < 2:
            raise QueryError("Or requires at least two predicates")
        self.parts = parts

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        return any(p.matches(record, positions) for p in self.parts)

    def ranges(self) -> dict[str, tuple[float, float]]:
        # Only fields bounded in *every* branch yield a usable range.
        all_ranges = [p.ranges() for p in self.parts]
        common = set(all_ranges[0])
        for r in all_ranges[1:]:
            common &= set(r)
        out: dict[str, tuple[float, float]] = {}
        for name in common:
            out[name] = (
                min(r[name][0] for r in all_ranges),
                max(r[name][1] for r in all_ranges),
            )
        return out

    def fields_used(self) -> set[str]:
        used: set[str] = set()
        for part in self.parts:
            used |= part.fields_used()
        return used

    def compile(
        self, positions: Mapping[str, int]
    ) -> Callable[[Sequence[Any]], Any]:
        return _compile_junction(list(self.parts), positions, " or ")

    def filter_batch(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ) -> list:
        return _mask_junction(list(self.parts), columns, n_rows, all_of=False)

    def filter_vector(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ):
        return _vector_junction(
            list(self.parts), columns, n_rows, all_of=False
        )


class Not(Predicate):
    """Negation; contributes no prunable ranges."""

    def __init__(self, part: Predicate):
        self.part = part

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        return not self.part.matches(record, positions)

    def fields_used(self) -> set[str]:
        return self.part.fields_used()

    def compile(
        self, positions: Mapping[str, int]
    ) -> Callable[[Sequence[Any]], Any]:
        inner = self.part.compile(positions)
        return lambda record: not inner(record)

    def filter_batch(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ) -> list:
        return [not kept for kept in self.part.filter_batch(columns, n_rows)]

    def filter_vector(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ):
        inner = self.part.filter_vector(columns, n_rows)
        return None if inner is None else ~inner


class ScalarPredicate(Predicate):
    """Wrap an algebra scalar condition as a predicate.

    Prunable ranges are extracted from top-level conjunctions of comparisons
    between a field and a constant; everything else is evaluated per record.
    """

    def __init__(self, condition: ast.Scalar):
        self.condition = condition
        self._ranges = _extract_ranges(condition)

    def matches(self, record: Sequence[Any], positions: Mapping[str, int]) -> bool:
        return bool(eval_scalar(self.condition, record, dict(positions)))

    def ranges(self) -> dict[str, tuple[float, float]]:
        return dict(self._ranges)

    def fields_used(self) -> set[str]:
        return self.condition.fields_used()

    def compile(
        self, positions: Mapping[str, int]
    ) -> Callable[[Sequence[Any]], Any]:
        """Translate the condition AST into one Python closure.

        Comparisons, arithmetic, and logical connectives compile to native
        Python source (constants bound by name); anything the translator
        does not recognize falls back to an ``eval_scalar`` closure.
        """
        bindings: dict[str, Any] = {}
        source = _scalar_source(self.condition, positions, bindings)
        if source is None:
            condition = self.condition
            frozen = dict(positions)
            return lambda record: eval_scalar(condition, record, frozen)
        namespace = {"__builtins__": {}}
        namespace.update(bindings)
        return eval(  # noqa: S307 - source built from our own AST
            f"lambda record: {source}", namespace
        )

    def filter_vector(
        self, columns: Mapping[str, Sequence[Any]], n_rows: int
    ):
        np = vector.numpy_module()
        if np is None or not vector.numpy_enabled():
            return None
        try:
            out = _eval_vector(self.condition, columns, np)
        except (TypeError, OverflowError):
            return None
        if (
            isinstance(out, np.ndarray)
            and out.dtype == bool
            and len(out) == n_rows
        ):
            return out
        return None

    def __repr__(self) -> str:
        return f"ScalarPredicate({self.condition.to_text()})"


def from_scalar(condition: ast.Scalar) -> ScalarPredicate:
    """Convert a parsed algebra condition into a predicate."""
    return ScalarPredicate(condition)


# ---------------------------------------------------------------------------
# predicate compilation helpers
# ---------------------------------------------------------------------------

_COMPARISON_OPS = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ARITH_OPS = {"+": "+", "-": "-", "*": "*", "/": "/", "%": "%"}


def _scalar_source(
    expr: ast.Scalar, positions: Mapping[str, int], bindings: dict[str, Any]
) -> str | None:
    """Python source for a scalar AST over ``record``, or None if some node
    has no translation (the caller then falls back to ``eval_scalar``).

    Constants are bound by generated name in ``bindings`` rather than
    embedded as literals, so arbitrary values (strings, infinities) work.
    """
    if isinstance(expr, ast.Const):
        name = f"_c{len(bindings)}"
        bindings[name] = expr.value
        return name
    if isinstance(expr, ast.FieldRef):
        if expr.name not in positions:
            return None
        return f"record[{positions[expr.name]}]"
    if isinstance(expr, ast.Comparison):
        op = _COMPARISON_OPS.get(expr.op)
        left = _scalar_source(expr.left, positions, bindings)
        right = _scalar_source(expr.right, positions, bindings)
        if op is None or left is None or right is None:
            return None
        return f"({left} {op} {right})"
    if isinstance(expr, ast.Arith):
        op = _ARITH_OPS.get(expr.op)
        left = _scalar_source(expr.left, positions, bindings)
        right = _scalar_source(expr.right, positions, bindings)
        if op is None or left is None or right is None:
            return None
        return f"({left} {op} {right})"
    if isinstance(expr, ast.Logical):
        parts = [
            _scalar_source(operand, positions, bindings)
            for operand in expr.operands
        ]
        if any(part is None for part in parts):
            return None
        if expr.op == "not":
            return f"(not {parts[0]})"
        if expr.op in ("and", "or"):
            return "(" + f" {expr.op} ".join(parts) + ")"
        return None
    return None


def _compile_junction(
    parts: Sequence[Predicate], positions: Mapping[str, int], joiner: str
) -> Callable[[Sequence[Any]], Any]:
    """One closure combining ``parts`` with ``and``/``or`` short-circuiting.

    Each part compiles once; the combination is generated source calling
    the bound sub-closures, so an N-way conjunction is a single frame with
    native short-circuit evaluation rather than an ``all()`` of dispatches.
    """
    if len(parts) == 1:
        return parts[0].compile(positions)
    namespace: dict[str, Any] = {"__builtins__": {}}
    terms = []
    for i, part in enumerate(parts):
        if isinstance(part, Range) and part.field in positions:
            # Inline ranges as chained comparisons instead of calls.
            name_lo, name_hi = f"_lo{i}", f"_hi{i}"
            position = positions[part.field]
            if part.lo == NEG_INF:
                namespace[name_hi] = part.hi
                terms.append(f"(record[{position}] <= {name_hi})")
            elif part.hi == POS_INF:
                namespace[name_lo] = part.lo
                terms.append(f"({name_lo} <= record[{position}])")
            else:
                namespace[name_lo] = part.lo
                namespace[name_hi] = part.hi
                terms.append(
                    f"({name_lo} <= record[{position}] <= {name_hi})"
                )
        else:
            namespace[f"_p{i}"] = part.compile(positions)
            terms.append(f"_p{i}(record)")
    return eval(  # noqa: S307 - source assembled from fixed templates
        f"lambda record: {joiner.join(terms)}", namespace
    )


def _mask_junction(
    parts: Sequence[Predicate],
    columns: Mapping[str, Sequence[Any]],
    n_rows: int,
    all_of: bool,
) -> list:
    """Combine per-part selection masks column-wise (And/Rect/Or)."""
    mask = parts[0].filter_batch(columns, n_rows)
    for part in parts[1:]:
        other = part.filter_batch(columns, n_rows)
        if all_of:
            mask = [a and b for a, b in zip(mask, other)]
        else:
            mask = [a or b for a, b in zip(mask, other)]
    return mask


def _vector_junction(
    parts: Sequence[Predicate],
    columns: Mapping[str, Sequence[Any]],
    n_rows: int,
    all_of: bool,
):
    """Combine per-part selection bitmaps bitwise (And/Rect/Or).

    All-or-nothing: one non-vectorizable part sends the whole junction to
    the closure fallback, keeping short-circuit evaluation-order semantics
    intact for mixed predicates.
    """
    mask = None
    for part in parts:
        other = part.filter_vector(columns, n_rows)
        if other is None:
            return None
        if mask is None:
            mask = other
        elif all_of:
            mask = mask & other
        else:
            mask = mask | other
    return mask


# Vectorized scalar-AST evaluation. Division and modulo are deliberately
# absent: their per-row errors (ZeroDivisionError) must surface exactly
# where the row-at-a-time closure would raise them.
_VECTOR_COMPARISON_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}
_VECTOR_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}

#: Largest magnitude allowed through vectorized int arithmetic/casts.
#: Int sums/products beyond this could wrap in int64 (or round through
#: float64) where python ints would not — those expressions fall back.
_INT_SAFE_BOUND = 2**62
_FLOAT_EXACT_INT = 2**53


def _int_bound(value, np) -> int | None:
    """Conservative |max| of an int operand, or None when not int-like."""
    if isinstance(value, np.ndarray):
        if value.dtype.kind != "i":
            return None
        if value.size == 0:
            return 0
        return max(abs(int(value.min())), abs(int(value.max())))
    if isinstance(value, int) and not isinstance(value, bool):
        return abs(value)
    return None


def _eval_vector(expr: ast.Scalar, columns: Mapping[str, Sequence[Any]], np):
    """Evaluate a scalar AST column-wise; ndarray/scalar result, or None
    when any node would change semantics under vectorization."""
    if isinstance(expr, ast.Const):
        value = expr.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return value
    if isinstance(expr, ast.FieldRef):
        return vector.as_ndarray(columns.get(expr.name))
    if isinstance(expr, ast.Comparison):
        op = _VECTOR_COMPARISON_OPS.get(expr.op)
        left = _eval_vector(expr.left, columns, np)
        right = _eval_vector(expr.right, columns, np)
        if op is None or left is None or right is None:
            return None
        return _compare_vector(expr.op, op, left, right, np)
    if isinstance(expr, ast.Arith):
        op = _VECTOR_ARITH_OPS.get(expr.op)
        left = _eval_vector(expr.left, columns, np)
        right = _eval_vector(expr.right, columns, np)
        if op is None or left is None or right is None:
            return None
        left_bound = _int_bound(left, np)
        right_bound = _int_bound(right, np)
        if left_bound is not None and right_bound is not None:
            # All-int arithmetic: guard int64 wraparound. (Anything
            # involving a float converts through float64 exactly as the
            # row-at-a-time closure does, so no guard is needed there.)
            if expr.op == "*":
                if left_bound * right_bound >= _INT_SAFE_BOUND:
                    return None
            elif left_bound + right_bound >= _INT_SAFE_BOUND:
                return None
        elif (left_bound or right_bound or 0) > _FLOAT_EXACT_INT:
            # Int operand wider than float64's exact range meeting a
            # float operand: python would compute exactly, float64 won't.
            return None
        if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
            return None
        return op(left, right)
    if isinstance(expr, ast.Logical):
        operands = [
            _eval_vector(operand, columns, np) for operand in expr.operands
        ]
        if any(
            not isinstance(o, np.ndarray) or o.dtype != bool for o in operands
        ):
            return None
        if expr.op == "not":
            return ~operands[0]
        if expr.op == "and":
            out = operands[0]
            for o in operands[1:]:
                out = out & o
            return out
        if expr.op == "or":
            out = operands[0]
            for o in operands[1:]:
                out = out | o
            return out
        return None
    return None


def _compare_vector(op_name: str, op, left, right, np):
    """Whole-column comparison with int/float exactness guards."""
    left_arr = isinstance(left, np.ndarray)
    right_arr = isinstance(right, np.ndarray)
    if not left_arr and not right_arr:
        return None
    if left_arr and right_arr:
        if left.dtype.kind != right.dtype.kind:
            ints = left if left.dtype.kind == "i" else right
            if _int_bound(ints, np) > _FLOAT_EXACT_INT:
                return None
        return op(left, right)
    # Normalize to array-op-scalar.
    if not left_arr:
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
        return _compare_vector(
            flipped[op_name],
            _VECTOR_COMPARISON_OPS[flipped[op_name]],
            right,
            left,
            np,
        )
    arr, value = left, right
    if arr.dtype.kind == "i" and isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            # Orderings against ±inf/nan survive the int→float cast.
            return op(arr, value)
        if value != int(value):
            # Exact integer rewrite of a fractional bound.
            floor = math.floor(value)
            if op_name == "=":
                return np.zeros(arr.shape, dtype=bool)
            if op_name == "!=":
                return np.ones(arr.shape, dtype=bool)
            if op_name in ("<", "<="):
                return arr <= floor
            return arr >= floor + 1
        value = int(value)
    if arr.dtype.kind == "f" and isinstance(value, int):
        if abs(value) > _FLOAT_EXACT_INT:
            return None
        value = float(value)
    return op(arr, value)


def _extract_ranges(condition: ast.Scalar) -> dict[str, tuple[float, float]]:
    out: dict[str, tuple[float, float]] = {}
    for comparison in _conjuncts(condition):
        bound = _bound_of(comparison)
        if bound is None:
            continue
        name, lo, hi = bound
        if name in out:
            old_lo, old_hi = out[name]
            out[name] = (max(old_lo, lo), min(old_hi, hi))
        else:
            out[name] = (lo, hi)
    return out


def _conjuncts(condition: ast.Scalar) -> list[ast.Scalar]:
    if isinstance(condition, ast.Logical) and condition.op == "and":
        parts: list[ast.Scalar] = []
        for operand in condition.operands:
            parts.extend(_conjuncts(operand))
        return parts
    return [condition]


def _bound_of(
    comparison: ast.Scalar,
) -> tuple[str, float, float] | None:
    if not isinstance(comparison, ast.Comparison):
        return None
    left, right, op = comparison.left, comparison.right, comparison.op
    if isinstance(left, ast.Const) and isinstance(right, ast.FieldRef):
        # Normalize "c op field" to "field op' c".
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
        left, right, op = right, left, flipped[op]
    if not (isinstance(left, ast.FieldRef) and isinstance(right, ast.Const)):
        return None
    if not isinstance(right.value, (int, float)) or isinstance(right.value, bool):
        return None
    value = float(right.value)
    if op == "=":
        return left.name, value, value
    if op == "<":
        return left.name, NEG_INF, value
    if op == "<=":
        return left.name, NEG_INF, value
    if op == ">":
        return left.name, value, POS_INF
    if op == ">=":
        return left.name, value, POS_INF
    return None  # "!=" prunes nothing
