"""Fluent query front end.

A tiny, chainable interface standing in for the paper's "Traditional
Database Front End" box (Figure 1)::

    from repro.query import Q

    rows = (
        Q(store, "Traces")
        .select("lat", "lon")
        .where(Rect({"lat": (lo, hi), "lon": (lo2, hi2)}))
        .order_by("t")
        .limit(100)
        .run()
    )

    per_taxi = Q(store, "Traces").group_by("id").agg(count="*").run()

    enriched = (
        Q(store, "Sales")
        .join("Customers", on="customerid")
        .group_by("region")
        .agg(revenue="sum:price")
        .run()
    )

``run()`` compiles the accumulated :class:`QuerySpec` through the query
planner (logical plan, pushdown rewrites, cost-based access paths, hash
joins — see :mod:`repro.query.planner`); ``explain()`` returns the chosen
physical plan tree with per-operator cardinality and cost estimates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import QueryError
from repro.query.executor import Aggregate, QuerySpec, execute
from repro.query.expressions import And, Predicate
from repro.query.plan import JoinClause

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.engine.database import RodentStore
    from repro.query.planner import PlanExplain


class Q:
    """Query builder bound to one base table of a store."""

    def __init__(self, store: "RodentStore", table: str):
        self._store = store
        self._table = table
        self._spec = QuerySpec(table=table)

    # -- builder steps ------------------------------------------------------

    def select(self, *fields: str) -> "Q":
        self._spec.fieldlist = tuple(fields) if fields else None
        return self

    def where(self, predicate: Predicate) -> "Q":
        if self._spec.predicate is None:
            self._spec.predicate = predicate
        else:
            self._spec.predicate = And(self._spec.predicate, predicate)
        return self

    def join(
        self,
        table: str,
        on: str | tuple[str, str] | Mapping[str, str] | Sequence[tuple[str, str]],
    ) -> "Q":
        """Equi-join another table of the same store.

        ``on`` names the join keys: a single field name (same column on
        both sides), a ``(left, right)`` pair, a ``{left: right}`` mapping,
        or a sequence of pairs for composite keys. Left keys refer to
        output columns of the query so far (base table or earlier joins);
        right keys to columns of ``table``. When a joined column's name
        collides with an existing output column it is exposed as
        ``"<table>.<field>"``.
        """
        self._spec.joins = self._spec.joins + (
            JoinClause(table, _normalize_on(on)),
        )
        return self

    def order_by(self, *keys: str | tuple[str, bool]) -> "Q":
        normalized: list[tuple[str, bool]] = []
        for key in keys:
            if isinstance(key, str):
                # A single leading "-" flags descending; only that prefix
                # is stripped, so field names may themselves contain "-".
                if key.startswith("-"):
                    normalized.append((key[1:], False))
                else:
                    normalized.append((key, True))
            else:
                normalized.append((key[0], bool(key[1])))
        self._spec.order = tuple(normalized)
        return self

    def limit(self, count: int) -> "Q":
        if count < 0:
            raise QueryError("limit must be non-negative")
        self._spec.limit = count
        return self

    def group_by(self, *fields: str) -> "Q":
        self._spec.group_by = tuple(fields)
        return self

    def agg(self, **aggregates: str) -> "Q":
        """Aggregates as ``alias=func:field`` or ``alias="*"`` for count(*).

        Examples: ``agg(n="*")``, ``agg(total="sum:amount", lo="min:lat")``.
        """
        specs = list(self._spec.aggregates)
        for alias, spec in aggregates.items():
            if spec == "*":
                specs.append(Aggregate("count", None, alias))
                continue
            try:
                func, source = spec.split(":")
            except ValueError:
                raise QueryError(
                    f"aggregate spec {spec!r} must be 'func:field' or '*'"
                ) from None
            specs.append(Aggregate(func, source, alias))
        self._spec.aggregates = tuple(specs)
        return self

    # -- execution ------------------------------------------------------------

    def run(self) -> list[tuple]:
        return execute(self._store.table(self._table), self._spec)

    def explain(self) -> "PlanExplain":
        """The compiled physical plan with per-node cost/cardinality.

        The result renders as an operator tree (``print(q.explain())``)
        and exposes the root's cumulative estimate as ``pages`` /
        ``seeks`` / ``ms`` for numeric use.
        """
        from repro.query.planner import explain_query

        return explain_query(self._store.table(self._table), self._spec)

    def spec(self) -> QuerySpec:
        return self._spec


def _normalize_on(
    on: str | tuple[str, str] | Mapping[str, str] | Sequence[tuple[str, str]],
) -> tuple[tuple[str, str], ...]:
    if isinstance(on, str):
        return ((on, on),)
    if isinstance(on, Mapping):
        pairs = tuple((str(l), str(r)) for l, r in on.items())
    elif isinstance(on, Sequence):
        items = list(on)
        if len(items) == 2 and all(isinstance(x, str) for x in items):
            pairs = ((items[0], items[1]),)
        else:
            pairs = tuple()
            for item in items:
                if (
                    not isinstance(item, Sequence)
                    or isinstance(item, str)
                    or len(item) != 2
                ):
                    raise QueryError(
                        "join 'on' pairs must be (left_field, right_field)"
                    )
                pairs = pairs + ((str(item[0]), str(item[1])),)
    else:
        raise QueryError(
            "join 'on' must be a field name, a (left, right) pair, a "
            "mapping, or a sequence of pairs"
        )
    if not pairs:
        raise QueryError("join requires at least one key pair")
    return pairs
