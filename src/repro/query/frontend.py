"""Fluent query front end.

A tiny, chainable interface standing in for the paper's "Traditional
Database Front End" box (Figure 1)::

    from repro.query import Q

    rows = (
        Q(store, "Traces")
        .select("lat", "lon")
        .where(Rect({"lat": (lo, hi), "lon": (lo2, hi2)}))
        .order_by("t")
        .limit(100)
        .run()
    )

    per_taxi = Q(store, "Traces").group_by("id").agg(count="*").run()
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import QueryError
from repro.query.executor import Aggregate, QuerySpec, execute
from repro.query.expressions import And, Predicate

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.engine.database import RodentStore


class Q:
    """Query builder bound to one table of a store."""

    def __init__(self, store: "RodentStore", table: str):
        self._store = store
        self._table = table
        self._spec = QuerySpec(table=table)

    # -- builder steps ------------------------------------------------------

    def select(self, *fields: str) -> "Q":
        self._spec.fieldlist = tuple(fields) if fields else None
        return self

    def where(self, predicate: Predicate) -> "Q":
        if self._spec.predicate is None:
            self._spec.predicate = predicate
        else:
            self._spec.predicate = And(self._spec.predicate, predicate)
        return self

    def order_by(self, *keys: str | tuple[str, bool]) -> "Q":
        normalized: list[tuple[str, bool]] = []
        for key in keys:
            if isinstance(key, str):
                descending = key.startswith("-")
                normalized.append((key.lstrip("-"), not descending))
            else:
                normalized.append((key[0], bool(key[1])))
        self._spec.order = tuple(normalized)
        return self

    def limit(self, count: int) -> "Q":
        if count < 0:
            raise QueryError("limit must be non-negative")
        self._spec.limit = count
        return self

    def group_by(self, *fields: str) -> "Q":
        self._spec.group_by = tuple(fields)
        return self

    def agg(self, **aggregates: str) -> "Q":
        """Aggregates as ``alias=func:field`` or ``alias="*"`` for count(*).

        Examples: ``agg(n="*")``, ``agg(total="sum:amount", lo="min:lat")``.
        """
        specs = list(self._spec.aggregates)
        for alias, spec in aggregates.items():
            if spec == "*":
                specs.append(Aggregate("count", None, alias))
                continue
            try:
                func, source = spec.split(":")
            except ValueError:
                raise QueryError(
                    f"aggregate spec {spec!r} must be 'func:field' or '*'"
                ) from None
            specs.append(Aggregate(func, source, alias))
        self._spec.aggregates = tuple(specs)
        return self

    # -- execution ------------------------------------------------------------

    def run(self) -> list[tuple]:
        return execute(self._store.table(self._table), self._spec)

    def explain(self):
        """The access-method cost estimate for this query."""
        return self._store.table(self._table).scan_cost(
            fieldlist=list(self._spec.fieldlist) if self._spec.fieldlist else None,
            predicate=self._spec.predicate,
            order=list(self._spec.order) if self._spec.order else None,
        )

    def spec(self) -> QuerySpec:
        return self._spec
