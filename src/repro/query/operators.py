"""Physical batch operators — the executable half of the query compiler.

Every operator consumes and produces :class:`~repro.layout.renderer.ColumnBatch`
streams (batch-at-a-time, like the scan pipeline underneath), exposes its
output column names as ``fields``, and carries the planner's per-node
estimates (``est_rows``, ``est_cost``) so ``Q.explain()`` can render the
tree. Operators hold no cost logic themselves: the planner
(:mod:`repro.query.planner`) annotates them after lowering.

The leaf is :class:`TableScanOp`, a thin adapter over
:meth:`Table.scan_column_batches` — predicate/projection/order/limit
pushdown, grid-cell pruning, column-group selection, and the
index-vs-scan choice all happen inside the access method. Above it sit
:class:`FilterOp` (residual predicates), :class:`ProjectOp`,
:class:`HashJoinOp` (equi-join, hash the estimated-smaller side),
:class:`GroupByOp` (scalar accumulators, no member-row buffering),
:class:`SortOp`, and :class:`LimitOp`.

When the store's vectorized mode is on, columnar batches flow through the
tree untransposed: filters evaluate selection bitmaps
(:meth:`Predicate.filter_vector`) and defer the gather, projections
reorder column vectors, joins extract keys from packed column slices, and
group-by reduces typed buffers with numpy when it is importable. Every
vector path bails to the row-at-a-time code on anything it cannot
reproduce bit-for-bit, so results are identical either way.

Null semantics follow SQL: join keys containing ``None`` never match, and
``count(field)`` / ``sum`` / ``avg`` / ``min`` / ``max`` skip ``None``
values (``count(*)`` counts every row).

Calling :meth:`Operator.batches` starts a fresh execution; operators are
re-runnable because each call re-reads the scans and rebuilds any state
(hash tables, accumulators).
"""

from __future__ import annotations

import operator as _operator
from collections import defaultdict, deque
from concurrent.futures import wait as _wait_futures
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro import vector
from repro.engine.cost import CostEstimate
from repro.errors import QueryError, StorageError
from repro.layout.renderer import DEFAULT_BATCH_ROWS, ColumnBatch
from repro.query.expressions import Predicate
from repro.types.values import multisort

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.engine.table import Table
    from repro.query.executor import Aggregate


class Operator:
    """Base physical operator: a re-runnable ColumnBatch stream."""

    #: Output column names, parallel to every produced batch's fields.
    fields: tuple[str, ...] = ()
    #: Planner annotations (cumulative cost of the subtree rooted here).
    est_rows: float = 0.0
    est_cost: CostEstimate = CostEstimate.zero()

    @property
    def name(self) -> str:
        return type(self).__name__.removesuffix("Op")

    def inputs(self) -> tuple["Operator", ...]:
        return ()

    def detail(self) -> str:
        """One-line operator-specific description for ``explain``."""
        return ""

    def batches(self) -> Iterator[ColumnBatch]:
        raise NotImplementedError

    def rows(self) -> list[tuple]:
        """Execute and materialize the full result."""
        return [row for batch in self.batches() for row in batch.rows()]


class RowsOp(Operator):
    """Source operator over materialized rows (tests, literal inputs)."""

    def __init__(self, fields: Sequence[str], rows: Sequence[tuple]):
        self.fields = tuple(fields)
        self._rows = [tuple(r) for r in rows]
        self.est_rows = float(len(self._rows))

    def detail(self) -> str:
        return f"{len(self._rows)} rows"

    def batches(self) -> Iterator[ColumnBatch]:
        for start in range(0, len(self._rows), DEFAULT_BATCH_ROWS):
            yield ColumnBatch.from_rows(
                self.fields, self._rows[start : start + DEFAULT_BATCH_ROWS]
            )


class TableScanOp(Operator):
    """Leaf: one table access with everything pushed down.

    ``access`` records the planner's access-path verdict (``"scan"`` or
    ``"index"``, from :meth:`Table.access_path`) for display; the actual
    choice is re-made inside :meth:`Table.scan_batches` with the same
    inputs, so the two always agree.
    """

    def __init__(
        self,
        table: "Table",
        fieldlist: Sequence[str] | None = None,
        predicate: Predicate | None = None,
        order: Sequence[tuple[str, bool]] | None = None,
        limit: int | None = None,
        access: str = "scan",
    ):
        self.table = table
        self.fieldlist = list(fieldlist) if fieldlist is not None else None
        self.predicate = predicate
        self.order = list(order) if order else None
        self.limit = limit
        self.access = access
        self._pages_pruned: int | None = None
        self._partitions_pruned: int | None = None
        if self.fieldlist is not None:
            self.fields = tuple(self.fieldlist)
        else:
            self.fields = tuple(table.scan_schema().names())

    @property
    def pages_pruned(self) -> int:
        """Data pages zone-map/directory pruning will skip, from the layout
        synopses alone (``Table.pruned_pages``). Computed lazily on first
        access — only ``explain()`` renders it, so plain execution never
        pays the metadata sweep — and 0 for index probes, which bypass the
        scan path entirely."""
        if self._pages_pruned is None:
            pruned = 0
            if self.access == "scan" and self.predicate is not None:
                try:
                    pruned = self.table.pruned_pages(
                        self.predicate, self.fieldlist
                    )
                except StorageError:
                    pruned = 0  # unloaded table: no layout metadata yet
            self._pages_pruned = pruned
        return self._pages_pruned

    @property
    def partitions_pruned(self) -> int:
        """Whole partitions this scan's predicate rules out via the
        partition map (``Table.partitions_pruned``) — 0 for unpartitioned
        tables. Lazy like :attr:`pages_pruned`: only ``explain()`` pays
        the metadata sweep."""
        if self._partitions_pruned is None:
            pruned = 0
            if getattr(self.table, "is_partitioned", False):
                try:
                    pruned = self.table.partitions_pruned(self.predicate)
                except StorageError:
                    pruned = 0
            self._partitions_pruned = pruned
        return self._partitions_pruned

    @property
    def name(self) -> str:
        return "IndexScan" if self.access == "index" else "TableScan"

    def detail(self) -> str:
        parts = [self.table.name]
        if self.fieldlist is not None:
            parts.append(f"fields={self.fieldlist}")
        if getattr(self.table, "is_partitioned", False):
            parts.append(
                f"partitions={len(self.table.partitions)}"
                f" partitions_pruned={self.partitions_pruned}"
            )
        if self.predicate is not None:
            parts.append(f"predicate={self.predicate!r}")
            parts.append(f"pages_pruned={self.pages_pruned}")
        if self.order:
            parts.append(
                "order=["
                + ", ".join(
                    f"{n}{'' if asc else ' desc'}" for n, asc in self.order
                )
                + "]"
            )
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        if getattr(self.table.store, "degraded_reads", False):
            skipped = getattr(
                self.table._entry, "last_corruption_skipped", []
            )
            parts.append(f"corruption_skipped={len(skipped)}")
        return " ".join(parts)

    def batches(self) -> Iterator[ColumnBatch]:
        actual = 0
        if getattr(self.table.store, "vectorized", True):
            # Consume the access method's native ColumnBatch stream:
            # columnar layouts arrive as typed vectors (plus any pending
            # selection bitmap) and stay columnar through the plan tree.
            for batch in self.table.scan_column_batches(
                fieldlist=self.fieldlist,
                predicate=self.predicate,
                order=self.order,
                limit=self.limit,
            ):
                actual += batch.n_rows
                yield batch
        else:
            for rows in self.table.scan_batches(
                fieldlist=self.fieldlist,
                predicate=self.predicate,
                order=self.order,
                limit=self.limit,
            ):
                actual += len(rows)
                yield ColumnBatch.from_rows(self.fields, rows)
        # Completed scans report actual-vs-estimated cardinality into the
        # table's workload monitor (abandoned scans would compare a full
        # estimate against a partial count, so they stay silent).
        self.table.record_scan_feedback(self.est_rows, actual)


class ParallelTableScanOp(TableScanOp):
    """Partition-parallel leaf: morsel-style fan-out over a partitioned
    table's surviving regions.

    The fan-out itself lives inside :meth:`Table.scan_batches` (which
    consults ``store.scan_workers`` and dispatches regions to the store's
    shared thread pool through :func:`fan_out_partitions`), so direct
    access-method calls and planned queries share one executor and one
    merge discipline. This operator is the plan-tree face of that path:
    the planner lowers a scan to it whenever the parallel path will
    actually run, so ``explain()`` shows the worker fan-out next to the
    partition-pruning counts.
    """

    @property
    def name(self) -> str:
        return "ParallelTableScan"

    def detail(self) -> str:
        workers = int(getattr(self.table.store, "scan_workers", 0) or 0)
        return super().detail() + f" workers={workers}"


def fan_out_partitions(executor, sources, window: int):
    """Morsel-style ordered merge of per-partition batch sources.

    ``sources`` are zero-arg callables, one per partition, each producing
    an iterator of batches (page fetch + codec decode happen inside, i.e.
    in the worker). Up to ``window`` partitions are in flight at once; the
    merged stream yields every partition's batches **in partition order**,
    so a parallel scan is indistinguishable from a serial one — order
    preservation is what lets sorted range-partitioned scans stay sorted
    and keeps the differential suite's batch ≡ reference ≡ planned
    equivalence intact with parallelism on.

    On early close (a consumer abandoning the scan) the in-flight futures
    are drained before returning so no worker outlives the iterator —
    otherwise an automatic re-layout could free pages under a live reader.

    Memory: each worker materializes its whole partition's batch list, so
    up to ``window`` partitions are resident at once — the morsel unit is
    deliberately the partition (regions are the independent storage
    objects). Bound memory by partition granularity (more, smaller
    partitions), not by raising ``window``.
    """
    sources = list(sources)
    window = max(1, int(window))

    def generate():
        futures: deque = deque()
        position = 0

        def submit() -> None:
            nonlocal position
            if position < len(sources):
                source = sources[position]
                position += 1
                futures.append(
                    executor.submit(lambda s=source: list(s()))
                )

        try:
            for _ in range(window):
                submit()
            while futures:
                batches = futures.popleft().result()
                submit()
                yield from batches
        finally:
            if futures:
                _wait_futures(list(futures))
                futures.clear()

    return generate()


class FilterOp(Operator):
    """Residual predicate over the child's output (post-join predicates,
    conjuncts that could not be pushed into any single scan)."""

    def __init__(self, child: Operator, predicate: Predicate):
        self.child = child
        self.predicate = predicate
        self.fields = child.fields
        missing = predicate.fields_used() - set(child.fields)
        if missing:
            raise QueryError(
                f"predicate references unavailable field(s) {sorted(missing)}"
            )

    def inputs(self) -> tuple[Operator, ...]:
        return (self.child,)

    def detail(self) -> str:
        return repr(self.predicate)

    def batches(self) -> Iterator[ColumnBatch]:
        # Columnar batches (vectorized scans flowing up through joins are
        # still per-table; residual predicates see them directly above a
        # scan) take the bitmap path: evaluate the whole-column predicate
        # into a selection mask and defer the gather. Row-backed batches —
        # and any predicate that declines to vectorize — fall back to the
        # compiled per-row closure.
        positions = {name: i for i, name in enumerate(self.fields)}
        row_filter = self.predicate.compile(positions)
        predicate = self.predicate
        for batch in self.child.batches():
            if batch.is_columnar:
                bitmap = predicate.filter_vector(
                    batch.column_map(), batch.n_rows
                )
                if bitmap is not None:
                    selected = batch.select(bitmap)
                    if selected.n_rows:
                        yield selected
                    continue
            kept = list(filter(row_filter, batch.rows()))
            if kept:
                yield ColumnBatch.from_rows(self.fields, kept)


class ProjectOp(Operator):
    """Narrow/reorder columns (applied above joins and sorts; single-table
    projections are pushed into the scan instead)."""

    def __init__(self, child: Operator, fields: Sequence[str]):
        self.child = child
        self.fields = tuple(fields)
        positions = {name: i for i, name in enumerate(child.fields)}
        try:
            self._idx = [positions[f] for f in fields]
        except KeyError as exc:
            raise QueryError(
                f"unknown projection field {exc.args[0]!r}"
            ) from None

    def inputs(self) -> tuple[Operator, ...]:
        return (self.child,)

    def detail(self) -> str:
        return str(list(self.fields))

    def batches(self) -> Iterator[ColumnBatch]:
        idx = self._idx
        if len(idx) == 1:
            i = idx[0]
            project: Callable[[list], list] = lambda rows: [
                (row[i],) for row in rows
            ]
        else:
            getter = _operator.itemgetter(*idx)
            project = lambda rows: list(map(getter, rows))
        for batch in self.child.batches():
            if batch.is_columnar:
                # Reorder column vectors in place of transposing; any
                # pending selection bitmap rides along unresolved.
                yield batch.project_columns(idx, self.fields)
                continue
            yield ColumnBatch.from_rows(self.fields, project(batch.rows()))


def _key_fn(idx: Sequence[int]) -> Callable[[tuple], Any]:
    """Join-key extractor; single keys stay scalar (no tuple allocation)."""
    if len(idx) == 1:
        i = idx[0]
        return lambda row: row[i]
    return _operator.itemgetter(*idx)


class HashJoinOp(Operator):
    """Equi-join: hash the build side, stream the probe side.

    Output rows are always ``left_row + right_row`` regardless of which
    side is built, so the planner's build-side choice (the estimated
    smaller input) never changes results. ``None`` join keys match nothing.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        build_left: bool = True,
    ):
        if len(left_keys) != len(right_keys) or not left_keys:
            raise QueryError("hash join needs matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        self.build_left = build_left
        self.fields = left.fields + right.fields
        left_pos = {name: i for i, name in enumerate(left.fields)}
        right_pos = {name: i for i, name in enumerate(right.fields)}
        try:
            self._left_idx = [left_pos[k] for k in left_keys]
            self._right_idx = [right_pos[k] for k in right_keys]
        except KeyError as exc:
            raise QueryError(f"unknown join field {exc.args[0]!r}") from None

    def inputs(self) -> tuple[Operator, ...]:
        return (self.left, self.right)

    def detail(self) -> str:
        keys = ", ".join(
            f"{a} = {b}" for a, b in zip(self.left_keys, self.right_keys)
        )
        side = "left" if self.build_left else "right"
        return f"on {keys} [build={side}]"

    @staticmethod
    def _null_key(key: Any, composite: bool) -> bool:
        return (None in key) if composite else (key is None)

    @staticmethod
    def _batch_keys(batch: ColumnBatch, idx: Sequence[int]) -> list:
        """Per-row join keys, sliced from packed columns when available.

        Columnar batches yield their key columns as whole vectors — one
        bulk ``tolist`` per key instead of an itemgetter call per row.
        Single keys stay scalar, composites become tuples, matching
        :func:`_key_fn` exactly.
        """
        if batch.is_columnar:
            cols = batch.columns()
            key_cols = [vector.to_list(cols[i]) for i in idx]
            if len(key_cols) == 1:
                return key_cols[0]
            return list(zip(*key_cols))
        key_of = _key_fn(idx)
        return [key_of(row) for row in batch.rows()]

    def batches(self) -> Iterator[ColumnBatch]:
        composite = len(self.left_keys) > 1
        null_key = self._null_key
        if self.build_left:
            build, probe = self.left, self.right
            build_idx, probe_idx = self._left_idx, self._right_idx
        else:
            build, probe = self.right, self.left
            build_idx, probe_idx = self._right_idx, self._left_idx
        table: dict[Any, list[tuple]] = defaultdict(list)
        for batch in build.batches():
            keys = self._batch_keys(batch, build_idx)
            for key, row in zip(keys, batch.rows()):
                if null_key(key, composite):
                    continue
                table[key].append(row)
        if not table:
            return
        get = table.get
        build_is_left = self.build_left
        for batch in probe.batches():
            out: list[tuple] = []
            extend = out.extend
            keys = self._batch_keys(batch, probe_idx)
            for key, row in zip(keys, batch.rows()):
                if null_key(key, composite):
                    continue
                matches = get(key)
                if not matches:
                    continue
                if build_is_left:
                    extend(b + row for b in matches)
                else:
                    extend(row + b for b in matches)
            if out:
                yield ColumnBatch.from_rows(self.fields, out)


#: Int sums stay exact in int64 as long as ``max(|value|) * n_rows`` is
#: below this; anything bigger bails to arbitrary-precision python ints.
_INT64_SAFE = 2**62


#: min/max slots treat ``None`` as "unset"; safe because None *values* are
#: skipped before reaching the slot (SQL null semantics).
class _AggState:
    """Scalar accumulators for one group — no member-row buffering."""

    __slots__ = ("count", "counts", "sums", "sum_counts", "mins", "maxs")

    def __init__(self, n_counts: int, n_sums: int, n_minmax: int):
        self.count = 0  # count(*): every row
        self.counts = [0] * n_counts  # count(field): non-null rows
        self.sums = [0] * n_sums
        self.sum_counts = [0] * n_sums  # non-null denominators for avg
        self.mins: list[Any] = [None] * n_minmax
        self.maxs: list[Any] = [None] * n_minmax


class GroupByOp(Operator):
    """Grouped aggregation folded into scalar accumulator states.

    One pipeline-breaking pass: every input batch folds into per-group
    scalar slots (shared row count, per-source non-null counts, running
    sums, mins, maxs), then the result is emitted in first-seen group
    order. ``count(field)`` / ``sum`` / ``avg`` / ``min`` / ``max`` skip
    ``None`` values; ``count(*)`` counts all rows; aggregates over a group
    whose values are all ``None`` yield ``None``.
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[str],
        aggregates: Sequence["Aggregate"],
    ):
        self.child = child
        self.keys = tuple(keys)
        self.aggregates = tuple(aggregates)
        self.fields = self.keys + tuple(
            a.output_name for a in self.aggregates
        )
        positions = {name: i for i, name in enumerate(child.fields)}
        try:
            self._key_idx = [positions[k] for k in keys]
            # Slot layout: one list per accumulator family, deduplicated by
            # source field so sum+avg over the same column share a slot.
            self._count_fields: list[str] = []
            self._sum_fields: list[str] = []
            self._minmax_specs: list[tuple[str, str]] = []
            for agg in self.aggregates:
                if agg.source is None:
                    continue
                if agg.func == "count" and agg.source not in self._count_fields:
                    self._count_fields.append(agg.source)
                if agg.func in ("sum", "avg") and agg.source not in self._sum_fields:
                    self._sum_fields.append(agg.source)
                if agg.func in ("min", "max"):
                    spec = (agg.func, agg.source)
                    if spec not in self._minmax_specs:
                        self._minmax_specs.append(spec)
            self._count_idx = [positions[f] for f in self._count_fields]
            self._sum_idx = [positions[f] for f in self._sum_fields]
            self._minmax_idx = [positions[s] for _, s in self._minmax_specs]
        except KeyError as exc:
            raise QueryError(
                f"unknown aggregation field {exc.args[0]!r}"
            ) from None

    def inputs(self) -> tuple[Operator, ...]:
        return (self.child,)

    def detail(self) -> str:
        aggs = ", ".join(a.output_name for a in self.aggregates)
        return f"keys={list(self.keys)} aggs=[{aggs}]"

    def batches(self) -> Iterator[ColumnBatch]:
        key_idx = self._key_idx
        count_idx = self._count_idx
        sum_idx = self._sum_idx
        minmax_idx = self._minmax_idx
        minmax_specs = self._minmax_specs
        n_counts, n_sums, n_minmax = (
            len(count_idx), len(sum_idx), len(minmax_idx)
        )
        key_of = _key_fn(key_idx) if key_idx else None
        single_key = len(key_idx) == 1
        states: dict[tuple, _AggState] = {}
        for batch in self.child.batches():
            if (
                batch.is_columnar
                and batch.n_rows
                and self._fold_vectorized(batch, states)
            ):
                continue
            for row in batch.rows():
                if key_of is None:
                    key = ()
                elif single_key:
                    key = (key_of(row),)
                else:
                    key = key_of(row)
                state = states.get(key)
                if state is None:
                    state = states[key] = _AggState(n_counts, n_sums, n_minmax)
                state.count += 1
                for slot, i in enumerate(count_idx):
                    if row[i] is not None:
                        state.counts[slot] += 1
                for slot, i in enumerate(sum_idx):
                    value = row[i]
                    if value is not None:
                        state.sums[slot] += value
                        state.sum_counts[slot] += 1
                for slot, i in enumerate(minmax_idx):
                    value = row[i]
                    if value is None:
                        continue
                    func, _ = minmax_specs[slot]
                    if func == "min":
                        current = state.mins[slot]
                        if current is None or value < current:
                            state.mins[slot] = value
                    else:
                        current = state.maxs[slot]
                        if current is None or value > current:
                            state.maxs[slot] = value
        out: list[tuple] = []
        for key, state in states.items():  # dicts preserve first-seen order
            result: list[Any] = list(key)
            for agg in self.aggregates:
                result.append(self._finalize(agg, state))
            out.append(tuple(result))
        if out:
            yield ColumnBatch.from_rows(self.fields, out)

    def _fold_vectorized(self, batch: ColumnBatch, states: dict) -> bool:
        """Fold one columnar batch into ``states`` with numpy reductions.

        Groups come from a stable argsort over combined key codes, so each
        sorted slice preserves the batch's original row order, and groups
        commit to ``states`` in first-seen order (``argsort`` of each
        group's first row position) — the dict ends up identical to the
        row loop's. Int sums reduce with ``np.add.reduceat`` (exact below
        the int64 guard); float sums accumulate sequentially in python over
        the sorted slices so rounding matches the row loop bit-for-bit.

        Returns False, leaving ``states`` untouched, whenever any piece
        can't be reproduced exactly: numpy unavailable, a needed column
        that isn't a typed numeric vector (typed vectors also guarantee
        no ``None``s, which is what lets counts equal group sizes), NaNs
        anywhere (their comparison semantics differ from the row loop's
        min/max and dict-key behavior), or an int sum that could overflow.
        """
        np = vector.numpy_module()
        if np is None or not vector.numpy_enabled():
            return False
        n = batch.n_rows
        cols = batch.columns()

        def ndarray(i):
            arr = vector.as_ndarray(cols[i])
            if (
                arr is not None
                and arr.dtype.kind == "f"
                and np.isnan(arr).any()
            ):
                return None
            return arr

        key_arrays = [ndarray(i) for i in self._key_idx]
        count_arrays = [ndarray(i) for i in self._count_idx]
        sum_arrays = [ndarray(i) for i in self._sum_idx]
        minmax_arrays = [ndarray(i) for i in self._minmax_idx]
        if any(
            a is None
            for group in (key_arrays, count_arrays, sum_arrays, minmax_arrays)
            for a in group
        ):
            return False

        if key_arrays:
            codes = None
            cardinality = 1
            for arr in key_arrays:
                uniques, inverse = np.unique(arr, return_inverse=True)
                k = len(uniques)
                if codes is None:
                    codes = inverse.astype(np.int64, copy=False)
                else:
                    if cardinality * k >= _INT64_SAFE:
                        return False
                    codes = codes * k + inverse
                cardinality *= k
            order = np.argsort(codes, kind="stable")
            sorted_codes = codes[order]
            change = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
            starts = np.concatenate([np.zeros(1, dtype=np.intp), change])
            firsts = order[starts]
            group_keys = list(
                zip(*(arr[firsts].tolist() for arr in key_arrays))
            )
            group_order = np.argsort(firsts, kind="stable").tolist()
        else:
            order = np.arange(n)
            starts = np.zeros(1, dtype=np.intp)
            group_keys = [()]
            group_order = [0]
        starts_list = [int(s) for s in starts.tolist()]
        stops_list = starts_list[1:] + [n]
        sizes = [hi - lo for lo, hi in zip(starts_list, stops_list)]

        int_sums: dict[int, list] = {}
        float_sums: dict[int, list] = {}
        for slot, arr in enumerate(sum_arrays):
            vals = arr[order]
            if arr.dtype.kind == "f":
                float_sums[slot] = vals.tolist()
            else:
                bound = max(abs(int(vals.min())), abs(int(vals.max())))
                if bound * n >= _INT64_SAFE:
                    return False
                int_sums[slot] = np.add.reduceat(vals, starts).tolist()
        minmax_segs = []
        for slot, arr in enumerate(minmax_arrays):
            vals = arr[order]
            reducer = (
                np.minimum
                if self._minmax_specs[slot][0] == "min"
                else np.maximum
            )
            minmax_segs.append(reducer.reduceat(vals, starts).tolist())

        n_counts = len(count_arrays)
        n_sums = len(sum_arrays)
        for g in group_order:
            key = group_keys[g]
            state = states.get(key)
            if state is None:
                state = states[key] = _AggState(
                    n_counts, n_sums, len(minmax_arrays)
                )
            size = sizes[g]
            state.count += size
            for slot in range(n_counts):
                state.counts[slot] += size
            for slot in range(n_sums):
                seg = int_sums.get(slot)
                if seg is not None:
                    state.sums[slot] += seg[g]
                else:
                    lo, hi = starts_list[g], stops_list[g]
                    state.sums[slot] = sum(
                        float_sums[slot][lo:hi], state.sums[slot]
                    )
                state.sum_counts[slot] += size
            for slot, seg in enumerate(minmax_segs):
                value = seg[g]
                if self._minmax_specs[slot][0] == "min":
                    current = state.mins[slot]
                    if current is None or value < current:
                        state.mins[slot] = value
                else:
                    current = state.maxs[slot]
                    if current is None or value > current:
                        state.maxs[slot] = value
        return True

    def _finalize(self, agg: "Aggregate", state: _AggState) -> Any:
        if agg.source is None:  # count(*)
            return state.count
        if agg.func == "count":
            return state.counts[self._count_fields.index(agg.source)]
        if agg.func == "sum":
            slot = self._sum_fields.index(agg.source)
            return state.sums[slot] if state.sum_counts[slot] else None
        if agg.func == "avg":
            slot = self._sum_fields.index(agg.source)
            n = state.sum_counts[slot]
            return state.sums[slot] / n if n else None
        if agg.func == "min":
            return state.mins[self._minmax_specs.index(("min", agg.source))]
        return state.maxs[self._minmax_specs.index(("max", agg.source))]


class SortOp(Operator):
    """Pipeline breaker: buffer everything, stable multi-key sort."""

    def __init__(
        self, child: Operator, keys: Sequence[tuple[str, bool]]
    ):
        self.child = child
        self.keys = tuple(keys)
        positions = {name: i for i, name in enumerate(child.fields)}
        self.fields = child.fields
        self._idx: list[int] = []
        self._desc: list[bool] = []
        for name, ascending in keys:
            if name not in positions:
                raise QueryError(f"cannot order result by {name!r}")
            self._idx.append(positions[name])
            self._desc.append(not ascending)

    def inputs(self) -> tuple[Operator, ...]:
        return (self.child,)

    def detail(self) -> str:
        return ", ".join(
            f"{name}{'' if asc else ' desc'}" for name, asc in self.keys
        )

    def batches(self) -> Iterator[ColumnBatch]:
        collected: list[tuple] = []
        for batch in self.child.batches():
            collected.extend(batch.rows())
        if not collected:
            return
        rows = multisort(collected, self._idx, self._desc)
        for start in range(0, len(rows), DEFAULT_BATCH_ROWS):
            yield ColumnBatch.from_rows(
                self.fields, rows[start : start + DEFAULT_BATCH_ROWS]
            )


class LimitOp(Operator):
    """Stop the stream after ``count`` rows."""

    def __init__(self, child: Operator, count: int):
        if count < 0:
            raise QueryError("limit must be non-negative")
        self.child = child
        self.count = count
        self.fields = child.fields

    def inputs(self) -> tuple[Operator, ...]:
        return (self.child,)

    def detail(self) -> str:
        return str(self.count)

    def batches(self) -> Iterator[ColumnBatch]:
        remaining = self.count
        if remaining <= 0:
            return
        for batch in self.child.batches():
            if batch.n_rows >= remaining:
                yield batch.head(remaining)
                return
            remaining -= batch.n_rows
            yield batch


def format_plan(op: Operator, indent: str = "") -> str:
    """Render a physical plan tree with per-node cost/cardinality."""
    cost = op.est_cost
    detail = op.detail()
    line = (
        f"{op.name}{' ' + detail if detail else ''}"
        f"  rows≈{op.est_rows:,.0f}"
        f"  cost≈{cost.ms:.2f}ms (pages={cost.pages:.0f} seeks={cost.seeks:.0f})"
    )
    lines = [indent + line]
    kids = op.inputs()
    for i, child in enumerate(kids):
        last = i == len(kids) - 1
        connector = "└─ " if last else "├─ "
        pad = "   " if last else "│  "
        sub = format_plan(child, "").splitlines()
        lines.append(indent + connector + sub[0])
        lines.extend(indent + pad + line for line in sub[1:])
    return "\n".join(lines)
