"""Logical query plan IR — the compiler's middle layer.

The query stack is a three-stage compiler::

    Q (frontend)  ──►  QuerySpec  ──►  logical plan  ──►  physical operators
                       declarative     this module        query/operators.py
                                       (planner lowers,   (ColumnBatch in,
                                       query/planner.py)   ColumnBatch out)

A logical node describes *what* to compute (relational semantics) with no
commitment to access paths, join algorithms, or evaluation order beyond the
tree shape. The planner (:mod:`repro.query.planner`) applies rewrite rules —
predicate/projection/limit pushdown into :class:`Scan`, join reordering by
estimated cardinality — and then lowers each node to a batch operator.

Nodes are plain frozen dataclasses so rewrites build new trees instead of
mutating; :func:`format_tree` renders any tree for debugging and for the
logical half of ``Q.explain()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.executor import Aggregate
    from repro.query.expressions import Predicate


@dataclass(frozen=True)
class JoinClause:
    """One ``.join(table, on=...)`` step: equi-join key pairs.

    ``on`` is a tuple of ``(left_field, right_field)`` pairs; ``left_field``
    names a column of the accumulated left-side output (base table or any
    previously joined table), ``right_field`` a column of ``table``.
    """

    table: str
    on: Tuple[Tuple[str, str], ...]


class LogicalNode:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["LogicalNode", ...]:
        return ()

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(LogicalNode):
    """Read one stored table.

    After pushdown the planner folds projection (``fieldlist``), a
    conjunctive ``predicate``, sort ``order``, and ``limit`` into this node;
    the physical layer hands them to :meth:`Table.scan_batches`, where grid
    cell pruning, column-group selection, sorted-page pruning, and the
    index-vs-scan choice live.
    """

    table: str
    fieldlist: tuple[str, ...] | None = None
    predicate: "Predicate | None" = None
    order: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None

    def describe(self) -> str:
        parts = [self.table]
        if self.fieldlist is not None:
            parts.append(f"fields={list(self.fieldlist)}")
        if self.predicate is not None:
            parts.append(f"predicate={self.predicate!r}")
        if self.order:
            parts.append(f"order={list(self.order)}")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return "Scan " + " ".join(parts)


@dataclass(frozen=True)
class Filter(LogicalNode):
    """Keep rows matching ``predicate`` (residual after pushdown)."""

    child: LogicalNode
    predicate: "Predicate"

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter {self.predicate!r}"


@dataclass(frozen=True)
class Project(LogicalNode):
    """Narrow and reorder columns to ``fields``."""

    child: LogicalNode
    fields: tuple[str, ...]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project {list(self.fields)}"


@dataclass(frozen=True)
class Join(LogicalNode):
    """Equi-join of two subtrees on ``on`` = ((left_field, right_field), ...)."""

    left: LogicalNode
    right: LogicalNode
    on: tuple[tuple[str, str], ...]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        keys = ", ".join(f"{a} = {b}" for a, b in self.on)
        return f"Join on {keys}"


@dataclass(frozen=True)
class GroupBy(LogicalNode):
    """Grouped (or global, when ``keys`` is empty) aggregation."""

    child: LogicalNode
    keys: tuple[str, ...]
    aggregates: tuple["Aggregate", ...] = field(default_factory=tuple)

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        aggs = ", ".join(a.output_name for a in self.aggregates)
        keys = list(self.keys) if self.keys else "()"
        return f"GroupBy keys={keys} aggs=[{aggs}]"


@dataclass(frozen=True)
class Sort(LogicalNode):
    """Order rows by ``keys`` = ((field, ascending), ...)."""

    child: LogicalNode
    keys: tuple[tuple[str, bool], ...]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(
            f"{name}{'' if asc else ' desc'}" for name, asc in self.keys
        )
        return f"Sort {keys}"


@dataclass(frozen=True)
class Limit(LogicalNode):
    """Keep the first ``count`` rows."""

    child: LogicalNode
    count: int

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit {self.count}"


def format_tree(node: LogicalNode, indent: str = "") -> str:
    """Render a logical plan as an indented tree (one node per line)."""
    lines = [indent + node.describe()]
    kids = node.children()
    for i, child in enumerate(kids):
        connector = "└─ " if i == len(kids) - 1 else "├─ "
        pad = indent + ("   " if i == len(kids) - 1 else "│  ")
        sub = format_tree(child, "")
        first, *rest = sub.splitlines()
        lines.append(indent + connector + first)
        lines.extend(pad + line for line in rest)
    return "\n".join(lines)
