"""Rule-based query planner: QuerySpec → logical plan → physical operators.

The planner is the middle stage of the query compiler
(:mod:`repro.query.plan` documents the overall shape). It applies the
classical rewrite rules over the logical IR and lowers the result to the
batch operators in :mod:`repro.query.operators`:

* **Predicate pushdown** — the spec's conjunctive predicate is split into
  conjuncts; each conjunct whose fields belong to exactly one table is
  folded into that table's :class:`~repro.query.plan.Scan` (where grid-cell
  pruning, sorted-page pruning, and index probes can exploit it); the rest
  becomes a residual :class:`~repro.query.plan.Filter` above the joins.
* **Projection pushdown** — every scan reads only the columns the query
  touches (output + join keys + residual predicate + sort fields), so
  column-group layouts skip unused groups.
* **Limit/order pushdown** — single-table queries fold order and limit into
  the scan itself, where order-satisfied scans stop reading pages early.
* **Access-path choice** — each scan is labelled index-vs-scan via
  :meth:`Table.access_path`, the runtime-faithful version of the paper's
  ``scan_cost`` (§4.1 method 4).
* **Join ordering** — 2+ table queries are joined left-deep in greedy
  ascending order of estimated input cardinality
  (:meth:`Table.estimated_row_count` over collected statistics), and each
  hash join builds on its estimated-smaller side
  (:func:`repro.engine.stats.join_cardinality` sizes join outputs).

Every physical operator is annotated with estimated cardinality and
cumulative cost — storage I/O from the access-method cost API plus the
per-row CPU terms in :mod:`repro.optimizer.cost_model` — which is what
``Q.explain()`` renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.engine.cost import CostEstimate
from repro.engine.stats import join_cardinality
from repro.errors import QueryError, StorageError
from repro.optimizer.cost_model import operator_cpu_ms, sort_cpu_ms
from repro.query import plan as lp
from repro.query.expressions import And, Predicate
from repro.query.operators import (
    FilterOp,
    GroupByOp,
    HashJoinOp,
    LimitOp,
    Operator,
    ParallelTableScanOp,
    ProjectOp,
    SortOp,
    TableScanOp,
    format_plan,
)

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.engine.table import Table
    from repro.query.executor import QuerySpec

#: Guessed selectivity of a residual conjunct the statistics cannot see.
_RESIDUAL_SELECTIVITY = 1 / 3


@dataclass
class PlanExplain:
    """``Q.explain()`` result: the physical plan plus its root cost.

    Renders as the plan tree (one operator per line with per-node
    cardinality and cost estimates); the root's cumulative cost stays
    available as ``pages`` / ``seeks`` / ``ms`` for callers that treated
    the old bare :class:`~repro.engine.cost.CostEstimate` numerically.
    """

    root: Operator
    logical: lp.LogicalNode

    @property
    def cost(self) -> CostEstimate:
        return self.root.est_cost

    @property
    def pages(self) -> float:
        return self.root.est_cost.pages

    @property
    def seeks(self) -> float:
        return self.root.est_cost.seeks

    @property
    def ms(self) -> float:
        return self.root.est_cost.ms

    @property
    def est_rows(self) -> float:
        return self.root.est_rows

    def __str__(self) -> str:
        return format_plan(self.root)

    __repr__ = __str__


def compile_query(table: "Table", spec: "QuerySpec") -> Operator:
    """Compile ``spec`` (base table ``table``) into a physical operator tree."""
    logical, binder = _optimize(table, spec)
    return _lower(logical, binder)


def explain_query(table: "Table", spec: "QuerySpec") -> PlanExplain:
    logical, binder = _optimize(table, spec)
    return PlanExplain(root=_lower(logical, binder), logical=logical)


# ---------------------------------------------------------------------------
# binding: which table owns which output column
# ---------------------------------------------------------------------------


@dataclass
class _BoundTable:
    """One table participating in the query, with its output naming."""

    table: "Table"
    #: local field -> output column name (qualified on collision)
    out_names: dict[str, str]
    #: predicate conjuncts pushed into this table's scan
    pushed: list[Predicate]
    #: local fields this scan must produce (set later)
    needed: list[str]

    @property
    def name(self) -> str:
        return self.table.name


class _Binder:
    """Output-column ownership across the base table and joined tables.

    The base table keeps its field names; joined tables keep theirs unless
    they collide with an already-bound column, in which case the column is
    exposed as ``"<table>.<field>"``. Predicates, projections, aggregates,
    and sort keys all reference these output names.
    """

    def __init__(self, base: "Table"):
        self.base = _BoundTable(
            table=base,
            out_names={f: f for f in base.scan_schema().names()},
            pushed=[],
            needed=[],
        )
        self.joined: dict[str, _BoundTable] = {}
        self._owners: dict[str, tuple[_BoundTable, str]] = {
            out: (self.base, field)
            for field, out in self.base.out_names.items()
        }
        self._taken = set(self.base.out_names.values())

    def bind_join(self, table: "Table") -> _BoundTable:
        if table.name in self.joined or table.name == self.base.name:
            raise QueryError(
                f"table {table.name!r} joined more than once"
            )
        out_names: dict[str, str] = {}
        for field in table.scan_schema().names():
            out = field if field not in self._taken else f"{table.name}.{field}"
            if out in self._taken:
                raise QueryError(
                    f"join output column {out!r} collides; "
                    f"rename fields of {table.name!r}"
                )
            out_names[field] = out
            self._taken.add(out)
        bound = _BoundTable(
            table=table, out_names=out_names, pushed=[], needed=[]
        )
        self.joined[table.name] = bound
        for field, out in out_names.items():
            self._owners[out] = (bound, field)
        return bound

    def all_bound(self) -> list[_BoundTable]:
        return [self.base, *self.joined.values()]

    def owner_of(self, out_name: str) -> tuple[_BoundTable, str] | None:
        return self._owners.get(out_name)


# ---------------------------------------------------------------------------
# optimize: spec -> rewritten logical plan
# ---------------------------------------------------------------------------


def _optimize(
    table: "Table", spec: "QuerySpec"
) -> tuple[lp.LogicalNode, _Binder]:
    binder = _Binder(table)
    if not spec.joins:
        return _optimize_single(table, spec), binder
    return _optimize_joined(binder, spec), binder


def _optimize_single(table: "Table", spec: "QuerySpec") -> lp.LogicalNode:
    """Single-table plans: everything the scan can absorb is pushed down."""
    limit = spec.limit
    if limit is not None and limit < 0:
        limit = 0
    if not spec.aggregates:
        # The access method takes projection, predicate, order, and limit
        # natively — the whole query is one Scan leaf.
        return lp.Scan(
            table=table.name,
            fieldlist=tuple(spec.fieldlist) if spec.fieldlist else None,
            predicate=spec.predicate,
            order=tuple(spec.order),
            limit=limit,
        )
    needed = _aggregation_inputs(table, spec)
    node: lp.LogicalNode = lp.Scan(
        table=table.name, fieldlist=tuple(needed), predicate=spec.predicate
    )
    node = lp.GroupBy(node, tuple(spec.group_by), tuple(spec.aggregates))
    if spec.order:
        node = lp.Sort(node, tuple(spec.order))
    if limit is not None:
        node = lp.Limit(node, limit)
    return node


def _aggregation_inputs(table: "Table", spec: "QuerySpec") -> list[str]:
    """Scan fields an aggregation needs (group keys + aggregate sources)."""
    needed = list(spec.group_by)
    seen = set(needed)
    for agg in spec.aggregates:
        if agg.source is not None and agg.source not in seen:
            needed.append(agg.source)
            seen.add(agg.source)
    if not needed:
        # count(*) with no grouping: scan the narrowest thing available.
        needed = [table.scan_schema().names()[0]]
    return needed


def _optimize_joined(binder: _Binder, spec: "QuerySpec") -> lp.LogicalNode:
    store = binder.base.table.store
    clauses: list[tuple[lp.JoinClause, _BoundTable]] = []
    for clause in spec.joins:
        bound = binder.bind_join(store.table(clause.table))
        for _, right_field in clause.on:
            if right_field not in bound.out_names:
                raise QueryError(
                    f"join field {right_field!r} is not a column of "
                    f"{clause.table!r}"
                )
        clauses.append((clause, bound))

    residual = _push_predicates(binder, spec.predicate)
    output_fields = _default_output(binder)
    _mark_needed(binder, spec, residual, clauses)

    # Greedy join ordering: repeatedly take the joinable clause (all left
    # keys already bound) whose table has the smallest estimated cardinality
    # after pushdown.
    node: lp.LogicalNode = _scan_node(binder.base)
    available = set(binder.base.out_names.values())
    remaining = list(clauses)
    while remaining:
        joinable = [
            (clause, bound)
            for clause, bound in remaining
            if all(left in available for left, _ in clause.on)
        ]
        if not joinable:
            missing = sorted(
                left
                for clause, _ in remaining
                for left, _ in clause.on
                if left not in available
            )
            raise QueryError(
                f"join key(s) {missing} not available; check join order "
                f"and field names"
            )
        clause, bound = min(
            joinable,
            key=lambda pair: pair[1].table.estimated_row_count(
                _and_all(pair[1].pushed)
            ),
        )
        remaining.remove((clause, bound))
        on = tuple(
            (left, bound.out_names[right]) for left, right in clause.on
        )
        node = lp.Join(node, _scan_node(bound), on)
        available |= set(bound.out_names.values())

    if residual is not None:
        node = lp.Filter(node, residual)

    limit = spec.limit
    if limit is not None and limit < 0:
        limit = 0
    if spec.aggregates:
        node = lp.GroupBy(node, tuple(spec.group_by), tuple(spec.aggregates))
        if spec.order:
            node = lp.Sort(node, tuple(spec.order))
        if limit is not None:
            node = lp.Limit(node, limit)
        return node
    if spec.order:
        node = lp.Sort(node, tuple(spec.order))
    if limit is not None:
        node = lp.Limit(node, limit)
    # A final Project restores the user-visible column order (join
    # reordering must not leak into the output shape) and applies the
    # requested fieldlist.
    final = tuple(spec.fieldlist) if spec.fieldlist else tuple(output_fields)
    node = lp.Project(node, final)
    return node


def _scan_node(bound: _BoundTable) -> lp.Scan:
    return lp.Scan(
        table=bound.name,
        fieldlist=tuple(bound.needed) if bound.needed else None,
        predicate=_and_all(bound.pushed),
    )


def _and_all(parts: Sequence[Predicate]) -> Predicate | None:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


def _conjuncts(predicate: Predicate) -> list[Predicate]:
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for part in predicate.parts:
            out.extend(_conjuncts(part))
        return out
    return [predicate]


def _push_predicates(
    binder: _Binder, predicate: Predicate | None
) -> Predicate | None:
    """Assign each conjunct to a single owning table or keep it residual.

    A conjunct is pushable when every field it touches belongs to one table
    *under its local name* (a qualified ``"t.f"`` reference means the name
    collided, and the scan below knows nothing about qualified names).
    """
    if predicate is None:
        return None
    residual: list[Predicate] = []
    for conjunct in _conjuncts(predicate):
        fields = conjunct.fields_used()
        owners: set[str] = set()
        local_everywhere = True
        for name in fields:
            owner = binder.owner_of(name)
            if owner is None:
                owners.add("?")  # unknown field: defer to runtime error
                continue
            bound, local = owner
            owners.add(bound.name)
            if bound.out_names[local] != local:
                local_everywhere = False
        if len(owners) == 1 and "?" not in owners and local_everywhere:
            owner_name = next(iter(owners))
            for bound in binder.all_bound():
                if bound.name == owner_name:
                    bound.pushed.append(conjunct)
                    break
        else:
            residual.append(conjunct)
    return _and_all(residual)


def _default_output(binder: _Binder) -> list[str]:
    """User-visible output columns in declaration order (base, then joins)."""
    out: list[str] = []
    for bound in binder.all_bound():
        out.extend(bound.out_names[f] for f in bound.table.scan_schema().names())
    return out


def _mark_needed(
    binder: _Binder,
    spec: "QuerySpec",
    residual: Predicate | None,
    clauses: Sequence[tuple[lp.JoinClause, _BoundTable]],
) -> None:
    """Projection pushdown: compute each scan's required local fields."""
    needed_out: set[str] = set()
    if spec.aggregates:
        needed_out.update(spec.group_by)
        for agg in spec.aggregates:
            if agg.source is not None:
                needed_out.add(agg.source)
    elif spec.fieldlist:
        needed_out.update(spec.fieldlist)
    else:
        needed_out.update(_default_output(binder))
    if residual is not None:
        needed_out.update(residual.fields_used())
    if spec.order and not spec.aggregates:
        needed_out.update(name for name, _ in spec.order)
    for clause, bound in clauses:
        for left, right in clause.on:
            needed_out.add(left)
            needed_out.add(bound.out_names[right])
    for bound in binder.all_bound():
        wanted = {
            field
            for field, out in bound.out_names.items()
            if out in needed_out
        }
        if not wanted:
            # A scan must produce at least one column to count rows.
            wanted = {bound.table.scan_schema().names()[0]}
        bound.needed = [
            f for f in bound.table.scan_schema().names() if f in wanted
        ]


# ---------------------------------------------------------------------------
# lower: logical plan -> annotated physical operators
# ---------------------------------------------------------------------------


def _lower(node: lp.LogicalNode, binder: _Binder) -> Operator:
    if isinstance(node, lp.Scan):
        return _lower_scan(node, binder)
    if isinstance(node, lp.Filter):
        child = _lower(node.child, binder)
        op: Operator = FilterOp(child, node.predicate)
        selectivity = _RESIDUAL_SELECTIVITY ** len(_conjuncts(node.predicate))
        op.est_rows = child.est_rows * selectivity
        op.est_cost = child.est_cost + _cpu(
            operator_cpu_ms("filter", child.est_rows)
        )
        return op
    if isinstance(node, lp.Project):
        child = _lower(node.child, binder)
        if node.fields == child.fields:
            return child
        op = ProjectOp(child, node.fields)
        op.est_rows = child.est_rows
        op.est_cost = child.est_cost + _cpu(
            operator_cpu_ms("project", child.est_rows)
        )
        return op
    if isinstance(node, lp.Join):
        return _lower_join(node, binder)
    if isinstance(node, lp.GroupBy):
        child = _lower(node.child, binder)
        op = GroupByOp(child, node.keys, node.aggregates)
        op.est_rows = _group_cardinality(node.keys, child.est_rows, binder)
        op.est_cost = child.est_cost + _cpu(
            operator_cpu_ms("group", child.est_rows)
            + operator_cpu_ms("emit", op.est_rows)
        )
        return op
    if isinstance(node, lp.Sort):
        child = _lower(node.child, binder)
        op = SortOp(child, node.keys)
        op.est_rows = child.est_rows
        op.est_cost = child.est_cost + _cpu(sort_cpu_ms(child.est_rows))
        return op
    if isinstance(node, lp.Limit):
        child = _lower(node.child, binder)
        op = LimitOp(child, node.count)
        op.est_rows = min(child.est_rows, float(node.count))
        op.est_cost = child.est_cost
        return op
    raise QueryError(f"cannot lower logical node {node!r}")


def _lower_scan(node: lp.Scan, binder: _Binder) -> Operator:
    bound = (
        binder.base
        if node.table == binder.base.name
        else binder.joined[node.table]
    )
    table = bound.table
    try:
        access, cost = table.access_path(
            fieldlist=list(node.fieldlist) if node.fieldlist else None,
            predicate=node.predicate,
            order=list(node.order) if node.order else None,
        )
    except StorageError:
        # Unloaded table (pending rows only): no layout to cost yet.
        access, cost = "scan", CostEstimate.zero()
    # Partitioned tables with parallel workers enabled fan regions out to
    # the store's shared thread pool; the dedicated operator makes the
    # choice visible in the plan tree.
    scan_cls = TableScanOp
    if (
        getattr(table, "is_partitioned", False)
        and int(getattr(table.store, "scan_workers", 0) or 0) > 1
        and len(table.partitions) > 1
    ):
        scan_cls = ParallelTableScanOp
    op = scan_cls(
        table,
        fieldlist=node.fieldlist,
        predicate=node.predicate,
        order=node.order or None,
        limit=node.limit,
        access=access,
    )
    # Scans over joined tables expose (possibly qualified) output names.
    op.fields = tuple(
        bound.out_names[f] for f in op.fields
    )
    est = table.estimated_row_count(node.predicate)
    if table.stats is None:
        # No collected statistics (e.g. a pending-only table): fall back to
        # the workload monitor's observed cardinality for this access shape
        # — the feedback loop closing actual → estimated.
        observed = table.observed_row_estimate(
            list(node.fieldlist) if node.fieldlist else None,
            node.predicate,
            list(node.order) if node.order else None,
        )
        if observed is not None:
            est = observed
    if node.limit is not None:
        est = min(est, float(node.limit))
    op.est_rows = est
    if node.order and not _order_satisfied(table, node.order):
        cost = cost + _cpu(sort_cpu_ms(est))
    op.est_cost = cost
    return op


def _order_satisfied(
    table: "Table", order: Sequence[tuple[str, bool]]
) -> bool:
    try:
        return table.order_satisfied(list(order))
    except StorageError:
        return False


def _lower_join(node: lp.Join, binder: _Binder) -> Operator:
    left = _lower(node.left, binder)
    right = _lower(node.right, binder)
    build_left = left.est_rows <= right.est_rows
    op = HashJoinOp(
        left,
        right,
        left_keys=[l for l, _ in node.on],
        right_keys=[r for _, r in node.on],
        build_left=build_left,
    )
    op.est_rows = join_cardinality(
        left.est_rows,
        right.est_rows,
        _key_stats(binder, node.on),
    )
    build_rows, probe_rows = (
        (left.est_rows, right.est_rows)
        if build_left
        else (right.est_rows, left.est_rows)
    )
    cpu = (
        operator_cpu_ms("hash_build", build_rows)
        + operator_cpu_ms("hash_probe", probe_rows)
        + operator_cpu_ms("emit", op.est_rows)
    )
    op.est_cost = left.est_cost + right.est_cost + _cpu(cpu)
    return op


def _key_stats(binder: _Binder, on: Sequence[tuple[str, str]]):
    """Per join-key-pair (left FieldStats, right FieldStats) for sizing."""
    pairs = []
    for left_out, right_out in on:
        pairs.append(
            (_field_stats(binder, left_out), _field_stats(binder, right_out))
        )
    return pairs


def _field_stats(binder: _Binder, out_name: str):
    owner = binder.owner_of(out_name)
    if owner is None:
        return None
    bound, local = owner
    stats = bound.table.stats
    if stats is None:
        return None
    return stats.fields.get(local)


def _group_cardinality(
    keys: Sequence[str], child_rows: float, binder: _Binder
) -> float:
    if not keys:
        return 1.0
    distinct = 1.0
    for key in keys:
        field_stats = _field_stats(binder, key)
        if field_stats is None or not field_stats.distinct:
            return child_rows  # unknown: assume no reduction
        distinct *= field_stats.distinct
    return min(child_rows, distinct)


def _cpu(ms: float) -> CostEstimate:
    return CostEstimate(0.0, 0.0, ms)
