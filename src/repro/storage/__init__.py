"""Storage substrate: pages, disk manager, buffer pool, WAL, transactions."""

from repro.storage.buffer import BufferPool, BufferPoolStats, Frame
from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskManager, IOStats
from repro.storage.locks import LockManager, LockMode
from repro.storage.page import (
    NO_PAGE,
    BytePage,
    SlottedPage,
    page_type_of,
)
from repro.storage.serializer import RecordSerializer, VectorSerializer
from repro.storage.transactions import Transaction, TransactionManager, TxnStatus
from repro.storage.wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_UPDATE,
    LogRecord,
    WriteAheadLog,
    recover,
)

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "NO_PAGE",
    "KIND_ABORT",
    "KIND_BEGIN",
    "KIND_CHECKPOINT",
    "KIND_COMMIT",
    "KIND_UPDATE",
    "BufferPool",
    "BufferPoolStats",
    "BytePage",
    "DiskManager",
    "Frame",
    "IOStats",
    "LockManager",
    "LockMode",
    "LogRecord",
    "RecordSerializer",
    "SlottedPage",
    "Transaction",
    "TransactionManager",
    "TxnStatus",
    "VectorSerializer",
    "WriteAheadLog",
    "page_type_of",
    "recover",
]
