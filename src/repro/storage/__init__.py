"""Storage substrate: pages, disk manager, buffer pool, WAL, transactions."""

from repro.storage.buffer import BufferPool, BufferPoolStats, Frame
from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskManager, IOStats
from repro.storage.faults import FaultInjector, IoFault, IoFaultInjector
from repro.storage.integrity import (
    PAGE_TRAILER_SIZE,
    IntegrityRegistry,
    checksum,
    make_trailer,
    verify_frame,
)
from repro.storage.locks import LockManager, LockMode
from repro.storage.page import (
    NO_PAGE,
    BytePage,
    SlottedPage,
    page_type_of,
)
from repro.storage.serializer import RecordSerializer, VectorSerializer
from repro.storage.transactions import Transaction, TransactionManager, TxnStatus
from repro.storage.wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_UPDATE,
    LogRecord,
    WriteAheadLog,
    recover,
)

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "NO_PAGE",
    "KIND_ABORT",
    "KIND_BEGIN",
    "KIND_CHECKPOINT",
    "KIND_COMMIT",
    "KIND_UPDATE",
    "PAGE_TRAILER_SIZE",
    "BufferPool",
    "BufferPoolStats",
    "BytePage",
    "DiskManager",
    "FaultInjector",
    "Frame",
    "IOStats",
    "IntegrityRegistry",
    "IoFault",
    "IoFaultInjector",
    "checksum",
    "make_trailer",
    "verify_frame",
    "LockManager",
    "LockMode",
    "LogRecord",
    "RecordSerializer",
    "SlottedPage",
    "Transaction",
    "TransactionManager",
    "TxnStatus",
    "VectorSerializer",
    "WriteAheadLog",
    "page_type_of",
    "recover",
]
