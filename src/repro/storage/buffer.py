"""Buffer pool with pluggable eviction (LRU and Clock).

The paper motivates RodentStore partly by the "great deal of supporting code,
including transaction, lock, and memory management facilities" every storage
system must replicate — this module is the memory-management part. Layout
renderers and cursors fetch pages through the pool so repeated traversals hit
memory instead of the (simulated) disk.

The pool is **thread-safe**: parallel partition scans fetch/unpin from
worker threads concurrently, so the page table, pin counts, eviction, and
the stat counters are guarded by one re-entrant lock. Cache *misses* read
the disk outside the lock (two threads missing the same page race benignly
— the loser adopts the winner's frame), so a simulated-latency disk lets
concurrent readers overlap their waits. A pinned frame is never evicted,
which is what makes lock-free reads of ``frame.data`` between ``fetch`` and
``unpin`` safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterator

from repro.errors import BufferPoolError, CorruptPageError
from repro.storage.disk import DiskManager


class Frame:
    """A buffer-pool frame: one in-memory page plus bookkeeping."""

    __slots__ = ("page_id", "data", "pin_count", "dirty", "referenced")

    def __init__(self, page_id: int, data: bytearray):
        self.page_id = page_id
        self.data = data
        self.pin_count = 0
        self.dirty = False
        self.referenced = True  # for the Clock policy


class BufferPoolStats:
    """Hit/miss/eviction counters."""

    __slots__ = ("hits", "misses", "evictions", "flushes")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"BufferPoolStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, flushes={self.flushes})"
        )


class BufferPool:
    """Fixed-capacity page cache in front of a :class:`DiskManager`.

    Args:
        disk: the backing disk manager.
        capacity: number of frames.
        policy: ``"lru"`` or ``"clock"``.
    """

    def __init__(self, disk: DiskManager, capacity: int = 128, policy: str = "lru"):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        if policy not in ("lru", "clock"):
            raise BufferPoolError(f"unknown eviction policy {policy!r}")
        self.disk = disk
        self.capacity = capacity
        self.policy = policy
        self.stats = BufferPoolStats()
        #: Optional callable ``page_id -> bytearray | None`` tried when a
        #: disk read raises :class:`~repro.errors.CorruptPageError`; the
        #: store wires its WAL after-image repair ladder here. Returning
        #: ``None`` (or being unset) re-raises the corruption.
        self.repair_handler = None
        self._frames: OrderedDict[int, Frame] = OrderedDict()
        self._clock_hand = 0
        self._lock = threading.RLock()

    # -- public API ---------------------------------------------------------

    def fetch(self, page_id: int) -> Frame:
        """Pin and return the frame for ``page_id``, reading it if absent."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
                frame.pin_count += 1
                frame.referenced = True
                if self.policy == "lru":
                    self._frames.move_to_end(page_id)
                return frame
            self.stats.misses += 1
        # Read outside the lock so concurrent misses overlap their I/O.
        try:
            data = self.disk.read_page(page_id)
        except CorruptPageError:
            if self.repair_handler is None:
                raise
            data = self.repair_handler(page_id)
            if data is None:
                raise
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                # Lost a concurrent-miss race: adopt the winner's frame
                # (the read above was redundant but harmless — pages are
                # immutable while readable).
                frame.pin_count += 1
                frame.referenced = True
                if self.policy == "lru":
                    self._frames.move_to_end(page_id)
                return frame
            frame = Frame(page_id, data)
            frame.pin_count = 1
            self._admit(frame)
            return frame

    def new_page(self) -> Frame:
        """Allocate a fresh page on disk and return its pinned frame."""
        page_id = self.disk.allocate_page()
        with self._lock:
            frame = Frame(page_id, bytearray(self.disk.page_size))
            frame.pin_count = 1
            frame.dirty = True
            self._admit(frame)
            return frame

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; mark the frame dirty when it was modified."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise BufferPoolError(f"page {page_id} is not in the pool")
            if frame.pin_count <= 0:
                raise BufferPoolError(f"page {page_id} is not pinned")
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True

    def flush(self, page_id: int) -> None:
        """Write a dirty frame back to disk (no-op when clean)."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise BufferPoolError(f"page {page_id} is not in the pool")
            if frame.dirty:
                self.disk.write_page(page_id, frame.data)
                frame.dirty = False
                self.stats.flushes += 1

    def flush_all(self) -> None:
        with self._lock:
            for page_id in list(self._frames):
                self.flush(page_id)

    def clear(self) -> None:
        """Flush everything and drop all frames (e.g. between benchmarks)."""
        with self._lock:
            for frame in self._frames.values():
                if frame.pin_count:
                    raise BufferPoolError(
                        f"cannot clear pool: page {frame.page_id} is pinned"
                    )
            self.flush_all()
            self._frames.clear()
            self._clock_hand = 0

    def discard(self, page_id: int) -> None:
        """Drop a frame without flushing it (its page was freed).

        Freed pages must leave the pool immediately: a stale frame — clean
        or dirty — would otherwise shadow (or clobber, via a later flush)
        whatever a future reallocation writes to the recycled page id.
        No-op when the page is not resident.
        """
        with self._lock:
            self._frames.pop(page_id, None)

    def contains(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._frames

    def pinned_pages(self) -> list[int]:
        with self._lock:
            return [
                f.page_id for f in self._frames.values() if f.pin_count > 0
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    def __iter__(self) -> Iterator[Frame]:
        with self._lock:
            return iter(list(self._frames.values()))

    # -- eviction -------------------------------------------------------------

    def _admit(self, frame: Frame) -> None:
        if len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[frame.page_id] = frame

    def _evict_one(self) -> None:
        victim = (
            self._pick_lru() if self.policy == "lru" else self._pick_clock()
        )
        if victim is None:
            raise BufferPoolError(
                "all frames are pinned; cannot evict "
                f"(capacity={self.capacity})"
            )
        frame = self._frames.pop(victim)
        if frame.dirty:
            self.disk.write_page(frame.page_id, frame.data)
            self.stats.flushes += 1
        self.stats.evictions += 1

    def _pick_lru(self) -> int | None:
        for page_id, frame in self._frames.items():
            if frame.pin_count == 0:
                return page_id
        return None

    def _pick_clock(self) -> int | None:
        page_ids = list(self._frames)
        if not page_ids:
            return None
        # Two sweeps: first clears reference bits, second finds a victim.
        for _ in range(2 * len(page_ids)):
            self._clock_hand %= len(page_ids)
            page_id = page_ids[self._clock_hand]
            frame = self._frames[page_id]
            self._clock_hand += 1
            if frame.pin_count > 0:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            return page_id
        return None
