"""Disk manager: a page store with I/O accounting.

The paper's headline metric (Figure 2) is *pages read per query*; the second
claim is that z-ordering "reduces the number of disk seeks". The disk manager
therefore counts:

* ``page_reads`` / ``page_writes`` — pages transferred;
* ``read_seeks`` / ``write_seeks`` — accesses whose page id is not physically
  adjacent to the previously accessed page (a simple single-head disk model).

Two backends share the same interface: a real file (pages at
``page_id * page_size`` offsets) and an in-memory dict (fast, used by tests
and benchmarks — the counters behave identically).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import StorageError

DEFAULT_PAGE_SIZE = 8192


class IOStats:
    """Mutable I/O counters with snapshot/delta helpers."""

    __slots__ = ("page_reads", "page_writes", "read_seeks", "write_seeks")

    def __init__(
        self,
        page_reads: int = 0,
        page_writes: int = 0,
        read_seeks: int = 0,
        write_seeks: int = 0,
    ):
        self.page_reads = page_reads
        self.page_writes = page_writes
        self.read_seeks = read_seeks
        self.write_seeks = write_seeks

    def snapshot(self) -> "IOStats":
        return IOStats(
            self.page_reads, self.page_writes, self.read_seeks, self.write_seeks
        )

    def delta(self, since: "IOStats") -> "IOStats":
        return IOStats(
            self.page_reads - since.page_reads,
            self.page_writes - since.page_writes,
            self.read_seeks - since.read_seeks,
            self.write_seeks - since.write_seeks,
        )

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.read_seeks = 0
        self.write_seeks = 0

    @property
    def total_seeks(self) -> int:
        return self.read_seeks + self.write_seeks

    @property
    def total_pages(self) -> int:
        return self.page_reads + self.page_writes

    def __repr__(self) -> str:
        return (
            f"IOStats(reads={self.page_reads}, writes={self.page_writes}, "
            f"read_seeks={self.read_seeks}, write_seeks={self.write_seeks})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IOStats):
            return NotImplemented
        return (
            self.page_reads == other.page_reads
            and self.page_writes == other.page_writes
            and self.read_seeks == other.read_seeks
            and self.write_seeks == other.write_seeks
        )


class DiskManager:
    """Allocate, read, and write fixed-size pages with I/O accounting.

    Reads and writes are serialized under an internal lock so concurrent
    scan workers (parallel partition scans) cannot interleave file
    seek/read pairs or corrupt the counters; the simulated
    ``read_latency_s`` is paid *outside* the lock, so overlapping readers
    overlap their latency exactly like real disks overlap in-flight I/O.

    Args:
        path: backing file path, or ``None`` for an in-memory store.
        page_size: page size in bytes; the paper's case study uses 1000 KB,
            scaled-down runs use smaller pages.
        read_latency_s: optional simulated seconds per page read (0 =
            off); used by the parallel-scan benchmark to model a device
            where I/O waits dominate.
    """

    def __init__(
        self,
        path: str | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency_s: float = 0.0,
    ):
        if page_size < 64:
            raise StorageError(f"page size {page_size} is too small")
        self.page_size = page_size
        self.path = path
        self.read_latency_s = read_latency_s
        self.stats = IOStats()
        #: Optional FaultInjector observing page writes and fsyncs.
        self.faults = None
        self._lock = threading.Lock()
        self._last_page: int | None = None  # disk head position
        self._free_list: list[int] = []
        if path is None:
            self._pages: dict[int, bytearray] | None = {}
            self._file = None
            self._num_pages = 0
        else:
            self._pages = None
            exists = os.path.exists(path)
            self._file = open(path, "r+b" if exists else "w+b")
            self._file.seek(0, os.SEEK_END)
            size = self._file.tell()
            if size % page_size != 0:
                raise StorageError(
                    f"file size {size} is not a multiple of page size "
                    f"{page_size}"
                )
            self._num_pages = size // page_size

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- allocation --------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of allocated pages (including freed-then-reusable ones)."""
        return self._num_pages

    def allocate_page(self) -> int:
        """Return a fresh (or recycled) page id, zero-filled."""
        with self._lock:
            if self._free_list:
                page_id = self._free_list.pop()
            else:
                page_id = self._num_pages
                self._num_pages += 1
            self._write_raw(page_id, bytearray(self.page_size), count=False)
            return page_id

    def allocate_contiguous(self, count: int) -> list[int]:
        """Allocate ``count`` physically adjacent pages (for extents)."""
        if count < 1:
            raise StorageError("cannot allocate fewer than 1 page")
        with self._lock:
            start = self._num_pages
            self._num_pages += count
            for page_id in range(start, start + count):
                self._write_raw(
                    page_id, bytearray(self.page_size), count=False
                )
            return list(range(start, start + count))

    def free_page(self, page_id: int) -> None:
        with self._lock:
            self._check(page_id)
            self._free_list.append(page_id)

    # -- I/O -----------------------------------------------------------------

    def read_page(self, page_id: int) -> bytearray:
        """Read one page, updating read and seek counters."""
        with self._lock:
            self._check(page_id)
            self.stats.page_reads += 1
            if self._last_page is not None and page_id != self._last_page + 1:
                self.stats.read_seeks += 1
            elif self._last_page is None:
                self.stats.read_seeks += 1
            self._last_page = page_id
            if self._pages is not None:
                data = bytearray(
                    self._pages.get(page_id, bytearray(self.page_size))
                )
            else:
                assert self._file is not None
                self._file.seek(page_id * self.page_size)
                raw = self._file.read(self.page_size)
                if len(raw) < self.page_size:
                    raw = raw.ljust(self.page_size, b"\x00")
                data = bytearray(raw)
        if self.read_latency_s:
            # Outside the lock: concurrent readers overlap their waits.
            time.sleep(self.read_latency_s)
        return data

    def write_page(self, page_id: int, data: bytes | bytearray) -> None:
        """Write one page, updating write and seek counters."""
        with self._lock:
            self._check(page_id)
            if len(data) != self.page_size:
                raise StorageError(
                    f"page write of {len(data)} bytes != page size "
                    f"{self.page_size}"
                )
            action = None
            if self.faults is not None:
                action = self.faults.check("page")
                if action == "torn":
                    # A torn page: only the first half reaches the medium,
                    # the rest keeps whatever bytes were there before.
                    half = self.page_size // 2
                    old = self._read_raw(page_id)
                    data = bytes(data[:half]) + bytes(old[half:])
            self.stats.page_writes += 1
            if self._last_page is None or page_id != self._last_page + 1:
                self.stats.write_seeks += 1
            self._last_page = page_id
            self._write_raw(page_id, data, count=False)
        if action is not None:
            assert self.faults is not None
            self.faults.crash("page", action)

    def fsync(self) -> None:
        """Force written pages to stable storage (no-op when in-memory)."""
        if self._file is not None:
            if self.faults is not None and self.faults.fail_fsync:
                return
            self._file.flush()
            os.fsync(self._file.fileno())

    def _read_raw(self, page_id: int) -> bytes:
        """Uncounted raw read; caller must hold the lock."""
        if self._pages is not None:
            return bytes(self._pages.get(page_id, bytearray(self.page_size)))
        assert self._file is not None
        self._file.seek(page_id * self.page_size)
        raw = self._file.read(self.page_size)
        if len(raw) < self.page_size:
            raw = raw.ljust(self.page_size, b"\x00")
        return raw

    def _write_raw(self, page_id: int, data: bytes | bytearray, count: bool) -> None:
        if self._pages is not None:
            self._pages[page_id] = bytearray(data)
            return
        assert self._file is not None
        self._file.seek(page_id * self.page_size)
        self._file.write(bytes(data))

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self._num_pages:
            raise StorageError(
                f"page id {page_id} out of range [0, {self._num_pages})"
            )

    # -- measurement ---------------------------------------------------------

    @contextmanager
    def measure(self) -> Iterator[IOStats]:
        """Context manager yielding the I/O delta accumulated in the block.

        Example::

            with disk.measure() as io:
                run_query()
            print(io.page_reads)
        """
        before = self.stats.snapshot()
        delta = IOStats()
        try:
            yield delta
        finally:
            after = self.stats.delta(before)
            delta.page_reads = after.page_reads
            delta.page_writes = after.page_writes
            delta.read_seeks = after.read_seeks
            delta.write_seeks = after.write_seeks

    def reset_head(self) -> None:
        """Forget the simulated head position (e.g. between queries)."""
        self._last_page = None
