"""Disk manager: a page store with I/O accounting and end-to-end checksums.

The paper's headline metric (Figure 2) is *pages read per query*; the second
claim is that z-ordering "reduces the number of disk seeks". The disk manager
therefore counts:

* ``page_reads`` / ``page_writes`` — pages transferred;
* ``read_seeks`` / ``write_seeks`` — accesses whose page id is not physically
  adjacent to the previously accessed page (a simple single-head disk model).

Two backends share the same interface: a real file and an in-memory dict
(fast, used by tests and benchmarks — the counters behave identically).

**On-medium format (v2).** Each logical page is stored as a *frame*: the
``page_size`` bytes of page data followed by a 16-byte trailer (magic,
format version, CRC32 of the data — see :mod:`repro.storage.integrity`).
Frames live at ``page_id * frame_size`` offsets. Upper layers never see the
trailer; ``read_page`` verifies it and raises
:class:`~repro.errors.CorruptPageError` on mismatch, short read, or bad
magic. Pre-checksum (v1) files — pages packed back to back with no trailer
— are migrated in place the first time they are opened.

``read_page_unchecked`` is the explicit allow-path for recovery: replaying a
WAL image must be able to read a page it is about to overwrite even when
that page is torn or truncated (it zero-pads short reads like v1 did).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import CorruptPageError, StorageError
from binascii import crc32

from repro.storage.integrity import (
    _CRC_FIELD,
    _TRAILER_PREFIX,
    PAGE_TRAILER_SIZE,
    TRAILER,
    TRAILER_MAGIC,
    IntegrityRegistry,
    make_trailer,
    verify_frame,
)

DEFAULT_PAGE_SIZE = 8192


class IOStats:
    """Mutable I/O counters with snapshot/delta helpers."""

    __slots__ = ("page_reads", "page_writes", "read_seeks", "write_seeks")

    def __init__(
        self,
        page_reads: int = 0,
        page_writes: int = 0,
        read_seeks: int = 0,
        write_seeks: int = 0,
    ):
        self.page_reads = page_reads
        self.page_writes = page_writes
        self.read_seeks = read_seeks
        self.write_seeks = write_seeks

    def snapshot(self) -> "IOStats":
        return IOStats(
            self.page_reads, self.page_writes, self.read_seeks, self.write_seeks
        )

    def delta(self, since: "IOStats") -> "IOStats":
        return IOStats(
            self.page_reads - since.page_reads,
            self.page_writes - since.page_writes,
            self.read_seeks - since.read_seeks,
            self.write_seeks - since.write_seeks,
        )

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.read_seeks = 0
        self.write_seeks = 0

    @property
    def total_seeks(self) -> int:
        return self.read_seeks + self.write_seeks

    @property
    def total_pages(self) -> int:
        return self.page_reads + self.page_writes

    def __repr__(self) -> str:
        return (
            f"IOStats(reads={self.page_reads}, writes={self.page_writes}, "
            f"read_seeks={self.read_seeks}, write_seeks={self.write_seeks})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IOStats):
            return NotImplemented
        return (
            self.page_reads == other.page_reads
            and self.page_writes == other.page_writes
            and self.read_seeks == other.read_seeks
            and self.write_seeks == other.write_seeks
        )


class DiskManager:
    """Allocate, read, and write fixed-size pages with I/O accounting.

    Reads and writes are serialized under an internal lock so concurrent
    scan workers (parallel partition scans) cannot interleave file
    seek/read pairs or corrupt the counters; the simulated
    ``read_latency_s`` is paid *outside* the lock, so overlapping readers
    overlap their latency exactly like real disks overlap in-flight I/O.

    Args:
        path: backing file path, or ``None`` for an in-memory store.
        page_size: page size in bytes; the paper's case study uses 1000 KB,
            scaled-down runs use smaller pages.
        read_latency_s: optional simulated seconds per page read (0 =
            off); used by the parallel-scan benchmark to model a device
            where I/O waits dominate.
        verify_checksums: verify the frame trailer on every ``read_page``
            (on by default; turning it off restores the v1 trust-on-faith
            read path — used by the integrity benchmark to price the CRC).
        max_read_retries: bounded retries for transient read errors
            (``OSError`` from the medium, e.g. an injected EIO).
        retry_backoff_s: base backoff between transient-read retries;
            attempt *n* waits ``n * retry_backoff_s``.
    """

    def __init__(
        self,
        path: str | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency_s: float = 0.0,
        verify_checksums: bool = True,
        max_read_retries: int = 3,
        retry_backoff_s: float = 0.0005,
    ):
        if page_size < 64:
            raise StorageError(f"page size {page_size} is too small")
        self.page_size = page_size
        self.frame_size = page_size + PAGE_TRAILER_SIZE
        self.path = path
        self.read_latency_s = read_latency_s
        self.verify_checksums = verify_checksums
        self.max_read_retries = max_read_retries
        self.retry_backoff_s = retry_backoff_s
        self.stats = IOStats()
        self.integrity = IntegrityRegistry()
        #: Optional FaultInjector observing page writes and fsyncs.
        self.faults = None
        #: Optional IoFaultInjector damaging reads / dropping writes.
        self.io_faults = None
        #: Pages rewritten by the one-shot v1 -> v2 migration at open.
        self.migrated_pages = 0
        self._lock = threading.Lock()
        self._last_page: int | None = None  # disk head position
        self._free_list: list[int] = []
        self._free_set: set[int] = set()
        if path is None:
            self._pages: dict[int, bytearray] | None = {}
            self._file = None
            self._num_pages = 0
        else:
            self._pages = None
            exists = os.path.exists(path)
            self._file = open(path, "r+b" if exists else "w+b")
            self._file.seek(0, os.SEEK_END)
            size = self._file.tell()
            self._num_pages = self._detect_format(size)

    def _detect_format(self, size: int) -> int:
        """Classify an existing file as v2 (framed) or v1 (legacy).

        v1 files are migrated in place; a size matching neither format is
        rejected. When the size divides both frame and page size the
        trailer magic of frame 0 breaks the tie.
        """
        if size == 0:
            return 0
        framed = size % self.frame_size == 0
        legacy = size % self.page_size == 0
        if framed and legacy:
            framed = self._frame_magic_ok(0)
            legacy = not framed
        if framed:
            return size // self.frame_size
        if legacy:
            return self._migrate_legacy(size)
        raise StorageError(
            f"file size {size} matches neither the checksummed frame size "
            f"{self.frame_size} nor the legacy page size {self.page_size}"
        )

    def _frame_magic_ok(self, page_id: int) -> bool:
        assert self._file is not None
        self._file.seek(page_id * self.frame_size + self.page_size)
        raw = self._file.read(TRAILER.size)
        if len(raw) < TRAILER.size:
            return False
        magic = TRAILER.unpack(raw)[0]
        return magic == TRAILER_MAGIC

    def _migrate_legacy(self, size: int) -> int:
        """One-shot in-place rewrite of a v1 file into checksummed frames."""
        assert self._file is not None
        count = size // self.page_size
        pages = []
        for page_id in range(count):
            self._file.seek(page_id * self.page_size)
            pages.append(self._file.read(self.page_size))
        self._file.seek(0)
        self._file.truncate()
        for page_id, data in enumerate(pages):
            self._file.seek(page_id * self.frame_size)
            self._file.write(data + make_trailer(data))
        self._file.flush()
        os.fsync(self._file.fileno())
        self.migrated_pages = count
        return count

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._file is not None:
            # Push dirty OS buffers to the medium: a non-checkpoint close
            # must not be a silent durability hole. Skipped when a fault
            # injector simulates fsync lies or an already-crashed store.
            skip_sync = self.faults is not None and (
                self.faults.fail_fsync or self.faults.fired
            )
            if not skip_sync:
                try:
                    self._file.flush()
                    os.fsync(self._file.fileno())
                except (OSError, ValueError):
                    pass
            self._file.close()
            self._file = None

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- allocation --------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of allocated pages (including freed-then-reusable ones)."""
        return self._num_pages

    def allocate_page(self) -> int:
        """Return a fresh (or recycled) page id, zero-filled."""
        with self._lock:
            if self._free_list:
                page_id = self._free_list.pop()
                self._free_set.discard(page_id)
            else:
                page_id = self._num_pages
                self._num_pages += 1
            self._write_raw(page_id, bytearray(self.page_size))
            return page_id

    def allocate_contiguous(self, count: int) -> list[int]:
        """Allocate ``count`` physically adjacent pages (for extents)."""
        if count < 1:
            raise StorageError("cannot allocate fewer than 1 page")
        with self._lock:
            start = self._num_pages
            self._num_pages += count
            for page_id in range(start, start + count):
                self._write_raw(page_id, bytearray(self.page_size))
            return list(range(start, start + count))

    def free_page(self, page_id: int) -> None:
        with self._lock:
            self._check(page_id)
            if page_id in self._free_set:
                raise StorageError(
                    f"double free of page {page_id}: already on the free list"
                )
            self._free_list.append(page_id)
            self._free_set.add(page_id)

    def free_page_ids(self) -> set[int]:
        """Page ids currently on the free list (scrub skips these)."""
        with self._lock:
            return set(self._free_set)

    # -- I/O -----------------------------------------------------------------

    def read_page(self, page_id: int) -> bytearray:
        """Read and verify one page, updating read and seek counters.

        Raises :class:`~repro.errors.CorruptPageError` when the frame fails
        checksum verification (and quarantines the page in the integrity
        registry); transient ``OSError`` reads are retried with backoff up
        to ``max_read_retries`` times.
        """
        with self._lock:
            self._check(page_id)
            self.stats.page_reads += 1
            if self._last_page is None or page_id != self._last_page + 1:
                self.stats.read_seeks += 1
            self._last_page = page_id
            data = self._read_verified(page_id)
        if self.read_latency_s:
            # Outside the lock: concurrent readers overlap their waits.
            time.sleep(self.read_latency_s)
        return data

    def read_page_unchecked(self, page_id: int) -> bytearray:
        """Allow-path read: no checksum verification, short reads zero-pad.

        Recovery replays WAL images over pages it is about to overwrite —
        including torn or truncated ones — so it must bypass verification.
        Every other caller should use :meth:`read_page`.
        """
        with self._lock:
            self._check(page_id)
            self.stats.page_reads += 1
            if self._last_page is None or page_id != self._last_page + 1:
                self.stats.read_seeks += 1
            self._last_page = page_id
            frame = self._read_frame_raw(page_id)
        if self.read_latency_s:
            time.sleep(self.read_latency_s)
        if frame is None:
            return bytearray(self.page_size)
        data = bytes(frame[: self.page_size])
        if len(data) < self.page_size:
            data = data.ljust(self.page_size, b"\x00")
        return bytearray(data)

    def _read_verified(self, page_id: int) -> bytearray:
        """Read one frame with transient-retry and checksum verification.

        Caller holds the lock. A checksum mismatch earns exactly one clean
        re-read (in-flight corruption on the wire heals; at-rest corruption
        does not) before the page is quarantined and the error raised.
        Every read pays the CRC — rot appearing between any two reads is
        caught on the next one; there is deliberately no memoization.
        """
        io_attempts = 0
        rereads = 0
        while True:
            try:
                frame = self._read_frame_raw(page_id)
                if self.io_faults is not None and frame is not None:
                    frame = self.io_faults.apply_read(
                        "page", bytes(frame), page_id
                    )
            except OSError as exc:
                io_attempts += 1
                self.integrity.record_transient_retry()
                if io_attempts <= self.max_read_retries:
                    time.sleep(self.retry_backoff_s * io_attempts)
                    continue
                raise StorageError(
                    f"I/O error reading page {page_id} after "
                    f"{io_attempts} attempts: {exc}"
                ) from exc
            if frame is None:
                # In-memory page that was never written: all zeros.
                return bytearray(self.page_size)
            if not self.verify_checksums:
                data = bytes(frame[: self.page_size])
                if len(data) < self.page_size:
                    data = data.ljust(self.page_size, b"\x00")
                return bytearray(data)
            # Inlined fast path of verify_frame() — this runs on every
            # page read, so the call + reason plumbing is skipped when
            # the frame is intact; verify_frame() names the failure.
            ps = self.page_size
            if (
                len(frame) == self.frame_size
                and frame[ps : ps + 8] == _TRAILER_PREFIX
            ):
                view = memoryview(frame)
                (stored,) = _CRC_FIELD.unpack_from(frame, ps + 8)
                if crc32(view[:ps]) & 0xFFFFFFFF == stored:
                    if rereads:
                        self.integrity.record_reread_recovery()
                    self.integrity.page_verifications += 1
                    return bytearray(view[:ps])
            _, reason = verify_frame(frame, ps)
            rereads += 1
            if rereads <= 1:
                continue
            self.integrity.record_page_failure(page_id, reason)
            raise CorruptPageError(page_id, reason)

    def write_page(self, page_id: int, data: bytes | bytearray) -> None:
        """Write one page (framing it with a fresh trailer), with counters."""
        with self._lock:
            self._check(page_id)
            if len(data) != self.page_size:
                raise StorageError(
                    f"page write of {len(data)} bytes != page size "
                    f"{self.page_size}"
                )
            action = None
            if self.faults is not None:
                action = self.faults.check("page")
            lost = False
            if self.io_faults is not None:
                try:
                    lost = self.io_faults.check_write("page", page_id) == "lost"
                except OSError as exc:
                    raise StorageError(
                        f"page {page_id} write failed: {exc}"
                    ) from exc
            self.stats.page_writes += 1
            if self._last_page is None or page_id != self._last_page + 1:
                self.stats.write_seeks += 1
            self._last_page = page_id
            if action == "torn":
                # A torn frame: only the first half reaches the medium, the
                # rest — including the trailer — keeps whatever bytes were
                # there before. The checksum catches this on the next read.
                half = self.page_size // 2
                old = self._read_frame_raw(page_id) or b""
                old = bytes(old).ljust(self.frame_size, b"\x00")
                torn = bytes(data[:half]) + old[half:]
                self._write_frame_raw(page_id, torn)
            elif not lost:
                self._write_raw(page_id, data)
        if action is not None:
            assert self.faults is not None
            self.faults.crash("page", action)

    def fsync(self) -> None:
        """Force written pages to stable storage (no-op when in-memory)."""
        if self._file is not None:
            if self.faults is not None and self.faults.fail_fsync:
                return
            self._file.flush()
            os.fsync(self._file.fileno())

    def _read_frame_raw(self, page_id: int) -> bytes | None:
        """Uncounted raw frame read; caller must hold the lock.

        Returns ``None`` for an in-memory page that was never written, and
        possibly *short* bytes for a truncated file — verification decides
        what that means.
        """
        if self._pages is not None:
            frame = self._pages.get(page_id)
            return bytes(frame) if frame is not None else None
        assert self._file is not None
        self._file.seek(page_id * self.frame_size)
        return self._file.read(self.frame_size)

    def _write_raw(self, page_id: int, data: bytes | bytearray) -> None:
        """Frame ``data`` with a fresh trailer and write it (lock held)."""
        self._write_frame_raw(page_id, bytes(data) + make_trailer(data))

    def _write_frame_raw(self, page_id: int, frame: bytes) -> None:
        if self._pages is not None:
            self._pages[page_id] = bytearray(frame)
            return
        assert self._file is not None
        self._file.seek(page_id * self.frame_size)
        self._file.write(frame)

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self._num_pages:
            raise StorageError(
                f"page id {page_id} out of range [0, {self._num_pages})"
            )

    # -- measurement ---------------------------------------------------------

    @contextmanager
    def measure(self) -> Iterator[IOStats]:
        """Context manager yielding the I/O delta accumulated in the block.

        Example::

            with disk.measure() as io:
                run_query()
            print(io.page_reads)
        """
        before = self.stats.snapshot()
        delta = IOStats()
        try:
            yield delta
        finally:
            after = self.stats.delta(before)
            delta.page_reads = after.page_reads
            delta.page_writes = after.page_writes
            delta.read_seeks = after.read_seeks
            delta.write_seeks = after.write_seeks

    def reset_head(self) -> None:
        """Forget the simulated head position (e.g. between queries)."""
        self._last_page = None
